"""Exception hierarchy for the MVC reproduction library.

All library errors derive from :class:`ReproError` so callers can catch one
base class.  Subsystems raise the most specific subclass that applies.
"""

from __future__ import annotations


class ReproError(Exception):
    """Base class for every error raised by this library."""


class SchemaError(ReproError):
    """A schema is malformed or a row does not match its schema."""


class RelationError(ReproError):
    """An illegal operation on a relation (e.g. deleting an absent row)."""


class ExpressionError(ReproError):
    """A relational expression is malformed or cannot be evaluated."""


class ParseError(ReproError):
    """The view-definition parser rejected its input."""


class SimulationError(ReproError):
    """The discrete-event simulator was used incorrectly."""


class FaultError(ReproError):
    """A fault plan is malformed or names an unknown process."""


class SourceError(ReproError):
    """A data-source operation failed (unknown relation, bad transaction)."""


class IntegratorError(ReproError):
    """The integrator received inconsistent information."""


class ViewManagerError(ReproError):
    """A view manager was driven incorrectly."""


class MergeError(ReproError):
    """The merge process received inconsistent or out-of-protocol input."""


class WarehouseError(ReproError):
    """A warehouse transaction could not be applied."""


class CacheError(ReproError):
    """The artifact cache was misused or hit an unrecoverable condition."""


class CacheMiss(CacheError):
    """The requested artifact key is not in the store."""


class CacheIntegrityError(CacheError):
    """A stored artifact failed its digest verification (corruption)."""


class ConsistencyViolation(ReproError):
    """A consistency checker found a violated definition.

    Raised by the ``require_*`` convenience wrappers in
    :mod:`repro.consistency`; the plain ``check_*`` functions return a
    report object instead of raising.
    """
