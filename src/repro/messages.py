"""Message types exchanged between the Figure-1 processes.

Every inter-process payload in the system is one of these immutable
dataclasses.  Keeping them in one module documents the whole protocol:

========================  ===========================================
message                   direction
========================  ===========================================
UpdateNotification        source / coordinator -> integrator
RelMessage                integrator -> merge process(es)
UpdateForView             integrator -> view manager
SnapshotQuery/Response    view manager <-> base-data service
ActionListMessage         view manager -> merge process
WarehouseTransactionMsg   merge process -> warehouse
CommitNotification        warehouse -> merge process
========================  ===========================================
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.relational.rows import Row

if TYPE_CHECKING:  # pragma: no cover - annotation-only imports (no cycles)
    from repro.sources.transactions import SourceTransaction
    from repro.sources.update import Update
    from repro.viewmgr.actions import ActionList
    from repro.warehouse.txn import WarehouseTransaction


@dataclass(frozen=True, slots=True)
class UpdateNotification:
    """A committed source transaction reported to the integrator.

    ``lineage_id`` is the source world's global commit sequence number —
    the causal id observability threads from the source commit through the
    integrator's numbering (``0`` when the reporter cannot know it, e.g. a
    snapshot-diff monitor synthesizing transactions from state diffs).
    """

    transaction: SourceTransaction
    commit_time: float
    lineage_id: int = 0


@dataclass(frozen=True, slots=True)
class NumberedUpdate:
    """The integrator-numbered update stream fed to the base-data service."""

    update_id: int
    updates: tuple["Update", ...]


@dataclass(frozen=True, slots=True)
class RelMessage:
    """``REL_i``: the set of views relevant to update ``update_id`` (§3.2)."""

    update_id: int
    views: frozenset[str]


@dataclass(frozen=True, slots=True)
class UpdateForView:
    """A copy of update ``update_id`` routed to one view manager (§3.2).

    ``updates`` carries the transaction's updates restricted to relations
    the destination view reads (the integrator already knows the view's
    base relations, so irrelevant updates inside a multi-update
    transaction are not shipped).
    """

    update_id: int
    view: str
    updates: tuple[Update, ...]


@dataclass(frozen=True, slots=True)
class SnapshotQuery:
    """A view manager asks the base-data service for base relations.

    ``version=None`` requests the current state (autonomous-source mode,
    answered together with the undo information needed to compensate);
    an integer requests that exact multiversion snapshot.
    """

    query_id: int
    requester: str
    relations: frozenset[str]
    version: int | None = None
    undo_from: int | None = None


@dataclass(frozen=True, slots=True)
class SnapshotResponse:
    """Answer to a :class:`SnapshotQuery`.

    ``contents`` maps relation name to a ``{Row: count}`` bag at
    ``version``.  In autonomous-source mode ``undo_updates`` lists the
    integrator-numbered updates in ``(undo_from, version]`` touching the
    requested relations, so the requester can roll the state back.
    """

    query_id: int
    version: int
    contents: Mapping[str, Mapping[Row, int]]
    undo_updates: tuple[tuple[int, Update], ...] = ()


@dataclass(frozen=True, slots=True)
class ActionListMessage:
    """``AL^x_j`` sent by view manager x to the merge process (§3.3)."""

    action_list: "ActionList"


@dataclass(frozen=True, slots=True)
class WarehouseTransactionMsg:
    """A warehouse transaction submitted by a merge process (§4.3)."""

    txn: "WarehouseTransaction"
    sequenced_after: tuple[int, ...] = ()


@dataclass(frozen=True, slots=True)
class CommitNotification:
    """The warehouse confirms that transaction ``txn_id`` committed."""

    txn_id: int
    commit_time: float
    merge_name: str = ""


@dataclass(frozen=True, slots=True)
class SequencedFrame:
    """Transport frame of :class:`~repro.sim.network.ReliableChannel`.

    Wraps one application payload with the channel sequence number the
    reliable-delivery protocol uses for ordering, duplicate suppression and
    retransmission.  Never seen by application processes — the channel
    unwraps it before delivery.
    """

    seq: int
    payload: object


@dataclass(frozen=True, slots=True)
class AckFrame:
    """Cumulative acknowledgement: every frame ``seq <= ack`` was processed."""

    ack: int


def lineage_keys(message: object) -> dict[str, tuple[int, ...]]:
    """The causal identifiers a message carries, for trace attribution.

    Returns any of three keys (absent when inapplicable):

    * ``ids`` — integrator-assigned update numbers the message concerns;
    * ``lineage`` — source-world commit sequence numbers (pre-numbering);
    * ``txn`` — warehouse transaction ids.

    Used by :meth:`repro.sim.process.Process` to stamp per-message queue
    and service events, which is what lets
    :class:`repro.obs.lineage.Lineage` attribute every hop of an update's
    path to the update itself.  Unknown message types yield ``{}`` — the
    hop simply goes unattributed rather than failing.
    """
    if isinstance(message, SequencedFrame):
        return lineage_keys(message.payload)
    if isinstance(message, (NumberedUpdate, RelMessage, UpdateForView)):
        return {"ids": (message.update_id,)}
    if isinstance(message, ActionListMessage):
        return {"ids": tuple(message.action_list.covered)}
    if isinstance(message, WarehouseTransactionMsg):
        return {
            "ids": tuple(message.txn.covered_rows),
            "txn": (message.txn.txn_id,),
        }
    if isinstance(message, CommitNotification):
        return {"txn": (message.txn_id,)}
    if isinstance(message, UpdateNotification):
        return {"lineage": (message.lineage_id,)} if message.lineage_id else {}
    return {}


__all__ = [
    "UpdateNotification",
    "NumberedUpdate",
    "RelMessage",
    "UpdateForView",
    "SnapshotQuery",
    "SnapshotResponse",
    "ActionListMessage",
    "WarehouseTransactionMsg",
    "CommitNotification",
    "SequencedFrame",
    "AckFrame",
    "lineage_keys",
]
