"""Wall-clock execution of the process graph on worker threads.

:class:`ParallelKernel` duck-types the :class:`~repro.sim.kernel.Simulator`
surface, but instead of a virtual-time event heap it routes every
scheduled callback to the *home worker* of the process the callback
belongs to, where a dedicated thread executes it as soon as it reaches
the front of that worker's :class:`Mailbox`.

Why this preserves the simulator's correctness contract:

* **Per-process serialization.**  Every event of one process executes on
  one worker thread, in mailbox order.  Processes mutate their own state
  only from their own events (the :class:`~repro.sim.process.Process`
  mailbox/service loop schedules everything through ``self.sim``), so no
  process ever needs a lock — exactly the actor discipline the DES kernel
  provided by being single-threaded.
* **Per-lane FIFO.**  A channel's deliveries are scheduled by its source
  process — i.e. from one thread — and appended to the destination's
  mailbox in send order.  FIFO mailboxes therefore preserve the paper's
  §4 ordering assumption ("messages from the same process arrive in the
  order sent") without any clamp arithmetic.
* **Wall-clock time.**  ``now`` is seconds of real time since the kernel
  was created.  Virtual delays (latency models, service times) map to
  zero wall time: the event is enqueued immediately and runs when its
  worker gets to it.  Real concurrency replaces simulated waiting, which
  is the point — trace timestamps and metrics windows become honest
  hardware numbers.

Events scheduled *before* ``run()`` (the posted workload) are staged and
injected in ``(virtual time, submission order)`` order at startup, so
each source still fires its transactions in workload order.

What this kernel deliberately does **not** support — enforced by
``SystemConfig.validate`` and kept here as a second line of defence —
is anything whose semantics are inherently virtual-time: ``run(until=…)``
horizons, ``max_events`` caps, single-stepping, schedule-perturbing
:class:`~repro.sim.scheduler.Scheduler` subclasses, fault plans (timers
for retransmission backoff), and periodic managers (a zero-delay
self-rescheduling timer would spin forever).
"""

from __future__ import annotations

import itertools
import random
import threading
import time
from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry
from repro.runtime.base import Runtime
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import ThreadSafeTrace

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system.builder import WarehouseSystem
    from repro.system.config import SystemConfig

#: sentinel telling a worker thread to exit its loop
_STOP = object()


class Mailbox:
    """A FIFO queue feeding one worker thread, optionally bounded.

    With ``capacity=None`` (the default) puts never block.  A bounded
    mailbox exerts backpressure: ``put`` blocks until space frees, and
    raises after ``timeout`` seconds — the system's message graph is
    cyclic (merge ↔ warehouse), so a full mailbox on every process of a
    cycle cannot drain and must surface as an error, not a silent hang.
    """

    def __init__(self, capacity: int | None = None, name: str = "") -> None:
        if capacity is not None and capacity < 1:
            raise SimulationError(f"mailbox capacity must be >= 1, got {capacity}")
        self.name = name
        self._capacity = capacity
        self._items: deque = deque()
        self._ready = threading.Condition()

    def __len__(self) -> int:
        with self._ready:
            return len(self._items)

    def put(self, item: object, timeout: float | None = None) -> None:
        with self._ready:
            if self._capacity is not None:
                deadline = None if timeout is None else time.monotonic() + timeout
                while len(self._items) >= self._capacity:
                    remaining = (
                        None if deadline is None else deadline - time.monotonic()
                    )
                    if remaining is not None and remaining <= 0:
                        raise SimulationError(
                            f"mailbox {self.name!r} stayed full for {timeout}s "
                            f"(capacity {self._capacity}); a bounded run can "
                            f"deadlock on message cycles — raise the capacity "
                            f"or run unbounded"
                        )
                    self._ready.wait(remaining)
            self._items.append(item)
            self._ready.notify()

    def get(self) -> object:
        with self._ready:
            while not self._items:
                self._ready.wait()
            item = self._items.popleft()
            if self._capacity is not None:
                self._ready.notify()
            return item


class ParallelKernel:
    """A simulator-shaped executor backed by worker threads.

    Worker threads are created per :meth:`run` call and joined before it
    returns, so between runs (and at build/seed time) the kernel is
    strictly single-threaded — which is what lets the process-pool
    runtime fork safely before the first run.
    """

    def __init__(
        self,
        seed: int = 0,
        workers: int | None = None,
        mailbox_capacity: int | None = None,
        timeout: float = 60.0,
    ) -> None:
        import os

        self.rng = random.Random(seed)
        self.trace = ThreadSafeTrace()
        # Wall-clock runs have no natural event horizon, so histograms
        # default to reservoir mode — exact count/total/max, bounded
        # quantile storage (see repro.obs.registry).
        self.metrics = MetricsRegistry(
            locked=True, origin="worker-thread", histogram_bound=4096
        )
        # Introspection parity with Simulator; never consulted for order.
        self.scheduler = Scheduler()
        self.workers = workers if workers is not None else (os.cpu_count() or 1)
        if self.workers < 1:
            raise SimulationError(f"workers must be >= 1, got {self.workers}")
        self._mailbox_capacity = mailbox_capacity
        self._timeout = timeout
        self._sequence = itertools.count()
        # (virtual time, seq, bound callback, home key) staged before run()
        self._staged: list[tuple[float, int, Callable[[], None], object]] = []
        self._homes: dict[int, int] = {}
        self._next_home = 0
        self._mailboxes: list[Mailbox] = []
        self._running = False
        self._pending = 0
        self._events_executed = 0
        self._lock = threading.Lock()
        self._idle = threading.Condition(self._lock)
        self._failure: BaseException | None = None
        self._t0 = time.monotonic()
        # Periodic probes (the freshness monitor): polled from a sampler
        # thread while run() is live, since there is no per-event hook a
        # wall-clock kernel could cheaply offer.
        self._probes: list[Callable[[], None]] = []

    @property
    def clock_epoch(self) -> float:
        """The monotonic instant ``now`` counts from (forked children
        align their telemetry timestamps against this)."""
        return self._t0

    def add_probe(self, probe: Callable[[], None]) -> None:
        """Invoke ``probe()`` periodically while :meth:`run` executes."""
        self._probes.append(probe)

    # -- simulator surface ---------------------------------------------------
    @property
    def now(self) -> float:
        """Wall-clock seconds since the kernel was created."""
        return time.monotonic() - self._t0

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_events(self) -> int:
        with self._lock:
            return self._pending

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: object,
        lane: object = None,
        ordered: bool = True,
    ) -> None:
        """Virtual ``delay`` maps to "as soon as the home worker is free"."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._submit(self.now + delay, callback, args)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: object,
        lane: object = None,
        ordered: bool = True,
    ) -> None:
        """Before ``run()``: stage at virtual ``time``.  During: enqueue now.

        The ``lane`` tag is accepted for interface parity but unused —
        FIFO comes from single-sender mailbox order, not a clamp.
        """
        self._submit(time, callback, args)

    def step(self) -> bool:
        raise SimulationError(
            "the parallel runtime cannot single-step; use runtime='des' "
            "for event-by-event execution"
        )

    # -- routing -------------------------------------------------------------
    @staticmethod
    def _home_key(callback: Callable[..., None]) -> object:
        """The object whose state the callback mutates (its actor).

        Bound methods of a :class:`Process` belong to that process;
        a channel's ``_deliver`` belongs to the channel's *destination*
        (delivery appends to the destination's inbox).  Unbound
        callables fall back to a shared default worker.
        """
        target = getattr(callback, "__self__", None)
        if target is None:
            return None
        destination = getattr(target, "destination", None)
        return destination if destination is not None else target

    def _worker_index(self, key: object) -> int:
        # Caller holds self._lock.
        if key is None:
            return 0
        index = self._homes.get(id(key))
        if index is None:
            index = self._next_home % self.workers
            self._next_home += 1
            self._homes[id(key)] = index
        return index

    def _submit(
        self, when: float, callback: Callable[..., None], args: tuple
    ) -> None:
        bound = (lambda: callback(*args)) if args else callback
        key = self._home_key(callback)
        with self._lock:
            if self._failure is not None:
                return  # the run is already aborting; drop quietly
            seq = next(self._sequence)
            self._pending += 1
            if not self._running:
                self._staged.append((when, seq, bound, key))
                return
            index = self._worker_index(key)
        try:
            self._mailboxes[index].put(bound, timeout=self._timeout)
        except SimulationError:
            with self._lock:
                self._pending -= 1
            raise

    # -- worker loop -----------------------------------------------------------
    def _worker_loop(self, mailbox: Mailbox) -> None:
        while True:
            item = mailbox.get()
            if item is _STOP:
                return
            failed = False
            try:
                if self._failure is None:  # after a failure: drain, don't run
                    item()  # type: ignore[operator]
            except BaseException as exc:  # noqa: BLE001 - reported by run()
                failed = True
                failure = exc
            with self._idle:
                if failed and self._failure is None:
                    self._failure = failure
                self._pending -= 1
                self._events_executed += 1
                if self._pending == 0:
                    self._idle.notify_all()

    # -- run to quiescence -----------------------------------------------------
    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Execute until no event is pending anywhere; returns the count.

        ``until``/``max_events`` are virtual-time bounds and unsupported
        here — a wall-clock run has no event horizon to stop at.
        """
        if until is not None or max_events is not None:
            raise SimulationError(
                "the parallel runtime runs to quiescence only; "
                "run(until=...) / run(max_events=...) need runtime='des'"
            )
        if self._running:
            raise SimulationError("run() called re-entrantly from an event handler")

        with self._lock:
            staged = sorted(self._staged, key=lambda entry: (entry[0], entry[1]))
            self._staged.clear()
            self._failure = None
            self._mailboxes = [
                Mailbox(self._mailbox_capacity, name=f"worker{i}")
                for i in range(self.workers)
            ]
            self._running = True
            executed_before = self._events_executed

        threads = [
            threading.Thread(
                target=self._worker_loop,
                args=(mailbox,),
                name=f"repro-{mailbox.name}",
                daemon=True,
            )
            for mailbox in self._mailboxes
        ]
        for thread in threads:
            thread.start()

        sampler = None
        sampler_stop = None
        if self._probes:
            sampler_stop = threading.Event()

            def _sample_loop() -> None:
                while not sampler_stop.wait(0.02):
                    for probe in self._probes:
                        probe()

            sampler = threading.Thread(
                target=_sample_loop, name="repro-sampler", daemon=True
            )
            sampler.start()

        try:
            # Inject the pre-run workload in (virtual time, post order):
            # each source's transactions reach its home worker in workload
            # order, so per-source FIFO survives the clock swap.
            for _when, _seq, bound, key in staged:
                with self._lock:
                    index = self._worker_index(key)
                self._mailboxes[index].put(bound, timeout=self._timeout)

            deadline = (
                None if self._timeout is None else time.monotonic() + self._timeout
            )
            with self._idle:
                while self._pending > 0 and self._failure is None:
                    if deadline is not None and time.monotonic() > deadline:
                        raise SimulationError(
                            f"parallel run made no quiescence within "
                            f"{self._timeout}s; {self._pending} event(s) "
                            f"still pending (hung worker?)"
                        )
                    self._idle.wait(0.05)
        finally:
            if sampler is not None:
                sampler_stop.set()
                sampler.join(timeout=self._timeout)
            for mailbox in self._mailboxes:
                mailbox.put(_STOP)
            for thread in threads:
                thread.join(timeout=self._timeout)
            with self._lock:
                self._running = False
                self._mailboxes = []

        if self._failure is not None:
            raise self._failure
        return self._events_executed - executed_before


class ThreadsRuntime(Runtime):
    """Every process executes on a worker-thread fleet under a wall clock."""

    name = "threads"

    def __init__(self, config: "SystemConfig") -> None:
        self._kernel = ParallelKernel(
            seed=config.seed,
            workers=config.workers,
            mailbox_capacity=config.mailbox_capacity,
            timeout=config.runtime_timeout,
        )

    @property
    def kernel(self) -> ParallelKernel:
        return self._kernel


class ProcsRuntime(ThreadsRuntime):
    """Threads runtime plus a forked compute-server fleet for view plans.

    The GIL serialises the thread fleet's pure-python maintenance work, so
    this mode moves the expensive part — the columnar
    :meth:`~repro.relational.plan.MaintenancePlan.propagate_counts` probe
    — into per-merge-shard OS processes (:mod:`repro.runtime.procpool`).
    Tuple batches pickle cheaply; the calling view-manager thread blocks
    on the pipe with the GIL released, so shards genuinely overlap on
    real cores.
    """

    name = "procs"

    def __init__(self, config: "SystemConfig") -> None:
        super().__init__(config)
        self._fleet = None

    @property
    def fleet(self):
        """The live :class:`~repro.runtime.procpool.ComputeFleet` (or None)."""
        return self._fleet

    def start(self, system: "WarehouseSystem") -> None:
        from repro.runtime.procpool import start_compute_fleet

        # Fork now: replicas are seeded, and no worker thread exists yet
        # (ParallelKernel only spawns threads inside run()).
        self._fleet = start_compute_fleet(
            system,
            workers=system.config.workers,
            timeout=system.config.runtime_timeout,
        )

    def collect(self, system: "WarehouseSystem") -> int:
        """Drain every compute server's telemetry into the parent kernel."""
        if self._fleet is None:
            return 0
        return self._fleet.collect_into(
            self._kernel.metrics, self._kernel.trace
        )

    def close(self) -> None:
        if self._fleet is not None:
            self._fleet.stop()
            self._fleet = None
