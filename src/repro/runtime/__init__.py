"""Execution runtimes: who runs the process graph (see docs/runtime.md).

* ``des``     — the discrete-event :class:`~repro.sim.kernel.Simulator`,
  virtual time, bit-for-bit deterministic (the default).
* ``threads`` — :class:`~repro.runtime.parallel.ParallelKernel`: every
  process executes on a worker-thread fleet under a monotonic wall clock.
* ``procs``   — threads plus forked per-shard compute servers running the
  columnar maintenance probes on real cores
  (:mod:`repro.runtime.procpool`).

Pick with ``SystemConfig(runtime=..., workers=...)`` or
``python -m repro run --runtime threads --workers 4``.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import ReproError
from repro.runtime.base import DesRuntime, Runtime

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system.config import SystemConfig


def create_runtime(config: "SystemConfig") -> Runtime:
    """The runtime a configuration asks for (validated by the config)."""
    if config.runtime == "des":
        return DesRuntime(config)
    # Imported lazily: DES-only runs never pay for threading machinery.
    from repro.runtime.parallel import ProcsRuntime, ThreadsRuntime

    if config.runtime == "threads":
        return ThreadsRuntime(config)
    if config.runtime == "procs":
        return ProcsRuntime(config)
    raise ReproError(f"unknown runtime {config.runtime!r}")


__all__ = ["DesRuntime", "Runtime", "create_runtime"]
