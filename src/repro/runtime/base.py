"""The runtime interface: who executes the process graph, and how.

A :class:`~repro.system.builder.WarehouseSystem` is a graph of
:class:`~repro.sim.process.Process` objects wired by FIFO
:class:`~repro.sim.network.Channel`\\ s.  Historically the only executor
was the discrete-event :class:`~repro.sim.kernel.Simulator`; this package
factors "who runs the events" behind :class:`Runtime` so the identical
process graph can also execute on real cores under a wall clock
(:mod:`repro.runtime.parallel`).

A runtime owns a *kernel* — the object every process and channel holds as
``self.sim``.  Kernels duck-type the simulator surface (``now``, ``rng``,
``trace``, ``metrics``, ``schedule``, ``schedule_at``, ``run``, ...), so
the rest of the codebase never branches on the execution substrate; the
builder just asks :func:`repro.runtime.create_runtime` for the configured
backend and hands its kernel to every component.

Lifecycle: construct → (builder wires the system) → :meth:`start` once
the system is fully built and seeded → any number of ``kernel.run()``
drains → :meth:`close`.  ``start`` exists because the process-pool
backend must fork its compute servers *after* replicas are seeded but
*before* any worker thread is spawned (forking a threaded process is
unsafe); the DES and thread backends need no such hook.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.sim.kernel import Simulator

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system.builder import WarehouseSystem
    from repro.system.config import SystemConfig


class Runtime:
    """Abstract execution substrate for one warehouse system."""

    #: the ``SystemConfig.runtime`` name this class implements
    name = "abstract"

    @property
    def kernel(self):
        """The simulator-shaped object processes schedule against."""
        raise NotImplementedError

    def start(self, system: "WarehouseSystem") -> None:
        """Post-build hook: the system is wired and seeded, not yet run."""

    def collect(self, system: "WarehouseSystem") -> int:
        """Gather external telemetry into the kernel's registry/trace.

        Called by the system after each drained run and before close.
        The DES and thread backends record directly against the kernel
        and have nothing to fetch; the process-pool backend drains each
        forked compute server's :class:`~repro.obs.collector.ShardTelemetry`
        here.  Returns the number of instruments merged; idempotent
        (drains are additive, so repeated collects never double-count).
        """
        return 0

    def close(self) -> None:
        """Release external resources (worker processes); idempotent."""


class DesRuntime(Runtime):
    """The historical backend: one thread, virtual time, bit-for-bit
    deterministic.  A thin wrapper — the :class:`Simulator` is unchanged,
    so golden trace digests recorded before the runtime split still hold.
    """

    name = "des"

    def __init__(self, config: "SystemConfig") -> None:
        self._kernel = Simulator(seed=config.seed, scheduler=config.scheduler)

    @property
    def kernel(self) -> Simulator:
        return self._kernel
