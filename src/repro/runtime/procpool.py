"""Per-shard compute servers: view maintenance on real cores.

The ``procs`` runtime keeps the process graph on worker threads (the
messaging layer is cheap) but moves the expensive step — the columnar
:meth:`~repro.relational.plan.MaintenancePlan.propagate_counts` probe of
each cached view manager — into forked OS processes, one per merge
shard.  The shard is the natural unit: §6.1 guarantees shards share no
base relation, so each server owns its views' replicas and plans
outright and never coordinates with a sibling.

Wire protocol (one ``multiprocessing.Pipe`` per server, requests
serialised by a parent-side lock):

    ("propagate", view, {relation: {value_tuple: count}})
        -> ("ok", {value_tuple: count})   # the view delta, root layout
        -> ("err", "ExcType: message")
    ("publish", view)
        -> ("ok", key)                    # child-state artifact published
        -> ("err", "ExcType: message")
    ("telemetry",)
        -> ("ok", payload)                # drained ShardTelemetry payload
    ("stop",) -> server exits

Telemetry: each child owns a
:class:`~repro.obs.collector.ShardTelemetry` sink tagged
``origin="<shard>:<pid>"`` and timestamped against the parent kernel's
monotonic epoch.  The propagate path records request counts, row
volumes, latency histograms and one ``proc_compute`` trace event per
batch; ``("telemetry",)`` drains the sink (additively — the sink resets)
so :meth:`ComputeFleet.collect_into` can merge every shard's numbers
into the parent's locked registry after each run.  With
``SystemConfig(profile_plans=True)`` the child also runs its plans under
a :class:`~repro.obs.profiler.PlanProfiler`, published into the drained
payload.

When the system runs with a cache (``SystemConfig(cache=...)``), each
child inherits the artifact-store *root path* across the fork and opens
its own :class:`~repro.cache.store.ArtifactStore` handle on first
``publish`` — the store's atomic write-then-rename discipline makes the
parent and any number of children safe concurrent writers.  A publish
encodes the child's replica + plan auxiliary state with
:func:`~repro.cache.artifacts.encode_child_state` and points the
``<namespace>/procs/<view>`` ref at it, so the parent (or a later run)
can fetch and verify exactly what state the shard had reached.

Batches cross the pipe as layout-positioned tuple bags — the same raw
form ``propagate_counts`` takes — so no :class:`~repro.relational.rows.Row`
objects are ever pickled.  The parent-side :class:`RemoteViewPlan` does
the facade conversion at both edges and plugs into
:meth:`~repro.viewmgr.base.ViewManager.use_remote_plan`.

Fork discipline: servers inherit the already-seeded replicas and compiled
plans by ``fork`` (the view predicates hold lambdas, which never pickle),
so the fleet MUST start before any worker thread exists.
:meth:`~repro.runtime.parallel.ProcsRuntime.start` runs after the builder
seeds the system and before the kernel's first ``run()`` — the only
window in which both constraints hold.
"""

from __future__ import annotations

import multiprocessing
import threading
from typing import TYPE_CHECKING, Mapping

from repro.errors import SimulationError
from repro.relational.columnar import counts_to_rows, layout_of, rows_to_counts
from repro.relational.delta import Delta

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.relational.plan import MaintenancePlan
    from repro.system.builder import WarehouseSystem
    from repro.viewmgr.base import ViewManager


def _publish_child_state(
    store, namespace: str, view: str, plan, replica, layouts: dict, expr: str
) -> str:
    """Encode + publish one view's shard state; returns the artifact key."""
    from repro.cache.artifacts import encode_child_state

    replica_counts = {
        name: (
            layouts[name],
            rows_to_counts(layouts[name], replica.relation(name).counts_view()),
        )
        for name in replica.relation_names
    }
    key, payload = encode_child_state(
        view, expr, plan.engine, replica_counts, plan.export_aux()
    )
    store.put(key, payload)
    store.set_ref(f"{namespace}/procs/{view}", key)
    return key


def _serve_shard(
    conn,
    plans: dict,
    replicas: dict,
    base_layouts: dict,
    cache_info=None,
    telemetry_info=None,
) -> None:
    """Child main loop: propagate/advance/publish each view on request."""
    import os
    import time as _time

    from repro.obs.collector import ShardTelemetry

    store = None
    shard_name, clock0, profile = telemetry_info or ("shard", None, False)
    enabled = telemetry_info is not None
    telemetry = ShardTelemetry(f"{shard_name}:{os.getpid()}", clock0=clock0)
    process_name = f"compute:{shard_name}"
    profiler = None
    if enabled and profile:
        from repro.obs.profiler import PlanProfiler

        profiler = PlanProfiler()
        for plan in plans.values():
            plan.enable_profiling(profiler)
    try:
        while True:
            request = conn.recv()
            if request[0] == "stop":
                return
            if request[0] == "telemetry":
                if profiler is not None:
                    profiler.publish_into(telemetry.registry)
                conn.send(("ok", telemetry.drain()))
                continue
            if request[0] == "publish":
                _kind, view = request
                try:
                    if cache_info is None:
                        raise SimulationError(
                            "compute server has no cache configured"
                        )
                    root, namespace, exprs = cache_info
                    if store is None:
                        from repro.cache.store import ArtifactStore

                        store = ArtifactStore(root)
                    key = _publish_child_state(
                        store,
                        namespace,
                        view,
                        plans[view],
                        replicas[view],
                        base_layouts[view],
                        exprs[view],
                    )
                    if enabled:
                        telemetry.registry.counter(
                            "proc_publishes", view=view
                        ).inc()
                    conn.send(("ok", key))
                except Exception as exc:  # noqa: BLE001 - relayed to parent
                    conn.send(("err", f"{type(exc).__name__}: {exc}"))
                continue
            _kind, view, raw = request
            try:
                t0 = _time.perf_counter_ns() if enabled else 0
                plan = plans[view]
                delta = plan.propagate_counts(raw)
                out = dict(delta.counts())
                replicas[view].apply_deltas(
                    {
                        relation: Delta(
                            counts_to_rows(base_layouts[view][relation], counts)
                        )
                        for relation, counts in raw.items()
                    }
                )
                plan.advance()
                if enabled:
                    elapsed = (_time.perf_counter_ns() - t0) / 1e9
                    # magnitudes (sum of |count|), matching len(Delta) on
                    # the parent so per-view totals reconcile exactly
                    rows_in = sum(
                        abs(c) for counts in raw.values()
                        for c in counts.values()
                    )
                    rows_out = sum(abs(c) for c in out.values())
                    registry = telemetry.registry
                    registry.counter("proc_compute_requests", view=view).inc()
                    registry.counter(
                        "proc_compute_rows_in", view=view
                    ).inc(rows_in)
                    registry.counter(
                        "proc_compute_rows_out", view=view
                    ).inc(rows_out)
                    registry.histogram(
                        "proc_compute_seconds", view=view
                    ).observe(elapsed)
                    telemetry.record(
                        "proc_compute",
                        process_name,
                        view=view,
                        rows_in=rows_in,
                        rows_out=rows_out,
                        seconds=round(elapsed, 9),
                    )
                conn.send(("ok", out))
            except Exception as exc:  # noqa: BLE001 - relayed to the parent
                if enabled:
                    telemetry.registry.counter(
                        "proc_compute_errors", view=view
                    ).inc()
                conn.send(("err", f"{type(exc).__name__}: {exc}"))
    except (EOFError, KeyboardInterrupt):  # parent died / interrupted
        return


class ComputeServer:
    """Parent-side handle on one forked shard server."""

    def __init__(
        self,
        shard: str,
        managers: "list[ViewManager]",
        timeout: float,
        context,
        cache_info: tuple | None = None,
        telemetry_info: tuple | None = None,
    ) -> None:
        self.shard = shard
        self.views = tuple(m.view for m in managers)
        self._timeout = timeout
        self._lock = threading.Lock()
        parent_conn, child_conn = context.Pipe()
        self._conn = parent_conn
        plans = {m.view: m._plan for m in managers}
        replicas = {m.view: m._replica for m in managers}
        base_layouts = {
            m.view: {
                relation: layout_of(m.base_schemas[relation].names)
                for relation in m.definition.base_relations()
            }
            for m in managers
        }
        if cache_info is not None:
            root, namespace = cache_info
            exprs = {m.view: str(m.definition.expression) for m in managers}
            cache_info = (root, namespace, exprs)
        self._process = context.Process(
            target=_serve_shard,
            args=(
                child_conn, plans, replicas, base_layouts, cache_info,
                telemetry_info,
            ),
            name=f"repro-compute-{shard}",
            daemon=True,
        )
        self._process.start()
        child_conn.close()

    def propagate(
        self, view: str, raw: Mapping[str, Mapping[tuple, int]]
    ) -> dict[tuple, int]:
        """Round-trip one batch; blocks (GIL released) awaiting the reply."""
        with self._lock:
            if not self._process.is_alive():
                raise SimulationError(
                    f"compute server {self.shard!r} died "
                    f"(exitcode {self._process.exitcode})"
                )
            self._conn.send(("propagate", view, dict(raw)))
            if not self._conn.poll(self._timeout):
                raise SimulationError(
                    f"compute server {self.shard!r} gave no reply within "
                    f"{self._timeout}s for view {view!r} (hung worker?)"
                )
            status, payload = self._conn.recv()
        if status != "ok":
            raise SimulationError(
                f"compute server {self.shard!r} failed on view {view!r}: "
                f"{payload}"
            )
        return payload

    def publish_state(self, view: str) -> str:
        """Ask the child to publish ``view``'s shard state; returns the key."""
        with self._lock:
            if not self._process.is_alive():
                raise SimulationError(
                    f"compute server {self.shard!r} died "
                    f"(exitcode {self._process.exitcode})"
                )
            self._conn.send(("publish", view))
            if not self._conn.poll(self._timeout):
                raise SimulationError(
                    f"compute server {self.shard!r} gave no publish reply "
                    f"within {self._timeout}s for view {view!r}"
                )
            status, payload = self._conn.recv()
        if status != "ok":
            raise SimulationError(
                f"compute server {self.shard!r} could not publish "
                f"view {view!r}: {payload}"
            )
        return payload

    def collect_telemetry(self) -> dict | None:
        """Drain the child's telemetry sink; ``None`` if the child is gone.

        Additive: the child resets its counters on drain, so merging every
        payload the parent ever receives yields the true totals.
        """
        with self._lock:
            if not self._process.is_alive():
                return None
            try:
                self._conn.send(("telemetry",))
                if not self._conn.poll(self._timeout):
                    raise SimulationError(
                        f"compute server {self.shard!r} gave no telemetry "
                        f"reply within {self._timeout}s"
                    )
                status, payload = self._conn.recv()
            except (BrokenPipeError, EOFError, OSError):
                return None
        return payload if status == "ok" else None

    def stop(self) -> None:
        try:
            with self._lock:
                self._conn.send(("stop",))
        except (BrokenPipeError, OSError):
            pass
        self._process.join(timeout=5.0)
        if self._process.is_alive():  # pragma: no cover - last resort
            self._process.terminate()
            self._process.join(timeout=5.0)
        self._conn.close()


class RemoteViewPlan:
    """The view-manager side of one remote plan: facade in, facade out.

    Mirrors the local plan's ``propagate`` signature so
    :meth:`ViewManager._compute_from` treats both identically; the
    batch-apply/advance half happens inside the server against *its*
    replica (the parent still advances its own replica rows to stay
    restartable).
    """

    def __init__(
        self,
        server: ComputeServer,
        view: str,
        base_layouts: Mapping[str, tuple[str, ...]],
        view_layout: tuple[str, ...],
    ) -> None:
        self._server = server
        self._view = view
        self._base_layouts = dict(base_layouts)
        self._view_layout = view_layout

    def propagate(self, deltas: Mapping[str, Delta]) -> Delta:
        raw = {
            relation: rows_to_counts(self._base_layouts[relation], delta.counts())
            for relation, delta in deltas.items()
            if len(delta)
        }
        if not raw:
            return Delta()
        counts = self._server.propagate(self._view, raw)
        return Delta(counts_to_rows(self._view_layout, counts))


class ComputeFleet:
    """All of a system's shard servers, stoppable as one."""

    def __init__(self, servers: list[ComputeServer]) -> None:
        self.servers = servers

    def publish_all(self) -> dict[str, str]:
        """Publish every offloaded view's shard state; view -> artifact key."""
        published: dict[str, str] = {}
        for server in self.servers:
            for view in server.views:
                published[view] = server.publish_state(view)
        return published

    def collect_into(self, registry, trace) -> int:
        """Drain every shard's telemetry into the parent registry/trace.

        Returns the number of instruments merged across all shards.
        Safe to call repeatedly (drains are additive) and after a child
        died (dead shards are skipped).
        """
        from repro.obs.collector import merge_payload

        merged = 0
        for server in self.servers:
            payload = server.collect_telemetry()
            if payload:
                merged += merge_payload(registry, trace, payload)
        return merged

    def stop(self) -> None:
        for server in self.servers:
            server.stop()
        self.servers = []


def start_compute_fleet(
    system: "WarehouseSystem",
    workers: int | None = None,
    timeout: float = 60.0,
) -> ComputeFleet:
    """Fork one compute server per merge shard and install remote plans.

    Only cached-mode managers whose expression compiled to a columnar
    plan are offloaded; anything else keeps its in-process path (the
    query-back modes rebuild a pre-state per batch and never had a
    standing plan to ship).  ``workers`` caps the fleet size — beyond it,
    shards share servers round-robin, still never splitting a shard.
    """
    context = multiprocessing.get_context("fork")
    offloadable: dict[str, list] = {}
    for manager in system.view_managers.values():
        if (
            manager.mode == "cached"
            and manager._plan is not None
            and manager._plan.engine == "columnar"
        ):
            shard = system.view_to_merge[manager.view]
            offloadable.setdefault(shard, []).append(manager)

    cache_info = None
    store = getattr(system, "cache_store", None)
    if store is not None:
        cache_info = (str(store.root), system.config.cache.namespace)

    collect = getattr(system.config, "collect_telemetry", True)
    clock0 = getattr(system.sim, "clock_epoch", None)
    profile = getattr(system.config, "profile_plans", False)

    servers: list[ComputeServer] = []
    if offloadable:
        shards = sorted(offloadable)
        cap = max(1, min(len(shards), workers or len(shards)))
        buckets: list[list] = [[] for _ in range(cap)]
        names: list[list[str]] = [[] for _ in range(cap)]
        for index, shard in enumerate(shards):
            buckets[index % cap].extend(offloadable[shard])
            names[index % cap].append(shard)
        for bucket, shard_names in zip(buckets, names):
            shard_label = "+".join(shard_names)
            telemetry_info = (shard_label, clock0, profile) if collect else None
            server = ComputeServer(
                shard_label, bucket, timeout, context,
                cache_info=cache_info,
                telemetry_info=telemetry_info,
            )
            servers.append(server)
            for manager in bucket:
                base_layouts = {
                    relation: layout_of(manager.base_schemas[relation].names)
                    for relation in manager.definition.base_relations()
                }
                manager.use_remote_plan(
                    RemoteViewPlan(
                        server,
                        manager.view,
                        base_layouts,
                        manager._plan._root.layout,
                    )
                )
    return ComputeFleet(servers)


__all__ = [
    "ComputeFleet",
    "ComputeServer",
    "RemoteViewPlan",
    "start_compute_fleet",
]
