"""Source transactions.

Section 2.1 assumes one update per transaction spanning one source; the
algorithms are extended in Section 6.2 to transactions with several
updates, possibly across sources.  :class:`SourceTransaction` covers both:
it is a non-empty list of updates plus the name of the originating source
(or the coordinator, for global transactions).
"""

from __future__ import annotations

from dataclasses import dataclass, field

from repro.errors import SourceError
from repro.relational.delta import Delta
from repro.sources.update import Update


@dataclass(frozen=True, slots=True)
class SourceTransaction:
    """An atomic group of base-data updates."""

    origin: str
    updates: tuple[Update, ...]

    def __post_init__(self) -> None:
        if not self.updates:
            raise SourceError("a transaction must contain at least one update")

    @classmethod
    def single(cls, origin: str, update: Update) -> "SourceTransaction":
        """The Section-2 common case: one update per transaction."""
        return cls(origin, (update,))

    @property
    def relations(self) -> frozenset[str]:
        return frozenset(u.relation for u in self.updates)

    def deltas(self) -> dict[str, Delta]:
        """Per-relation net deltas of this transaction."""
        merged: dict[str, Delta] = {}
        for update in self.updates:
            existing = merged.get(update.relation, Delta())
            merged[update.relation] = existing.combined(update.as_delta())
        return merged

    def __str__(self) -> str:
        inner = "; ".join(str(u) for u in self.updates)
        return f"Txn@{self.origin}[{inner}]"


@dataclass(frozen=True, slots=True)
class CommittedTransaction:
    """A transaction that committed, with its global commit position."""

    sequence: int
    commit_time: float
    transaction: SourceTransaction
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def relations(self) -> frozenset[str]:
        return self.transaction.relations

    def deltas(self) -> dict[str, Delta]:
        return self.transaction.deltas()

    def __str__(self) -> str:
        return f"T{self.sequence}@{self.commit_time:.3f} {self.transaction}"
