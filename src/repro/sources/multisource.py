"""Multi-source (global) transactions, §6.2.

"A source transaction may update more than one base relation that belongs
to more than one view.  ...  if sources have transactions (local or
global) involving more than one update, then all updates in a transaction
should be reflected in either all views or none."

The coordinator commits a global transaction atomically against the
shared world (the §6.2 serializability assumption) and reports it to the
integrator as a single unit, so the integrator assigns it **one** number —
one VUT row — and its REL set covers every view any of its updates
touches.  SPA and PA then apply all resulting action lists in one
warehouse transaction, giving the all-or-nothing visibility §6.2 asks for.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable

from repro.messages import UpdateNotification
from repro.sim.process import Process
from repro.sources.transactions import CommittedTransaction, SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class GlobalTransactionCoordinator(Process):
    """Commits transactions spanning several sources atomically."""

    def __init__(
        self,
        sim: "Simulator",
        world: SourceWorld,
        name: str = "coordinator",
        integrator_name: str = "integrator",
    ) -> None:
        super().__init__(sim, name)
        self.world = world
        self.integrator_name = integrator_name
        self.transactions_committed = 0

    def execute(self, updates: Iterable[Update]) -> CommittedTransaction:
        """Commit all ``updates`` as one global transaction."""
        transaction = SourceTransaction(self.name, tuple(updates))
        committed = self.world.commit(transaction, self.sim.now)
        self.transactions_committed += 1
        sources = sorted(
            {self.world.owner_of(rel) for rel in transaction.relations}
        )
        self.trace(
            "global_commit",
            seq=committed.sequence,
            sources=tuple(sources),
            relations=tuple(sorted(transaction.relations)),
        )
        self.send(
            self.integrator_name,
            UpdateNotification(transaction, self.sim.now, committed.sequence),
        )
        return committed

    def handle(self, message: object, sender: Process) -> None:
        raise NotImplementedError(
            "the coordinator is driven by scheduled execute() calls"
        )
