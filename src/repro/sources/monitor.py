"""Source monitors: observing legacy sources that do not report updates.

The WHIPS prototype ([15]) put a *wrapper/monitor* in front of each
source; for legacy systems without triggers or logs, the monitor detects
changes by periodically snapshotting the source and diffing.  This module
reproduces that substrate:

* :class:`SilentSource` — commits transactions into the world like a
  normal source but reports **nothing** to the integrator;
* :class:`SnapshotDiffMonitor` — a process that polls the silent source's
  relations every ``period``, diffs against its previous snapshot, and
  reports one synthesized multi-update transaction per poll.

Consequences, faithfully modelled: transaction boundaries *within* a poll
interval are lost (the diff batches them — every poll is one §6.2-style
multi-update transaction), and deletes/inserts that cancel within an
interval are never observed.  The warehouse is then consistent with the
**observed** schedule: each state corresponds to a real source state (the
one at some poll instant), so strong consistency survives while
completeness w.r.t. the fine-grained schedule is forfeited — exactly the
trade-off of snapshot-based monitoring.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SourceError
from repro.messages import UpdateNotification
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.sim.process import Process
from repro.sources.transactions import CommittedTransaction, SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class SilentSource(Process):
    """A legacy source: commits locally, never reports upstream."""

    def __init__(self, sim: "Simulator", name: str, world: SourceWorld) -> None:
        super().__init__(sim, name)
        self.world = world
        self.transactions_committed = 0

    @property
    def relations(self) -> frozenset[str]:
        return self.world.relations_of(self.name)

    def execute(self, transaction: SourceTransaction) -> CommittedTransaction:
        if transaction.origin != self.name:
            raise SourceError(
                f"silent source {self.name!r} asked to run a transaction "
                f"from {transaction.origin!r}"
            )
        foreign = transaction.relations - self.relations
        if foreign:
            raise SourceError(
                f"silent source {self.name!r} does not own {sorted(foreign)}"
            )
        committed = self.world.commit(transaction, self.sim.now)
        self.transactions_committed += 1
        self.trace("silent_commit", seq=committed.sequence)
        return committed

    def execute_update(self, update: Update) -> CommittedTransaction:
        return self.execute(SourceTransaction.single(self.name, update))

    def handle(self, message: object, sender: Process) -> None:
        raise SourceError("silent sources are driven by execute() calls")


class SnapshotDiffMonitor(Process):
    """Polls a silent source and synthesizes update reports from diffs."""

    def __init__(
        self,
        sim: "Simulator",
        source: SilentSource,
        period: float,
        name: str | None = None,
        integrator_name: str = "integrator",
        stop_after: float | None = None,
    ) -> None:
        if period <= 0:
            raise SourceError(f"poll period must be positive, got {period}")
        super().__init__(sim, name or f"monitor:{source.name}")
        self.source = source
        self.period = period
        self.integrator_name = integrator_name
        self.stop_after = stop_after
        self.polls = 0
        self.reports = 0
        self._last: dict[str, Relation] = {
            relation: source.world.current.relation(relation).copy()
            for relation in sorted(source.relations)
        }
        sim.schedule(period, self._poll)

    def _poll(self) -> None:
        self.polls += 1
        updates: list[Update] = []
        for relation in sorted(self.source.relations):
            current = self.source.world.current.relation(relation)
            diff = Delta.between(self._last[relation], current)
            for row, count in diff.deletions():
                updates.extend([Update.delete(relation, row)] * count)
            for row, count in diff.insertions():
                updates.extend([Update.insert(relation, row)] * count)
            if diff:
                self._last[relation] = current.copy()
        if updates:
            # One synthesized transaction per poll: the batch is atomic
            # from the warehouse's point of view (§6.2 semantics).
            transaction = SourceTransaction(self.source.name, tuple(updates))
            self.send(
                self.integrator_name,
                UpdateNotification(transaction, self.sim.now),
            )
            self.reports += 1
            self.trace("monitor_report", updates=len(updates))
        if self.stop_after is None or self.sim.now + self.period <= self.stop_after:
            self.sim.schedule(self.period, self._poll)

    def handle(self, message: object, sender: Process) -> None:
        raise SourceError("monitors are timer-driven; they take no messages")
