"""Base-data updates: single-row inserts, deletes and modifications.

The paper's examples use exactly these three kinds (§3.1: "each update is
a single tuple insert, delete, or modification").  An :class:`Update`
converts to a signed-count :class:`~repro.relational.delta.Delta` for the
maintenance machinery.
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import SourceError
from repro.relational.delta import Delta
from repro.relational.rows import Row


class UpdateKind(enum.Enum):
    """The three single-row update kinds of the paper's data model (§3.1)."""

    INSERT = "insert"
    DELETE = "delete"
    MODIFY = "modify"


@dataclass(frozen=True, slots=True)
class Update:
    """One single-row change to one base relation."""

    relation: str
    kind: UpdateKind
    row: Row
    new_row: Row | None = None

    def __post_init__(self) -> None:
        if self.kind is UpdateKind.MODIFY:
            if self.new_row is None:
                raise SourceError("MODIFY update needs a new_row")
        elif self.new_row is not None:
            raise SourceError(f"{self.kind.value} update must not carry a new_row")

    # -- constructors -------------------------------------------------------
    @classmethod
    def insert(cls, relation: str, row: Row | dict) -> "Update":
        return cls(relation, UpdateKind.INSERT, _coerce(row))

    @classmethod
    def delete(cls, relation: str, row: Row | dict) -> "Update":
        return cls(relation, UpdateKind.DELETE, _coerce(row))

    @classmethod
    def modify(cls, relation: str, old: Row | dict, new: Row | dict) -> "Update":
        return cls(relation, UpdateKind.MODIFY, _coerce(old), _coerce(new))

    # -- semantics ------------------------------------------------------------
    def as_delta(self) -> Delta:
        if self.kind is UpdateKind.INSERT:
            return Delta.insert(self.row)
        if self.kind is UpdateKind.DELETE:
            return Delta.delete(self.row)
        assert self.new_row is not None
        return Delta.modify(self.row, self.new_row)

    def touched_rows(self) -> tuple[Row, ...]:
        """Rows whose values the relevance filter may inspect."""
        if self.kind is UpdateKind.MODIFY:
            assert self.new_row is not None
            return (self.row, self.new_row)
        return (self.row,)

    def __str__(self) -> str:
        if self.kind is UpdateKind.MODIFY:
            return f"modify {self.relation}: {self.row} -> {self.new_row}"
        return f"{self.kind.value} {self.relation}: {self.row}"


def _coerce(row: Row | dict) -> Row:
    return row if isinstance(row, Row) else Row(row)
