"""The shared, serializable base-data state.

:class:`SourceWorld` holds the ground-truth contents of every base
relation across all sources, in a :class:`VersionedDatabase`.  Source
processes commit transactions into it one at a time (the simulator's
event loop serialises them), which realises the paper's assumption that
"the execution of source transactions is serializable" (§2.1).

The world records the committed-transaction log — the schedule
``S = U1; U2; ... Uf`` — and exposes the consistent source state sequence
``ss_0 ... ss_f`` that all consistency definitions are stated against.
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SourceError
from repro.relational.database import Database, VersionedDatabase
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sources.transactions import CommittedTransaction, SourceTransaction


class SourceWorld:
    """Ground truth for all base data, with a full commit history."""

    def __init__(self) -> None:
        self._db = VersionedDatabase()
        self._log: list[CommittedTransaction] = []
        self._owners: dict[str, str] = {}

    # -- schema / ownership ------------------------------------------------
    def create_relation(
        self,
        name: str,
        schema: Schema,
        owner: str,
        rows: Iterable[Row | dict] = (),
    ) -> Relation:
        """Register a base relation owned by source ``owner``."""
        relation = self._db.create_relation(name, schema, rows)
        self._owners[name] = owner
        return relation

    @property
    def schemas(self) -> Mapping[str, Schema]:
        return self._db.schemas

    def owner_of(self, relation: str) -> str:
        try:
            return self._owners[relation]
        except KeyError:
            raise SourceError(f"unknown relation {relation!r}") from None

    def relations_of(self, owner: str) -> frozenset[str]:
        return frozenset(n for n, o in self._owners.items() if o == owner)

    # -- commits ------------------------------------------------------------
    def commit(
        self, transaction: SourceTransaction, time: float
    ) -> CommittedTransaction:
        """Atomically apply ``transaction``; returns its committed record.

        The commit position in the log is the transaction's place in the
        serial schedule S.
        """
        if self._log and time < self._log[-1].commit_time:
            raise SourceError(
                f"commit at time {time} precedes last commit "
                f"at {self._log[-1].commit_time}"
            )
        for relation in transaction.relations:
            if relation not in self._owners:
                raise SourceError(f"unknown relation {relation!r}")
        version = self._db.commit(transaction.deltas())
        committed = CommittedTransaction(version, time, transaction)
        self._log.append(committed)
        return committed

    # -- history -----------------------------------------------------------------
    @property
    def version(self) -> int:
        """Number of committed transactions so far (f in the paper)."""
        return self._db.version

    @property
    def log(self) -> tuple[CommittedTransaction, ...]:
        return tuple(self._log)

    @property
    def current(self) -> Database:
        return self._db.current

    def state_after(self, sequence: int) -> Database:
        """Source state ``ss_sequence`` (0 = initial state)."""
        return self._db.as_of(sequence)

    def state_sequence(self) -> list[Database]:
        """The full consistent source state sequence ``ss_0 .. ss_f``."""
        return [self._db.as_of(v) for v in range(self._db.version + 1)]

    def prune_history_below(self, sequence: int) -> None:
        self._db.prune_below(sequence)
