"""Simulated autonomous data sources.

Each source owns a disjoint set of base relations, executes serializable
local transactions against the shared :class:`SourceWorld`, and reports
each committed transaction to the integrator in commit order — exactly the
source model of the paper's Section 2.1 (one update per transaction) and
Section 6.2 (multi-update and multi-source transactions).
"""

from repro.sources.update import Update, UpdateKind
from repro.sources.transactions import SourceTransaction, CommittedTransaction
from repro.sources.world import SourceWorld
from repro.sources.source import Source
from repro.sources.multisource import GlobalTransactionCoordinator
from repro.sources.monitor import SilentSource, SnapshotDiffMonitor

__all__ = [
    "SilentSource",
    "SnapshotDiffMonitor",
    "Update",
    "UpdateKind",
    "SourceTransaction",
    "CommittedTransaction",
    "SourceWorld",
    "Source",
    "GlobalTransactionCoordinator",
]
