"""A single autonomous data source.

A :class:`Source` owns a set of base relations inside the shared
:class:`~repro.sources.world.SourceWorld`.  Workload drivers schedule
``source.execute(txn)`` calls on the simulator; each call commits the
transaction serializably (the event loop serialises commits) and reports
it to the integrator over the source's FIFO channel — so "updates from the
same source arrive at the integrator in the order they committed" (§3.2)
holds by construction.
"""

from __future__ import annotations

from typing import TYPE_CHECKING

from repro.errors import SourceError
from repro.messages import UpdateNotification
from repro.sim.process import Process
from repro.sources.transactions import CommittedTransaction, SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class Source(Process):
    """One autonomous source: local serializable transactions only."""

    def __init__(
        self,
        sim: "Simulator",
        name: str,
        world: SourceWorld,
        integrator_name: str = "integrator",
    ) -> None:
        super().__init__(sim, name)
        self.world = world
        self.integrator_name = integrator_name
        self.transactions_committed = 0

    @property
    def relations(self) -> frozenset[str]:
        return self.world.relations_of(self.name)

    # -- transaction execution -----------------------------------------------
    def execute(self, transaction: SourceTransaction) -> CommittedTransaction:
        """Commit ``transaction`` locally and report it upstream."""
        if transaction.origin != self.name:
            raise SourceError(
                f"source {self.name!r} asked to run a transaction from "
                f"{transaction.origin!r}"
            )
        foreign = transaction.relations - self.relations
        if foreign:
            raise SourceError(
                f"source {self.name!r} does not own relations {sorted(foreign)}; "
                f"use a GlobalTransactionCoordinator for multi-source "
                f"transactions (§6.2)"
            )
        committed = self.world.commit(transaction, self.sim.now)
        self.transactions_committed += 1
        self.trace(
            "src_commit",
            seq=committed.sequence,
            relations=tuple(sorted(transaction.relations)),
        )
        self.send(
            self.integrator_name,
            UpdateNotification(transaction, self.sim.now, committed.sequence),
        )
        return committed

    def execute_update(self, update: Update) -> CommittedTransaction:
        """Convenience: commit a single-update transaction (§2.1 model)."""
        return self.execute(SourceTransaction.single(self.name, update))

    def handle(self, message: object, sender: Process) -> None:
        raise SourceError(
            f"sources are driven by scheduled execute() calls, not messages; "
            f"{self.name} got {type(message).__name__}"
        )
