"""Command-line interface: ``python -m repro <command>``.

Commands:

* ``demo``  — the Table-1 walkthrough: one update, two views, one atomic
  warehouse transaction; prints the state sequence and the MVC verdict.
* ``trace`` — replay a worked example (2, 3, 4 or 5) and print the VUT
  transitions like the paper's tables.
* ``run``   — assemble a full system over a chosen schema/view suite,
  drive a seeded workload through it, and print metrics plus the achieved
  MVC level.  Every architectural knob is a flag.
* ``sweep`` — run several manager kinds on one identical workload and
  tabulate the comparison.
* ``inspect`` — run a workload and interrogate its observability record:
  per-update causal lineage chains (source commit → warehouse commit,
  with queue-wait vs service breakdowns) and the metrics registry;
  ``--live`` renders the registry periodically while the run executes.
* ``top``   — run a workload while rendering the live metrics registry
  (family-level, one-screen) on a wall-clock interval; most useful with
  ``--runtime threads``/``procs`` where the run takes real time.
* ``conformance`` — the schedule-exploration engine: ``explore`` hunts a
  configuration's seed space for MVC violations (and shrinks what it
  finds), ``replay`` re-executes a saved reproducer byte-for-byte, and
  ``matrix`` checks the guarantee matrix (see ``docs/conformance.md``).

``run``, ``sweep`` and ``inspect`` accept ``--trace-out PATH``; the
extension picks the format — ``.json`` is Chrome/Perfetto-loadable
(https://ui.perfetto.dev), ``.jsonl`` a lossless event log, ``.txt`` a
text timeline (see ``docs/observability.md``).

Examples::

    python -m repro demo
    python -m repro trace 5
    python -m repro run --schema paper --manager strong --updates 200 \\
        --rate 4 --policy dbms-dependency --merges 2
    python -m repro run --trace-out trace.json
    python -m repro inspect --update 7
    python -m repro inspect --registry proc_ --slowest 3
    python -m repro conformance explore --manager naive --level strong \\
        --seeds 200 --out repro.json
    python -m repro conformance replay repro.json
    python -m repro conformance matrix --budget 60 --out-dir repros/
"""

from __future__ import annotations

import argparse
from typing import Sequence

from repro.merge.pa import PaintingAlgorithm
from repro.merge.spa import SimplePaintingAlgorithm
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import (
    MANAGER_KINDS,
    MERGE_ALGORITHMS,
    RUNTIMES,
    SUBMISSION_POLICIES,
    SystemConfig,
)
from repro.viewmgr.actions import ActionList
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import (
    bank_views,
    bank_world,
    clustered_views,
    clustered_world,
    paper_views_example1,
    paper_views_example2,
    paper_views_example3,
    paper_world,
    star_views,
    star_world,
)

SCHEMAS = {
    "paper": lambda: (paper_world(), paper_views_example2()),
    "paper-ex1": lambda: (paper_world(), paper_views_example1()),
    "paper-ex3": lambda: (paper_world(), paper_views_example3()),
    "bank": lambda: (bank_world(customers=8), bank_views()),
    "star": lambda: (star_world(), star_views()),
    "star-agg": lambda: (star_world(), star_views(aggregates=True)),
    "clustered": lambda: (clustered_world(3), clustered_views(3)),
}


def _cmd_demo(args: argparse.Namespace) -> int:
    world = paper_world()
    system = WarehouseSystem(
        world, paper_views_example1(), SystemConfig(manager_kind="complete")
    )
    system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
    system.run()
    print("Table 1: insert [2,3] into S; V1 = R ./ S, V2 = S ./ T")
    for state in system.history:
        v1 = [tuple(r.values()) for r in state.view("V1").sorted_rows()]
        v2 = [tuple(r.values()) for r in state.view("V2").sorted_rows()]
        print(f"  t={state.time:6.2f}  V1={v1}  V2={v2}")
    print(f"MVC level achieved: {system.classify()}")
    return 0


def _trace_al(view: str, covered: Sequence[int]) -> ActionList:
    return ActionList.from_delta(
        view, view, tuple(covered), Delta.insert(Row(x=covered[-1]))
    )


_TRACES = {
    "2": (
        SimplePaintingAlgorithm,
        False,
        [
            ("REL1", 1, {"V1", "V2"}),
            ("REL2", 2, {"V2", "V3"}),
            ("AL21", "V2", [1]),
        ],
    ),
    "3": (
        SimplePaintingAlgorithm,
        False,
        [
            ("REL1", 1, {"V1", "V2"}),
            ("AL21", "V2", [1]),
            ("REL2", 2, {"V3"}),
            ("REL3", 3, {"V2"}),
            ("AL32", "V3", [2]),
            ("AL23", "V2", [3]),
            ("AL11", "V1", [1]),
        ],
    ),
    "4": (
        PaintingAlgorithm,
        True,
        [
            ("REL1", 1, {"V1", "V2"}),
            ("REL2", 2, {"V2", "V3"}),
            ("REL3", 3, {"V1", "V2"}),
            ("AL13", "V1", [1, 3]),
            ("AL21", "V2", [1]),
            ("AL22", "V2", [2]),
            ("AL32", "V3", [2]),
            ("AL23", "V2", [3]),
        ],
    ),
    "5": (
        PaintingAlgorithm,
        True,
        [
            ("REL1", 1, {"V1", "V2"}),
            ("REL2", 2, {"V2", "V3"}),
            ("REL3", 3, {"V2", "V3"}),
            ("AL21", "V2", [1]),
            ("AL23", "V2", [2, 3]),
            ("AL32", "V3", [2]),
            ("AL11", "V1", [1]),
            ("AL33", "V3", [3]),
        ],
    ),
}


def _cmd_trace(args: argparse.Namespace) -> int:
    algorithm_cls, show_state, events = _TRACES[args.example]
    algorithm = algorithm_cls(("V1", "V2", "V3"))
    print(f"Example {args.example} "
          f"({'PA' if algorithm_cls is PaintingAlgorithm else 'SPA'}):")
    for event in events:
        name = event[0]
        if name.startswith("REL"):
            units = algorithm.receive_rel(event[1], frozenset(event[2]))
        else:
            units = algorithm.receive_action_list(_trace_al(event[1], event[2]))
        applied = (
            ", ".join("{" + ",".join(f"U{r}" for r in u.rows) + "}" for u in units)
            or "-"
        )
        print(f"\nafter {name}: applied {applied}")
        rendering = algorithm.vut.render(show_state=show_state)
        print(rendering if rendering.strip() else "  (VUT empty)")
    return 0


def _cmd_sweep(args: argparse.Namespace) -> int:
    from repro.system.sweep import format_sweep, sweep

    world_factory = lambda: SCHEMAS[args.schema]()[0]  # noqa: E731
    views_factory = lambda: SCHEMAS[args.schema]()[1]  # noqa: E731
    _check_runtime_flags(args)
    variants = {}
    for kind in args.variants.split(","):
        kind = kind.strip()
        if kind not in MANAGER_KINDS:
            raise SystemExit(f"unknown manager kind {kind!r}")
        variants[kind] = SystemConfig(
            manager_kind=kind,
            runtime=args.runtime,
            workers=args.workers,
            seed=args.seed,
        )
    spec = WorkloadSpec(
        updates=args.updates,
        rate=args.rate,
        seed=args.seed,
        mix=(0.6, 0.2, 0.2),
        arrivals="poisson",
    )
    on_system = None
    if args.trace_out:
        from pathlib import Path

        from repro.obs import write_trace

        base = Path(args.trace_out)

        def on_system(name: str, system: WarehouseSystem) -> None:
            # one trace file per variant: trace.json -> trace-strong.json
            path = base.with_name(f"{base.stem}-{name}{base.suffix}")
            write_trace(system.sim.trace, path)
            print(f"trace ({name}): {path}")

    rows = sweep(world_factory, views_factory, spec, variants,
                 on_system=on_system)
    print(f"schema={args.schema}  updates={args.updates}  rate={args.rate}")
    print(format_sweep(rows))
    return 0 if all(r.verified for r in rows) else 1


def _check_runtime_flags(args: argparse.Namespace) -> None:
    if args.workers is not None and args.runtime == "des":
        raise SystemExit(
            "--workers only applies to parallel runtimes; "
            "pick --runtime threads or --runtime procs"
        )


def _slo_from_flags(args: argparse.Namespace):
    """A SloPolicy from --slo-* flags, or None when none are set."""
    staleness = getattr(args, "slo_staleness", None)
    queue = getattr(args, "slo_queue", None)
    vut = getattr(args, "slo_vut", None)
    if staleness is None and queue is None and vut is None:
        return None
    from repro.obs.freshness import SloPolicy

    return SloPolicy(
        max_staleness=staleness, max_queue_depth=queue, max_vut=vut
    )


def _build_system(args: argparse.Namespace) -> WarehouseSystem:
    """Assemble one loaded (not yet run) system from run/inspect flags."""
    world, views = SCHEMAS[args.schema]()
    if getattr(args, "views_file", None):
        from repro.relational.catalog import load_views

        views = load_views(args.views_file)
    _check_runtime_flags(args)
    config = SystemConfig(
        manager_kind=args.manager,
        merge_algorithm=args.algorithm,
        submission_policy=args.policy,
        merge_groups=args.merges,
        manager_mode=args.mode,
        use_selection_filtering=args.filtering,
        warehouse_executors=args.executors,
        merge_message_cost=args.merge_cost,
        runtime=args.runtime,
        workers=args.workers,
        seed=args.seed,
        freshness_tick=getattr(args, "freshness_tick", None),
        slo=_slo_from_flags(args),
        profile_plans=getattr(args, "profile", False),
    )
    spec = WorkloadSpec(
        updates=args.updates,
        rate=args.rate,
        seed=args.seed,
        mix=(0.6, 0.2, 0.2),
        arrivals="poisson",
    )
    system = WarehouseSystem(world, views, config)
    post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    return system


def _build_and_run(args: argparse.Namespace) -> WarehouseSystem:
    """Assemble + drive one system from run/inspect-style flags."""
    system = _build_system(args)
    system.run()
    return system


def _format_top(registry, prefix: str = "") -> str:
    """A one-screen family-level registry rendering (the ``top`` view)."""
    from repro.obs.registry import Counter, Gauge, Histogram

    families: dict[str, list] = {}
    for metric in registry:
        if prefix and not metric.name.startswith(prefix):
            continue
        families.setdefault(metric.name, []).append(metric)
    lines = [f"{'family':<30} {'kind':<9} {'n':>3}  aggregate"]
    for name in sorted(families):
        group = families[name]
        first = group[0]
        if isinstance(first, Histogram):
            count = sum(m.count for m in group)
            total = sum(m.total for m in group)
            mean = total / count if count else 0.0
            agg = f"count={count} mean={mean:.6g} max={max(m.max for m in group):.6g}"
            kind = "histogram"
        elif isinstance(first, Gauge):
            agg = " ".join(
                f"{_label_suffix(m)}={m.value:.6g}" for m in group[:4]
            )
            if len(group) > 4:
                agg += f" (+{len(group) - 4} more)"
            kind = "gauge"
        elif isinstance(first, Counter):
            agg = f"total={sum(m.value for m in group):.6g}"
            kind = "counter"
        else:  # pragma: no cover - future metric kinds
            agg = ""
            kind = type(first).__name__
        lines.append(f"{name:<30} {kind:<9} {len(group):>3}  {agg}")
    return "\n".join(lines)


def _label_suffix(metric) -> str:
    return ",".join(v for _k, v in metric.labels) or metric.name


def _run_live(system: WarehouseSystem, interval: float) -> None:
    """Drive the run while rendering the registry every ``interval`` s.

    The renderer runs on a side thread reading the locked registry, so
    it works under the wall-clock runtimes while workers are hot; a DES
    run usually finishes before the first frame and just prints the
    final state.
    """
    import threading
    import time as _time

    stop = threading.Event()

    def _frames() -> None:
        while not stop.wait(interval):
            print(f"\n-- live registry @ wall {_time.strftime('%H:%M:%S')} "
                  f"(sim t={system.sim.now:.2f}) --")
            print(_format_top(system.sim.metrics))

    painter = threading.Thread(
        target=_frames, name="repro-top", daemon=True
    )
    painter.start()
    try:
        system.run()
    finally:
        stop.set()
        painter.join(timeout=1.0)


def _finish_telemetry_output(system: WarehouseSystem,
                             args: argparse.Namespace) -> int:
    """Shared run/inspect/top epilogue; returns 2 on an SLO breach."""
    exit_code = 0
    if system.monitor is not None:
        print()
        print(system.monitor.format())
        if system.monitor.breaches:
            exit_code = 2
    if getattr(args, "profile", False):
        print("\nplan profile (heaviest nodes first):")
        print(system.profile_report())
    metrics_out = getattr(args, "metrics_out", None)
    if metrics_out:
        from repro.obs import write_metrics

        written = write_metrics(system.sim.metrics, metrics_out)
        print(f"metrics: {written}")
    return exit_code


def _write_trace_out(system: WarehouseSystem, path: str | None) -> None:
    if path:
        from repro.obs import write_trace

        written = write_trace(system.sim.trace, path)
        print(f"trace: {written} ({len(system.sim.trace)} events)")


def _cmd_run(args: argparse.Namespace) -> int:
    system = _build_and_run(args)
    metrics = system.metrics()
    print(f"schema={args.schema} views={len(system.definitions)} "
          f"manager={args.manager} merge x{len(system.merge_processes)} "
          f"policy={args.policy}")
    print(metrics.format_row())
    print(f"promised MVC level: {system.expected_level()}")
    print(f"achieved MVC level: {system.classify()}")
    report = system.check_mvc("auto")
    print(f"verification: {'OK' if report else 'FAILED — ' + report.reason}")
    slo_exit = _finish_telemetry_output(system, args)
    _write_trace_out(system, args.trace_out)
    system.close()
    if not report:
        return 1
    return slo_exit


def _cmd_top(args: argparse.Namespace) -> int:
    system = _build_system(args)
    _run_live(system, args.interval)
    print(f"\n-- final registry (sim t={system.sim.now:.2f}, "
          f"{len(system.sim.trace)} trace events) --")
    print(_format_top(system.sim.metrics, args.prefix or ""))
    exit_code = _finish_telemetry_output(system, args)
    system.close()
    return exit_code


def _cmd_inspect(args: argparse.Namespace) -> int:
    from repro.obs import Lineage

    if getattr(args, "live", False):
        system = _build_system(args)
        _run_live(system, args.live_interval)
    else:
        system = _build_and_run(args)
    lineage = Lineage.from_system(system)
    print(f"schema={args.schema} manager={args.manager} "
          f"updates={args.updates} rate={args.rate} seed={args.seed}")
    print(f"{len(lineage)} updates numbered, "
          f"{len(lineage) - len(lineage.unreflected())} reflected, "
          f"{len(system.sim.trace)} trace events")

    if args.update is not None:
        for update_id in args.update:
            print()
            print(lineage.for_update(update_id).format())
    else:
        chains = [c for c in lineage.all() if c.reflected]
        chains.sort(key=lambda c: c.latency or 0.0, reverse=True)
        shown = chains[: args.slowest]
        print(f"\nslowest {len(shown)} update(s) by commit-to-visibility "
              f"latency (rerun with --update N for any chain):")
        for chain in shown:
            print()
            print(chain.format())
        for update_id in lineage.unreflected():
            print(f"\nU{update_id}: numbered but never reflected "
                  f"(still queued at end of run?)")

    if args.registry is not None:
        prefix = args.registry
        print(f"\nmetrics registry"
              + (f" (prefix {prefix!r})" if prefix else "") + ":")
        print(system.sim.metrics.format(prefix))

    exit_code = _finish_telemetry_output(system, args)
    _write_trace_out(system, args.trace_out)
    system.close()
    return exit_code


def _cmd_cache(args: argparse.Namespace) -> int:
    from repro.cache.store import ArtifactStore

    store = ArtifactStore(args.root)
    if args.cache_command == "gc":
        report = store.gc(
            max_bytes=args.max_bytes, max_artifacts=args.max_artifacts
        )
        print(f"evicted {report['evicted']} artifact(s), "
              f"freed {report['freed_bytes']} byte(s)")
    stats = store.stats()
    print(f"store: {store.root}")
    for name in ("artifacts", "bytes", "refs", "pinned", "puts", "hits",
                 "misses", "integrity_failures", "evictions"):
        print(f"  {name:>18}: {stats[name]}")
    return 0


def build_parser() -> argparse.ArgumentParser:
    parser = argparse.ArgumentParser(
        prog="repro",
        description="Multiple View Consistency for Data Warehousing "
        "(ICDE 1997) — reproduction toolkit",
    )
    sub = parser.add_subparsers(dest="command", required=True)

    sub.add_parser("demo", help="the Table-1 walkthrough")

    trace = sub.add_parser("trace", help="replay a worked example's VUT trace")
    trace.add_argument("example", choices=sorted(_TRACES))

    def add_runtime_flags(p: argparse.ArgumentParser) -> None:
        p.add_argument("--runtime", choices=RUNTIMES, default="des",
                       help="execution backend: des (virtual time, default), "
                       "threads (wall clock, worker threads), procs (threads "
                       "+ per-shard compute processes); see docs/runtime.md")
        p.add_argument("--workers", type=int, default=None, metavar="N",
                       help="worker-fleet size for parallel runtimes "
                       "(default: the machine's core count; rejected "
                       "under --runtime des)")

    def add_system_flags(p: argparse.ArgumentParser,
                         updates: int = 100) -> None:
        p.add_argument("--schema", choices=sorted(SCHEMAS), default="paper")
        p.add_argument("--manager", choices=MANAGER_KINDS, default="complete")
        p.add_argument("--algorithm", choices=MERGE_ALGORITHMS, default="auto")
        p.add_argument("--policy", choices=SUBMISSION_POLICIES,
                       default="dependency-sequenced")
        p.add_argument("--mode", choices=("cached", "snapshot", "compensate"),
                       default="cached")
        p.add_argument("--merges", type=int, default=1)
        p.add_argument("--executors", type=int, default=1)
        p.add_argument("--merge-cost", type=float, default=0.0)
        p.add_argument("--updates", type=int, default=updates)
        p.add_argument("--rate", type=float, default=2.0)
        p.add_argument("--seed", type=int, default=0)
        p.add_argument("--filtering", action="store_true",
                       help="enable selection-condition relevance filtering")
        add_runtime_flags(p)
        p.add_argument("--trace-out", default=None, metavar="PATH",
                       help="write the run's trace; format from extension "
                       "(.json Perfetto, .jsonl event log, .txt timeline)")
        p.add_argument("--freshness-tick", type=float, default=None,
                       metavar="T",
                       help="sample per-view staleness / queue depth / VUT "
                       "occupancy every T time units (virtual under des, "
                       "wall seconds under threads/procs)")
        p.add_argument("--slo-staleness", type=float, default=None,
                       metavar="T",
                       help="SLO: breach when any view's staleness exceeds T "
                       "(implies the freshness monitor; exit code 2 on "
                       "breach)")
        p.add_argument("--slo-queue", type=int, default=None, metavar="N",
                       help="SLO: breach when a merge queue exceeds N "
                       "messages")
        p.add_argument("--slo-vut", type=int, default=None, metavar="N",
                       help="SLO: breach when a merge VUT holds more than N "
                       "updates")
        p.add_argument("--profile", action="store_true",
                       help="profile plan propagation (per-node calls, "
                       "time, row volumes) and print the table")
        p.add_argument("--metrics-out", default=None, metavar="PATH",
                       help="write the final registry; format from extension "
                       "(.prom/.txt Prometheus text, .json snapshot)")

    run = sub.add_parser("run", help="run a configurable warehouse workload")
    add_system_flags(run)
    run.add_argument("--views-file", default=None,
                     help="load view definitions from a catalog file "
                     "(overrides the schema's default view suite)")

    ins = sub.add_parser(
        "inspect",
        help="run a workload and query its lineage / metrics record",
    )
    add_system_flags(ins, updates=40)
    ins.add_argument("--update", type=int, action="append", metavar="N",
                     help="print the causal chain of update N (repeatable); "
                     "default: the slowest chains")
    ins.add_argument("--slowest", type=int, default=3, metavar="K",
                     help="without --update: show the K highest-latency "
                     "chains (default 3)")
    ins.add_argument("--registry", nargs="?", const="", default=None,
                     metavar="PREFIX",
                     help="also dump the metrics registry (optionally only "
                     "names starting with PREFIX, e.g. proc_ or chan_)")
    ins.add_argument("--live", action="store_true",
                     help="render the registry periodically while the run "
                     "executes (most useful with --runtime threads/procs)")
    ins.add_argument("--live-interval", type=float, default=1.0, metavar="S",
                     help="seconds between --live frames (default 1.0)")

    top = sub.add_parser(
        "top",
        help="run a workload while rendering the live metrics registry",
    )
    add_system_flags(top, updates=200)
    top.add_argument("--interval", type=float, default=0.5, metavar="S",
                     help="seconds between registry frames (default 0.5)")
    top.add_argument("--prefix", default=None, metavar="PREFIX",
                     help="restrict the final rendering to metric families "
                     "starting with PREFIX")

    swp = sub.add_parser(
        "sweep", help="compare manager kinds on one workload"
    )
    swp.add_argument("--schema", choices=sorted(SCHEMAS), default="paper")
    swp.add_argument("--variants", default="complete,strong,convergent",
                     help="comma-separated manager kinds to compare")
    swp.add_argument("--updates", type=int, default=80)
    swp.add_argument("--rate", type=float, default=2.0)
    swp.add_argument("--seed", type=int, default=0)
    add_runtime_flags(swp)
    swp.add_argument("--trace-out", default=None, metavar="PATH",
                     help="write one trace file per variant "
                     "(trace.json -> trace-<variant>.json)")

    cache = sub.add_parser(
        "cache",
        help="inspect or garbage-collect a materialization artifact store",
    )
    cache_sub = cache.add_subparsers(dest="cache_command", required=True)
    cstats = cache_sub.add_parser(
        "stats", help="print artifact/ref/pin counts and byte totals"
    )
    cstats.add_argument("--root", required=True, metavar="DIR",
                        help="artifact store directory (CacheConfig.root)")
    cgc = cache_sub.add_parser(
        "gc", help="evict least-recently-used artifacts down to the caps"
    )
    cgc.add_argument("--root", required=True, metavar="DIR",
                     help="artifact store directory (CacheConfig.root)")
    cgc.add_argument("--max-bytes", type=int, default=None, metavar="N",
                     help="evict until total payload bytes <= N")
    cgc.add_argument("--max-artifacts", type=int, default=None, metavar="N",
                     help="evict until the artifact count <= N")

    from repro.conformance.cli import add_conformance_parser

    add_conformance_parser(sub)
    return parser


def main(argv: Sequence[str] | None = None) -> int:
    args = build_parser().parse_args(argv)
    if args.command == "demo":
        return _cmd_demo(args)
    if args.command == "trace":
        return _cmd_trace(args)
    if args.command == "sweep":
        return _cmd_sweep(args)
    if args.command == "inspect":
        return _cmd_inspect(args)
    if args.command == "top":
        return _cmd_top(args)
    if args.command == "cache":
        return _cmd_cache(args)
    if args.command == "conformance":
        from repro.conformance.cli import dispatch

        return dispatch(args)
    return _cmd_run(args)


if __name__ == "__main__":  # pragma: no cover
    raise SystemExit(main())
