"""Configuration for assembled warehouse systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.sim.network import LatencyModel
from repro.sim.scheduler import Scheduler
from repro.viewmgr.base import CostModel, default_cost

MANAGER_KINDS = (
    "complete",
    "strong",
    "complete-n",
    "periodic",
    "convergent",
    "naive",
)
MERGE_ALGORITHMS = ("auto", "spa", "pa", "passthrough", "complete-n")
MERGE_ROUTERS = ("coalesce", "hash")
SUBMISSION_POLICIES = (
    "eager",
    "sequential",
    "dependency-sequenced",
    "dbms-dependency",
    "batching",
)


@dataclass
class SystemConfig:
    """Every knob of the Figure-1 architecture in one place.

    ``manager_kinds`` may override the default ``manager_kind`` per view
    (mixed fleets, §6.3).  ``merge_algorithm="auto"`` applies the
    weakest-level rule.  ``merge_groups`` > 1 partitions the merge work
    (§6.1) into at most that many processes along shared-base-relation
    boundaries; ``merge_router`` picks how the finest partition is packed
    onto those processes — ``"coalesce"`` merges the cheapest groups
    until the count fits (the historical behaviour), ``"hash"`` places
    groups by consistent hashing with cost-bounded loads
    (:mod:`repro.merge.sharding`), which stays stable under view-suite
    and fleet churn.
    """

    # view managers
    manager_kind: str = "complete"
    manager_kinds: Mapping[str, str] = field(default_factory=dict)
    manager_mode: str = "cached"  # cached | snapshot | compensate (| naive)
    batch_max: int | None = None  # strong managers: cap on batch size
    block_size: int = 4  # complete-N block size
    refresh_period: float = 50.0  # periodic managers
    compute_cost: CostModel = default_cost

    # merge process(es)
    merge_algorithm: str = "auto"
    merge_groups: int = 1
    merge_router: str = "coalesce"
    submission_policy: str = "dependency-sequenced"
    submission_batch_size: int = 4  # for the batching policy
    merge_message_cost: float = 0.0

    # integrator & base-data service
    use_selection_filtering: bool = False
    integrator_cost: float = 0.0
    service_query_cost: float = 0.0

    # warehouse
    warehouse_executors: int = 1
    warehouse_txn_overhead: float = 1.0
    warehouse_action_cost: float = 0.05
    warehouse_supports_dependencies: bool = True

    # channels (floats mean FixedLatency)
    latency_source_integrator: LatencyModel | float = 1.0
    latency_integrator_vm: LatencyModel | float = 1.0
    latency_integrator_merge: LatencyModel | float = 1.0
    latency_vm_merge: LatencyModel | float = 1.0
    latency_merge_warehouse: LatencyModel | float = 1.0
    latency_warehouse_merge: LatencyModel | float = 1.0
    latency_vm_service: LatencyModel | float = 1.0
    latency_integrator_service: LatencyModel | float = 0.0

    # fault injection (None = the paper's perfect environment)
    fault_plan: FaultPlan | None = None

    # event scheduling (None = deterministic FIFO tie-breaks).  A
    # Scheduler instance is stateful per run: build one system per
    # instance (see repro.sim.scheduler and repro.conformance).
    scheduler: Scheduler | None = None

    # bookkeeping
    seed: int = 0
    record_history: bool = True
    trace_enabled: bool = True
    # Restrict tracing to these event kinds (None = record everything).
    # Filtering happens before event allocation, so e.g.
    # ``trace_kinds={"wh_commit"}`` cuts tracing cost on hot runs while
    # keeping the events a given analysis needs.  ``repro.obs.lineage``
    # needs at least ``LINEAGE_KINDS`` to reconstruct full chains.
    trace_kinds: frozenset[str] | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.manager_kind not in MANAGER_KINDS:
            raise ReproError(
                f"manager_kind {self.manager_kind!r} not in {MANAGER_KINDS}"
            )
        for view, kind in self.manager_kinds.items():
            if kind not in MANAGER_KINDS:
                raise ReproError(
                    f"manager kind {kind!r} for view {view!r} "
                    f"not in {MANAGER_KINDS}"
                )
        if self.merge_algorithm not in MERGE_ALGORITHMS:
            raise ReproError(
                f"merge_algorithm {self.merge_algorithm!r} "
                f"not in {MERGE_ALGORITHMS}"
            )
        if self.submission_policy not in SUBMISSION_POLICIES:
            raise ReproError(
                f"submission_policy {self.submission_policy!r} "
                f"not in {SUBMISSION_POLICIES}"
            )
        if self.merge_router not in MERGE_ROUTERS:
            raise ReproError(
                f"merge_router {self.merge_router!r} not in {MERGE_ROUTERS}"
            )
        if self.merge_groups < 1:
            raise ReproError(f"merge_groups must be >= 1, got {self.merge_groups}")
        if self.block_size < 1:
            raise ReproError(f"block_size must be >= 1, got {self.block_size}")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ReproError(
                f"fault_plan must be a FaultPlan, got {type(self.fault_plan).__name__}"
            )
        if self.scheduler is not None and not callable(
            getattr(self.scheduler, "adjust", None)
        ):
            raise ReproError(
                f"scheduler must provide adjust(time, lane), "
                f"got {type(self.scheduler).__name__}"
            )

    def kind_for(self, view: str) -> str:
        return self.manager_kinds.get(view, self.manager_kind)

    def manager_levels(self, views: tuple[str, ...]) -> list[str]:
        """The single-view consistency level of each view's manager."""
        level_of = {
            "complete": "complete",
            "strong": "strong",
            "complete-n": "complete-n",
            "periodic": "strong",
            "convergent": "convergent",
            "naive": "broken",
        }
        return [level_of[self.kind_for(view)] for view in views]
