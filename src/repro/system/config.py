"""Configuration for assembled warehouse systems."""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.cache.store import CacheConfig
from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.obs.freshness import SloPolicy
from repro.sim.network import LatencyModel
from repro.sim.scheduler import Scheduler
from repro.viewmgr.base import CostModel, default_cost

MANAGER_KINDS = (
    "complete",
    "strong",
    "complete-n",
    "periodic",
    "convergent",
    "naive",
)
MERGE_ALGORITHMS = ("auto", "spa", "pa", "passthrough", "complete-n")
MERGE_ROUTERS = ("coalesce", "hash")
SUBMISSION_POLICIES = (
    "eager",
    "sequential",
    "dependency-sequenced",
    "dbms-dependency",
    "batching",
)
RUNTIMES = ("des", "threads", "procs")


@dataclass
class SystemConfig:
    """Every knob of the Figure-1 architecture in one place.

    ``manager_kinds`` may override the default ``manager_kind`` per view
    (mixed fleets, §6.3).  ``merge_algorithm="auto"`` applies the
    weakest-level rule.  ``merge_groups`` > 1 partitions the merge work
    (§6.1) into at most that many processes along shared-base-relation
    boundaries; ``merge_router`` picks how the finest partition is packed
    onto those processes — ``"coalesce"`` merges the cheapest groups
    until the count fits (the historical behaviour), ``"hash"`` places
    groups by consistent hashing with cost-bounded loads
    (:mod:`repro.merge.sharding`), which stays stable under view-suite
    and fleet churn.
    """

    # view managers
    manager_kind: str = "complete"
    manager_kinds: Mapping[str, str] = field(default_factory=dict)
    manager_mode: str = "cached"  # cached | snapshot | compensate (| naive)
    batch_max: int | None = None  # strong managers: cap on batch size
    block_size: int = 4  # complete-N block size
    refresh_period: float = 50.0  # periodic managers
    compute_cost: CostModel = default_cost

    # merge process(es)
    merge_algorithm: str = "auto"
    merge_groups: int = 1
    merge_router: str = "coalesce"
    submission_policy: str = "dependency-sequenced"
    submission_batch_size: int = 4  # for the batching policy
    merge_message_cost: float = 0.0

    # integrator & base-data service
    use_selection_filtering: bool = False
    integrator_cost: float = 0.0
    service_query_cost: float = 0.0

    # warehouse
    warehouse_executors: int = 1
    warehouse_txn_overhead: float = 1.0
    warehouse_action_cost: float = 0.05
    warehouse_supports_dependencies: bool = True

    # channels (floats mean FixedLatency)
    latency_source_integrator: LatencyModel | float = 1.0
    latency_integrator_vm: LatencyModel | float = 1.0
    latency_integrator_merge: LatencyModel | float = 1.0
    latency_vm_merge: LatencyModel | float = 1.0
    latency_merge_warehouse: LatencyModel | float = 1.0
    latency_warehouse_merge: LatencyModel | float = 1.0
    latency_vm_service: LatencyModel | float = 1.0
    latency_integrator_service: LatencyModel | float = 0.0

    # fault injection (None = the paper's perfect environment)
    fault_plan: FaultPlan | None = None

    # content-addressed materialization cache (None = no cache; see
    # repro.cache and docs/caching.md).  With a cache, cached-mode view
    # managers publish seed artifacts + per-message checkpoints and the
    # merge process publishes durable checkpoints; crash recovery
    # restores from the nearest artifact and falls back to replay on a
    # miss or digest mismatch.
    cache: CacheConfig | None = None

    # event scheduling (None = deterministic FIFO tie-breaks).  A
    # Scheduler instance is stateful per run: build one system per
    # instance (see repro.sim.scheduler and repro.conformance).
    scheduler: Scheduler | None = None

    # execution runtime (see repro.runtime and docs/runtime.md).
    # "des" is the virtual-time simulator; "threads"/"procs" execute on
    # real cores under a wall clock.  ``workers`` sizes the worker fleet
    # (parallel runtimes only; None = the machine's core count);
    # ``mailbox_capacity`` bounds per-worker mailboxes (None = unbounded
    # — bounded mailboxes can deadlock on message cycles and then raise
    # after ``runtime_timeout``); ``runtime_timeout`` is the hung-worker
    # guard in wall seconds.
    runtime: str = "des"
    workers: int | None = None
    mailbox_capacity: int | None = None
    runtime_timeout: float = 60.0

    # telemetry (see repro.obs and docs/observability.md).
    # ``collect_telemetry`` lets the procs runtime's forked compute
    # servers ship their counters/histograms/trace events back to the
    # parent registry; ``freshness_tick`` enables the live staleness
    # monitor (sampling period: virtual time under des, wall seconds
    # under threads/procs); ``slo`` arms its threshold evaluator (and
    # implies a monitor even without a tick); ``profile_plans`` turns on
    # per-plan-node and per-propagate timing.
    collect_telemetry: bool = True
    freshness_tick: float | None = None
    slo: SloPolicy | None = None
    profile_plans: bool = False

    # bookkeeping
    seed: int = 0
    record_history: bool = True
    trace_enabled: bool = True
    # Restrict tracing to these event kinds (None = record everything).
    # Filtering happens before event allocation, so e.g.
    # ``trace_kinds={"wh_commit"}`` cuts tracing cost on hot runs while
    # keeping the events a given analysis needs.  ``repro.obs.lineage``
    # needs at least ``LINEAGE_KINDS`` to reconstruct full chains.
    trace_kinds: frozenset[str] | None = None

    def __post_init__(self) -> None:
        self.validate()

    def validate(self) -> None:
        if self.manager_kind not in MANAGER_KINDS:
            raise ReproError(
                f"manager_kind {self.manager_kind!r} not in {MANAGER_KINDS}"
            )
        for view, kind in self.manager_kinds.items():
            if kind not in MANAGER_KINDS:
                raise ReproError(
                    f"manager kind {kind!r} for view {view!r} "
                    f"not in {MANAGER_KINDS}"
                )
        if self.merge_algorithm not in MERGE_ALGORITHMS:
            raise ReproError(
                f"merge_algorithm {self.merge_algorithm!r} "
                f"not in {MERGE_ALGORITHMS}"
            )
        if self.submission_policy not in SUBMISSION_POLICIES:
            raise ReproError(
                f"submission_policy {self.submission_policy!r} "
                f"not in {SUBMISSION_POLICIES}"
            )
        if self.merge_router not in MERGE_ROUTERS:
            raise ReproError(
                f"merge_router {self.merge_router!r} not in {MERGE_ROUTERS}"
            )
        if self.merge_groups < 1:
            raise ReproError(f"merge_groups must be >= 1, got {self.merge_groups}")
        if self.block_size < 1:
            raise ReproError(f"block_size must be >= 1, got {self.block_size}")
        if self.fault_plan is not None and not isinstance(self.fault_plan, FaultPlan):
            raise ReproError(
                f"fault_plan must be a FaultPlan, got {type(self.fault_plan).__name__}"
            )
        if self.cache is not None and not isinstance(self.cache, CacheConfig):
            raise ReproError(
                f"cache must be a CacheConfig, got {type(self.cache).__name__}"
            )
        if self.scheduler is not None and not callable(
            getattr(self.scheduler, "adjust", None)
        ):
            raise ReproError(
                f"scheduler must provide adjust(time, lane), "
                f"got {type(self.scheduler).__name__}"
            )
        if self.runtime not in RUNTIMES:
            raise ReproError(f"runtime {self.runtime!r} not in {RUNTIMES}")
        if self.workers is not None and self.workers < 1:
            raise ReproError(f"workers must be >= 1, got {self.workers}")
        if self.mailbox_capacity is not None and self.mailbox_capacity < 1:
            raise ReproError(
                f"mailbox_capacity must be >= 1, got {self.mailbox_capacity}"
            )
        if self.runtime_timeout <= 0:
            raise ReproError(
                f"runtime_timeout must be > 0, got {self.runtime_timeout}"
            )
        if self.freshness_tick is not None and self.freshness_tick <= 0:
            raise ReproError(
                f"freshness_tick must be > 0, got {self.freshness_tick}"
            )
        if self.slo is not None and not isinstance(self.slo, SloPolicy):
            raise ReproError(
                f"slo must be a SloPolicy, got {type(self.slo).__name__}"
            )
        if self.runtime == "des":
            if self.workers is not None:
                raise ReproError(
                    "workers only applies to parallel runtimes "
                    "(runtime='threads' or 'procs'); the DES kernel is "
                    "single-threaded by design"
                )
        else:
            # Virtual-time-only features have no wall-clock semantics:
            # fault timers and schedule perturbation are meaningless
            # without a virtual clock, and a periodic manager's zero-delay
            # self-rescheduling timer would spin a worker forever.
            if self.fault_plan is not None:
                raise ReproError(
                    f"fault plans need virtual-time timers; runtime "
                    f"{self.runtime!r} cannot honour one (use runtime='des')"
                )
            if self.scheduler is not None:
                raise ReproError(
                    f"schedule-perturbing schedulers only apply to "
                    f"runtime='des'; runtime {self.runtime!r} orders events "
                    f"by real execution"
                )
            kinds = {self.manager_kind, *self.manager_kinds.values()}
            if "periodic" in kinds:
                raise ReproError(
                    f"periodic managers re-arm virtual timers and would "
                    f"spin under runtime {self.runtime!r}; use runtime='des'"
                )

    def kind_for(self, view: str) -> str:
        return self.manager_kinds.get(view, self.manager_kind)

    def manager_levels(self, views: tuple[str, ...]) -> list[str]:
        """The single-view consistency level of each view's manager."""
        level_of = {
            "complete": "complete",
            "strong": "strong",
            "complete-n": "complete-n",
            "periodic": "strong",
            "convergent": "convergent",
            "naive": "broken",
        }
        return [level_of[self.kind_for(view)] for view in views]
