"""Run metrics: the quantities the paper's §7 study asks about.

"We plan to investigate the effect of the merging process on view
freshness (recall that the merging delays the application of some ALs to
the warehouse views), and under which update load the merge process
becomes a bottleneck for the system."

* **freshness / staleness** — per source update, the lag between its
  commit at the source and the first warehouse commit that reflects it;
* **bottleneck indicators** — per-process utilisation, mean/max queue
  length, and end-of-run backlog;
* **throughput** — updates reflected per unit of virtual time;
* **transaction accounting** — warehouse transactions, batches, messages.

Since the observability layer landed, this module is a *thin view*: the
per-process numbers come from registry-backed instruments on
``sim.metrics`` (see :mod:`repro.obs.registry`), the VUT peak from the
merge processes' ``merge_vut_size`` timeline gauges, and queue-wait
percentiles from each process's ``proc_queue_wait`` histogram.  Anything
deeper — full timelines, per-update causality — lives in ``repro.obs``.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Mapping

from repro.obs.registry import percentile

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.builder import WarehouseSystem

# Backward-compatible alias: this helper graduated into the observability
# layer (shared with histogram quantiles) but its home API stays.
_percentile = percentile


@dataclass(frozen=True, slots=True)
class ProcessStats:
    """Per-process load statistics."""

    name: str
    messages_handled: int
    utilisation: float
    mean_queue: float
    max_queue: int
    final_queue: int
    mean_queue_wait: float = 0.0
    p95_queue_wait: float = 0.0


@dataclass(frozen=True, slots=True)
class RunMetrics:
    """Everything a benchmark needs to print one results row."""

    makespan: float
    updates_committed: int
    updates_reflected: int
    warehouse_transactions: int
    mean_staleness: float
    max_staleness: float
    p95_staleness: float
    throughput: float
    processes: Mapping[str, ProcessStats] = field(default_factory=dict)
    messages_total: int = 0
    vut_peak: int = 0

    def process(self, name: str) -> ProcessStats:
        return self.processes[name]

    def to_dict(self) -> dict:
        """A JSON-serialisable record (for harnesses and dashboards)."""
        return {
            "makespan": self.makespan,
            "updates_committed": self.updates_committed,
            "updates_reflected": self.updates_reflected,
            "warehouse_transactions": self.warehouse_transactions,
            "staleness": {
                "mean": self.mean_staleness,
                "p95": self.p95_staleness,
                "max": self.max_staleness,
            },
            "throughput": self.throughput,
            "messages_total": self.messages_total,
            "vut_peak": self.vut_peak,
            "processes": {
                name: {
                    "messages": stats.messages_handled,
                    "utilisation": stats.utilisation,
                    "mean_queue": stats.mean_queue,
                    "max_queue": stats.max_queue,
                    "final_queue": stats.final_queue,
                    "mean_queue_wait": stats.mean_queue_wait,
                    "p95_queue_wait": stats.p95_queue_wait,
                }
                for name, stats in sorted(self.processes.items())
            },
        }

    def format_row(self) -> str:
        return (
            f"updates={self.updates_committed:<6} "
            f"txns={self.warehouse_transactions:<6} "
            f"makespan={self.makespan:9.2f} "
            f"thru={self.throughput:8.3f} "
            f"staleness mean={self.mean_staleness:8.2f} "
            f"p95={self.p95_staleness:8.2f} max={self.max_staleness:8.2f}"
        )


def staleness_per_update(system: "WarehouseSystem") -> dict[int, float]:
    """Source-commit to warehouse-visibility lag for each reflected update."""
    commit_time = {
        update_id: time for update_id, _txn, time in system.integrator.numbered
    }
    visible_at: dict[int, float] = {}
    for state in system.history:
        for update_id in state.covered_rows:
            if update_id not in visible_at:
                visible_at[update_id] = state.time
    return {
        update_id: visible_at[update_id] - commit_time[update_id]
        for update_id in visible_at
        if update_id in commit_time
    }


def collect_metrics(system: "WarehouseSystem") -> RunMetrics:
    """Gather a :class:`RunMetrics` snapshot from a finished run."""
    staleness = staleness_per_update(system)
    lags = list(staleness.values())
    makespan = system.sim.now

    processes: dict[str, ProcessStats] = {}
    everyone = [system.integrator, system.service, system.warehouse]
    everyone.extend(system.merge_processes)
    everyone.extend(system.view_managers.values())
    for process in everyone:
        _count, mean_wait, p95_wait = process.queue_wait_stats()
        processes[process.name] = ProcessStats(
            name=process.name,
            messages_handled=process.messages_handled,
            utilisation=process.utilisation(),
            mean_queue=process.mean_queue_length(),
            max_queue=process.max_queue_length,
            final_queue=process.queue_length,
            mean_queue_wait=mean_wait,
            p95_queue_wait=p95_wait,
        )

    # VUT peak from the merges' registry gauges; the trace-scan fallback
    # covers deserialised systems whose registry is gone but trace isn't.
    vut_peak = 0
    for gauge in system.sim.metrics.family("merge_vut_size"):
        vut_peak = max(vut_peak, int(gauge.max))
    if vut_peak == 0:
        for event in system.sim.trace.of_kind("vut_size"):
            vut_peak = max(vut_peak, int(event.detail.get("size", 0)))

    committed = len(system.integrator.numbered)
    reflected = len(staleness)
    return RunMetrics(
        makespan=makespan,
        updates_committed=committed,
        updates_reflected=reflected,
        warehouse_transactions=system.warehouse.commits,
        mean_staleness=sum(lags) / len(lags) if lags else 0.0,
        max_staleness=max(lags) if lags else 0.0,
        p95_staleness=_percentile(lags, 0.95),
        throughput=reflected / makespan if makespan > 0 else 0.0,
        processes=processes,
        messages_total=sum(p.messages_handled for p in processes.values()),
        vut_peak=vut_peak,
    )
