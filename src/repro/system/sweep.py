"""Parameter sweeps: run a family of configurations and tabulate results.

The §7 study and the ablation benchmarks all share one shape — build N
systems that differ in one knob, drive the same seeded workload through
each, and compare metrics.  :func:`sweep` packages that shape as a public
API so downstream users can run their own studies:

    rows = sweep(
        world_factory=paper_world,
        views_factory=paper_views_example2,
        spec=WorkloadSpec(updates=100, rate=2.0, seed=7),
        variants={
            "spa": SystemConfig(manager_kind="complete"),
            "pa":  SystemConfig(manager_kind="strong"),
        },
    )
    print(format_sweep(rows))
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Callable, Mapping, Sequence

from repro.relational.expressions import ViewDefinition
from repro.sources.world import SourceWorld
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.system.metrics import RunMetrics
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream


@dataclass(frozen=True, slots=True)
class SweepRow:
    """One variant's outcome."""

    name: str
    metrics: RunMetrics
    mvc_level: str
    expected_level: str

    @property
    def verified(self) -> bool:
        order = {"inconsistent": 0, "convergent": 1, "strong": 2, "complete": 3}
        return order[self.mvc_level] >= order[self.expected_level]


def sweep(
    world_factory: Callable[[], SourceWorld],
    views_factory: Callable[[], Sequence[ViewDefinition]],
    spec: WorkloadSpec,
    variants: Mapping[str, SystemConfig],
    classify: bool = True,
    on_system: Callable[[str, WarehouseSystem], None] | None = None,
) -> list[SweepRow]:
    """Run every variant on an identical workload; returns one row each.

    A fresh world and stream are generated per variant (same seed, so the
    workloads are identical), keeping variants fully independent.
    ``on_system`` (if given) sees each finished system before it is
    discarded — the hook trace/metrics exporters attach to.
    """
    rows: list[SweepRow] = []
    for name, config in variants.items():
        world = world_factory()
        stream = UpdateStreamGenerator(world, spec).transactions()
        system = WarehouseSystem(world, list(views_factory()), config)
        post_stream(system, stream)
        system.run()
        if on_system is not None:
            on_system(name, system)
        level = system.classify() if classify else "unchecked"
        rows.append(
            SweepRow(
                name=name,
                metrics=system.metrics(),
                mvc_level=level,
                expected_level=system.expected_level(),
            )
        )
        system.close()
    return rows


def format_sweep(rows: Sequence[SweepRow]) -> str:
    """Render sweep rows as a fixed-width comparison table."""
    headers = [
        "variant", "MVC", "makespan", "throughput",
        "staleness(mean)", "staleness(p95)", "wh txns",
    ]
    cells = [
        [
            row.name,
            row.mvc_level,
            f"{row.metrics.makespan:.1f}",
            f"{row.metrics.throughput:.3f}",
            f"{row.metrics.mean_staleness:.2f}",
            f"{row.metrics.p95_staleness:.2f}",
            str(row.metrics.warehouse_transactions),
        ]
        for row in rows
    ]
    widths = [
        max(len(headers[i]), *(len(r[i]) for r in cells)) if cells else len(headers[i])
        for i in range(len(headers))
    ]
    def line(values):
        return "  ".join(v.rjust(w) for v, w in zip(values, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in cells)
    return "\n".join(out)
