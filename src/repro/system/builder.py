"""Assembling and running a complete Figure-1 warehouse system.

:class:`WarehouseSystem` takes a :class:`~repro.sources.world.SourceWorld`
(base relations, owners, initial contents), a list of view definitions and
a :class:`~repro.system.config.SystemConfig`, and builds the whole
architecture:

* one :class:`Source` process per relation owner (plus an optional
  :class:`GlobalTransactionCoordinator` for §6.2 transactions);
* the :class:`Integrator` and :class:`BaseDataService`;
* one view manager per view, of the configured kind;
* one or several merge processes (§6.1 partitioning) with the configured
  algorithm and submission policy;
* the :class:`WarehouseProcess` over a :class:`ViewStore` whose views are
  initially materialized from ``ss_0``.

Workloads are posted with :meth:`post` / :meth:`post_global`, the run is
driven with :meth:`run`, and the results are read back through
:attr:`history`, :meth:`source_states`, :meth:`check_mvc` and
:meth:`metrics`.
"""

from __future__ import annotations

from typing import Iterable, Sequence

import shutil
import tempfile

from repro.cache.artifacts import SystemCacheBinding
from repro.cache.server import CacheServer
from repro.cache.store import ArtifactStore
from repro.consistency import (
    check_mvc_convergent,
    check_mvc_ordered,
    classify_mvc_ordered,
    replay_source_states,
)
from repro.consistency.checker import ConsistencyReport
from repro.errors import FaultError, ReproError
from repro.faults.plan import FaultPlan
from repro.integrator.basedata import BaseDataService
from repro.integrator.integrator import Integrator
from repro.integrator.relevance import RelevanceFilter
from repro.merge.base import MergeAlgorithm
from repro.merge.complete_n import CompleteNMerge
from repro.merge.distributed import partition_views
from repro.merge.sharding import shard_view_groups
from repro.merge.pa import PaintingAlgorithm
from repro.merge.passthrough import PassThroughMerge
from repro.merge.process import MergeProcess
from repro.merge.selection import choose_algorithm
from repro.merge.spa import SimplePaintingAlgorithm
from repro.merge.submission import (
    BatchingPolicy,
    DbmsDependencyPolicy,
    DependencySequencedPolicy,
    EagerPolicy,
    SequentialPolicy,
    SubmissionPolicy,
)
from repro.relational.database import Database
from repro.relational.expressions import ViewDefinition
from repro.runtime import create_runtime
from repro.sim.network import Channel, LatencyModel, LossyChannel, ReliableChannel
from repro.sim.process import Process
from repro.sources.multisource import GlobalTransactionCoordinator
from repro.sources.source import Source
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld
from repro.system.config import SystemConfig
from repro.system.metrics import RunMetrics, collect_metrics
from repro.viewmgr.base import ViewManager
from repro.viewmgr.complete import CompleteViewManager
from repro.viewmgr.complete_n import CompleteNViewManager
from repro.viewmgr.convergent import ConvergentViewManager
from repro.viewmgr.naive import NaiveViewManager
from repro.viewmgr.periodic import PeriodicRefreshManager
from repro.viewmgr.strong import StrongViewManager
from repro.warehouse.store import ViewStore
from repro.warehouse.warehouse import WarehouseProcess


class WarehouseSystem:
    """A fully wired, runnable data-warehouse simulation."""

    def __init__(
        self,
        world: SourceWorld,
        definitions: Sequence[ViewDefinition],
        config: SystemConfig | None = None,
    ) -> None:
        if not definitions:
            raise ReproError("a warehouse needs at least one view")
        self.world = world
        self.definitions = tuple(definitions)
        self.config = config if config is not None else SystemConfig()
        self.runtime = create_runtime(self.config)
        self.sim = self.runtime.kernel
        self.sim.trace.enabled = self.config.trace_enabled
        self.sim.trace.kinds = self.config.trace_kinds
        self._initial_state = world.current.snapshot()
        self._owned_cache_root: str | None = None
        self.cache_store: ArtifactStore | None = None
        self.cache_server: CacheServer | None = None
        self._cache_binding: SystemCacheBinding | None = None
        if self.config.cache is not None:
            cache_cfg = self.config.cache
            root = cache_cfg.root
            if root is None:
                # Private store, removed by close(); pass an explicit
                # root to share artifacts across systems (warm restart).
                root = tempfile.mkdtemp(prefix="repro-cache-")
                self._owned_cache_root = root
            self.cache_store = ArtifactStore(
                root,
                max_bytes=cache_cfg.max_bytes,
                max_artifacts=cache_cfg.max_artifacts,
            )
            # One set of numbers: the store's stat attributes stay the
            # source of truth, mirrored into the registry for exporters.
            self.cache_store.bind_registry(self.sim.metrics, store="system")
            self._cache_binding = SystemCacheBinding(
                self.cache_store, cache_cfg
            )
        self._build()
        # Live telemetry: the freshness monitor samples per-view staleness
        # and shard queue/VUT occupancy on the configured tick (and its
        # SLO evaluator arms when a policy is set); plan profiling times
        # every propagate.  Probes run per executed event under des and
        # from the kernel's sampler thread under threads/procs.
        self.monitor = None
        cfg = self.config
        if cfg.freshness_tick is not None or cfg.slo is not None:
            from repro.obs.freshness import FreshnessMonitor

            self.monitor = FreshnessMonitor(
                self,
                tick=cfg.freshness_tick if cfg.freshness_tick is not None else 1.0,
                policy=cfg.slo,
            )
            self.sim.add_probe(self.monitor.maybe_sample)
        self.plan_profiler = None
        if cfg.profile_plans:
            from repro.obs.profiler import PlanProfiler

            self.plan_profiler = PlanProfiler()
            for manager in self.view_managers.values():
                manager.enable_plan_profiling(self.plan_profiler)
        # Runtimes with external resources attach them here: the system is
        # wired and seeded, and no run has spawned worker threads yet (the
        # procs fleet must fork inside exactly that window).
        self.runtime.start(self)

    # ------------------------------------------------------------------ build
    def _connect(self, source: Process, destination: Process,
                 latency: "LatencyModel | float") -> Channel:
        """Wire one channel, honouring the configured fault plan.

        Without a plan this is a perfect FIFO :class:`Channel`.  With one,
        every connection becomes a :class:`ReliableChannel` running the
        recovery protocol over the lossy transport (or, with
        ``reliable=False``, a bare :class:`LossyChannel` so the run
        demonstrates what breaks without recovery).
        """
        plan = self.config.fault_plan
        if plan is None:
            return source.connect(destination, latency)
        faults = (
            plan.faults_for(source.name, destination.name)
            if plan.faulty_network
            else None
        )
        if not plan.reliable:
            channel: Channel = LossyChannel(
                self.sim, source, destination, latency, faults=faults
            )
        else:
            ack_faults = (
                plan.ack_faults_for(source.name, destination.name)
                if plan.faulty_network
                else None
            )
            channel = ReliableChannel(
                self.sim,
                source,
                destination,
                latency,
                faults=faults,
                ack_faults=ack_faults,
                timeout=plan.retransmit_timeout,
                backoff_factor=plan.backoff_factor,
                timeout_cap=plan.timeout_cap,
            )
        return source.attach(channel)

    def _build(self) -> None:
        cfg = self.config
        schemas = dict(self.world.schemas)
        view_names = tuple(d.name for d in self.definitions)
        self.processes: dict[str, Process] = {}

        # Warehouse + store, views materialized at ss_0.
        self.store = ViewStore(
            self.definitions, schemas, record_history=cfg.record_history
        )
        self.warehouse = WarehouseProcess(
            self.sim,
            self.store,
            executors=cfg.warehouse_executors,
            per_txn_overhead=cfg.warehouse_txn_overhead,
            per_action_cost=cfg.warehouse_action_cost,
            supports_dependencies=cfg.warehouse_supports_dependencies,
        )

        # Base-data service.
        self.service = BaseDataService(
            self.sim, per_query_cost=cfg.service_query_cost
        )
        self.service.seed(self._initial_state, schemas)

        # Merge processes (possibly partitioned, §6.1).  The hash router
        # packs the finest partition onto the shard fleet by consistent
        # hashing with cost-bounded loads; coalesce merges cheapest-first.
        if cfg.merge_router == "hash" and cfg.merge_groups > 1:
            groups = shard_view_groups(self.definitions, cfg.merge_groups)
        else:
            groups = partition_views(self.definitions, max_groups=cfg.merge_groups)
        self.merge_processes: list[MergeProcess] = []
        merge_groups: dict[str, tuple[str, ...]] = {}
        for index, group in enumerate(groups):
            name = "merge" if len(groups) == 1 else f"merge{index}"
            algorithm = self._make_algorithm(group, name)
            merge = MergeProcess(
                self.sim,
                algorithm,
                name=name,
                policy=self._make_policy(name),
                per_message_cost=cfg.merge_message_cost,
                txn_id_start=index + 1,
                txn_id_step=len(groups),
                # Under a fault plan (or with a cache) the merge
                # checkpoints after every handled message so a
                # crash/restart resumes without violating MVC.
                checkpointing=cfg.fault_plan is not None
                or self._cache_binding is not None,
                cache=(
                    self._cache_binding.for_merge(name)
                    if self._cache_binding is not None
                    else None
                ),
            )
            self._connect(merge, self.warehouse, cfg.latency_merge_warehouse)
            self._connect(self.warehouse, merge, cfg.latency_warehouse_merge)
            self.merge_processes.append(merge)
            merge_groups[name] = group

        # View managers.
        self.view_managers: dict[str, ViewManager] = {}
        view_to_merge = {
            view: merge_name
            for merge_name, views in merge_groups.items()
            for view in views
        }
        # Kept public: the conformance oracle derives per-view effective
        # guarantee levels from each view's merge process.
        self.view_to_merge = dict(view_to_merge)
        relevance = (
            RelevanceFilter(self.definitions, schemas, use_selections=True)
            if cfg.use_selection_filtering
            else None
        )
        for definition in self.definitions:
            manager = self._make_manager(
                definition, schemas, view_to_merge[definition.name]
            )
            self._connect(
                manager,
                self._merge_by_name(view_to_merge[definition.name]),
                cfg.latency_vm_merge,
            )
            self._connect(manager, self.service, cfg.latency_vm_service)
            self._connect(self.service, manager, cfg.latency_vm_service)
            if relevance is not None:
                # Keep the replica sigma-restricted in lockstep with the
                # integrator's routing filter (see RelevanceFilter docs).
                manager.set_replica_filters(
                    {
                        relation: relevance.restricted_predicate(
                            definition.name, relation
                        )
                        for relation in definition.base_relations()
                    }
                )
            if manager.mode == "cached":
                if self._cache_binding is not None:
                    manager.install_cache(
                        self._cache_binding.for_view(definition.name)
                    )
                manager.seed_replica(self._initial_state)
            self.store.initialize_view(
                definition.name, manager.materialize_initial(self._initial_state)
            )
            self.view_managers[definition.name] = manager

        # Integrator.
        block = cfg.block_size if self._uses_complete_n() else None
        self.integrator = Integrator(
            self.sim,
            self.definitions,
            schemas,
            merge_groups=merge_groups,
            view_manager_names={v: m.name for v, m in self.view_managers.items()},
            use_selection_filtering=cfg.use_selection_filtering,
            send_empty_rels=self._uses_complete_n(),
            block_size=block,
            per_update_cost=cfg.integrator_cost,
        )
        for merge in self.merge_processes:
            self._connect(self.integrator, merge, cfg.latency_integrator_merge)
        for manager in self.view_managers.values():
            self._connect(self.integrator, manager, cfg.latency_integrator_vm)
        self._connect(self.integrator, self.service, cfg.latency_integrator_service)

        # Sources and the global coordinator.
        owners = sorted({self.world.owner_of(r) for r in self.world.schemas})
        self.sources: dict[str, Source] = {}
        for owner in owners:
            source = Source(self.sim, owner, self.world)
            self._connect(source, self.integrator, cfg.latency_source_integrator)
            self.sources[owner] = source
        self.coordinator = GlobalTransactionCoordinator(self.sim, self.world)
        self._connect(
            self.coordinator, self.integrator, cfg.latency_source_integrator
        )

        # Cache server: fronts the artifact store over the channel layer
        # so merge shards and freshly spawned replicas can fetch each
        # other's artifacts without a shared filesystem (local restores
        # still read the store directly — it is just a directory).
        if self._cache_binding is not None and cfg.cache.server:
            self.cache_server = CacheServer(self.sim, self.cache_store)
            for peer in (*self.merge_processes, *self.view_managers.values()):
                self._connect(peer, self.cache_server, 0.0)
                self._connect(self.cache_server, peer, 0.0)

        # Process registry (used by fault plans and diagnostics).
        for process in (
            self.warehouse,
            self.service,
            self.integrator,
            self.coordinator,
            *self.merge_processes,
            *self.view_managers.values(),
            *self.sources.values(),
            *((self.cache_server,) if self.cache_server is not None else ()),
        ):
            self.processes[process.name] = process

        # Scheduled crash/restart pairs from the fault plan.
        if cfg.fault_plan is not None:
            self._schedule_crashes(cfg.fault_plan)

    def _uses_complete_n(self) -> bool:
        cfg = self.config
        kinds = {cfg.kind_for(d.name) for d in self.definitions}
        return cfg.merge_algorithm == "complete-n" or "complete-n" in kinds

    def _merge_by_name(self, name: str) -> MergeProcess:
        for merge in self.merge_processes:
            if merge.name == name:
                return merge
        raise ReproError(f"no merge process named {name!r}")

    def process_by_name(self, name: str) -> Process:
        """Any Figure-1 process by name (e.g. "merge", "warehouse", "vm_V1")."""
        try:
            return self.processes[name]
        except KeyError:
            raise FaultError(
                f"no process named {name!r} (have: {sorted(self.processes)})"
            ) from None

    def _schedule_crashes(self, plan: FaultPlan) -> None:
        for crash in plan.crashes:
            process = self.process_by_name(crash.process)
            self.sim.schedule_at(crash.at, process.crash)
            self.sim.schedule_at(crash.at + crash.restart_after, process.restart)

    def _make_algorithm(
        self, views: tuple[str, ...], name: str
    ) -> MergeAlgorithm:
        cfg = self.config
        if cfg.merge_algorithm == "spa":
            return SimplePaintingAlgorithm(views, name=name)
        if cfg.merge_algorithm == "pa":
            return PaintingAlgorithm(views, name=name)
        if cfg.merge_algorithm == "passthrough":
            return PassThroughMerge(views, name=name)
        if cfg.merge_algorithm == "complete-n":
            return CompleteNMerge(views, cfg.block_size, name=name)
        # auto: the weakest-level rule of §6.3.
        levels = cfg.manager_levels(views)
        if "complete-n" in levels and set(levels) == {"complete-n"}:
            return CompleteNMerge(views, cfg.block_size, name=name)
        return choose_algorithm(views, levels, name=name)

    def _make_policy(self, merge_name: str) -> SubmissionPolicy:
        cfg = self.config
        if cfg.submission_policy == "eager":
            return EagerPolicy()
        if cfg.submission_policy == "sequential":
            return SequentialPolicy()
        if cfg.submission_policy == "dependency-sequenced":
            return DependencySequencedPolicy()
        if cfg.submission_policy == "dbms-dependency":
            return DbmsDependencyPolicy()
        return BatchingPolicy(
            batch_size=cfg.submission_batch_size, merge_name=merge_name
        )

    def _make_manager(
        self,
        definition: ViewDefinition,
        schemas: dict,
        merge_name: str,
    ) -> ViewManager:
        cfg = self.config
        kind = cfg.kind_for(definition.name)
        common = dict(
            merge_name=merge_name,
            service_name=self.service.name,
            compute_cost=cfg.compute_cost,
        )
        if kind == "complete":
            return CompleteViewManager(
                self.sim, definition, schemas, mode=cfg.manager_mode, **common
            )
        if kind == "strong":
            return StrongViewManager(
                self.sim,
                definition,
                schemas,
                mode=cfg.manager_mode,
                batch_max=cfg.batch_max,
                **common,
            )
        if kind == "complete-n":
            return CompleteNViewManager(
                self.sim,
                definition,
                schemas,
                cfg.block_size,
                mode=cfg.manager_mode,
                **common,
            )
        if kind == "periodic":
            return PeriodicRefreshManager(
                self.sim, definition, schemas, cfg.refresh_period, **common
            )
        if kind == "convergent":
            return ConvergentViewManager(
                self.sim, definition, schemas, mode=cfg.manager_mode, **common
            )
        if kind == "naive":
            return NaiveViewManager(self.sim, definition, schemas, **common)
        raise ReproError(f"unknown manager kind {kind!r}")

    # -------------------------------------------------------------- workloads
    def post(self, transaction: SourceTransaction, at: float) -> None:
        """Schedule ``transaction`` at the owning source at virtual time ``at``."""
        source = self.sources.get(transaction.origin)
        if source is None:
            raise ReproError(f"no source named {transaction.origin!r}")
        self.sim.schedule_at(at, source.execute, transaction)

    def post_update(self, update: Update, at: float) -> None:
        """Schedule a single-update transaction (the §2.1 common case)."""
        owner = self.world.owner_of(update.relation)
        self.post(SourceTransaction.single(owner, update), at)

    def post_global(self, updates: Iterable[Update], at: float) -> None:
        """Schedule a §6.2 multi-source transaction via the coordinator."""
        self.sim.schedule_at(at, self.coordinator.execute, tuple(updates))

    # ------------------------------------------------------------------- run
    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Drive the simulation; flush trailing blocks/batches at the end."""
        executed = self.sim.run(until=until, max_events=max_events)
        if until is None and max_events is None:
            # End-of-stream: close trailing complete-N blocks at the
            # managers, let their lists propagate, then flush the merges.
            for manager in self.view_managers.values():
                manager.flush()
            executed += self.sim.run()
            for merge in self.merge_processes:
                merge.flush()
            executed += self.sim.run()
            self._finalise_telemetry()
        return executed

    def _finalise_telemetry(self) -> None:
        """Fold all deferred telemetry into the kernel's registry.

        Takes a closing freshness sample, publishes accumulated profiler
        stats, and drains the procs fleet's shard payloads.  Additive and
        idempotent, so it runs after every unbounded drain and again on
        close (a bounded-run caller who never drains fully still gets its
        numbers before the runtime shuts down).
        """
        if self.monitor is not None:
            self.monitor.sample()
        if self.plan_profiler is not None:
            self.plan_profiler.publish_into(self.sim.metrics)
        self.runtime.collect(self)

    def close(self) -> None:
        """Release runtime resources (the procs compute fleet); idempotent."""
        self._finalise_telemetry()
        self.runtime.close()
        if self._owned_cache_root is not None:
            shutil.rmtree(self._owned_cache_root, ignore_errors=True)
            self._owned_cache_root = None

    def __enter__(self) -> "WarehouseSystem":
        return self

    def __exit__(self, *exc_info: object) -> None:
        self.close()

    # ----------------------------------------------------------------- results
    @property
    def history(self):
        """The warehouse state sequence ``ws_0 .. ws_q``."""
        return self.store.history

    @property
    def initial_state(self) -> Database:
        """``ss_0``: the base-data snapshot the views were materialized at."""
        return self._initial_state

    def source_states(self) -> list[Database]:
        """``ss_0 .. ss_f`` replayed in integrator numbering order."""
        return replay_source_states(
            self._initial_state,
            [txn for _id, txn, _time in self.integrator.numbered],
        )

    def check_mvc(self, level: str = "auto") -> ConsistencyReport:
        """Check the run against an MVC level (or the expected one).

        "complete" and "strong" use the order-aware checker (the painting
        algorithms may legally reorder commuting updates); "convergent"
        compares final states.
        """
        if level == "auto":
            level = self.expected_level()
        if level in ("complete", "strong"):
            return check_mvc_ordered(
                self.history,
                self._initial_state,
                self.integrator.numbered,
                self.definitions,
                level,
            )
        if level == "convergent":
            return check_mvc_convergent(
                self.history, self.source_states(), self.definitions
            )
        raise ReproError(f"unknown MVC level {level!r}")

    def classify(self) -> str:
        """The strongest MVC level this run actually achieved."""
        return classify_mvc_ordered(
            self.history,
            self._initial_state,
            self.integrator.numbered,
            self.definitions,
        )

    def expected_level(self) -> str:
        """The MVC level the configuration promises."""
        guarantees = {m.algorithm.guarantees_level for m in self.merge_processes}
        order = ("convergent", "complete-n", "strong", "complete")
        weakest = min(guarantees, key=lambda g: order.index(g))
        if weakest == "complete-n":
            weakest = "strong"  # complete-N is strong at sub-block reads
        if weakest == "complete" and not all(
            m.policy.preserves_completeness for m in self.merge_processes
        ):
            weakest = "strong"  # batching degrades completeness (§4.3)
        return weakest

    def metrics(self) -> RunMetrics:
        return collect_metrics(self)

    def profile_report(self) -> str:
        """The plan profiler's per-node table (needs ``profile_plans``)."""
        if self.plan_profiler is None:
            raise ReproError(
                "plan profiling is off; build with "
                "SystemConfig(profile_plans=True)"
            )
        return self.plan_profiler.format()

    def mqo_report(self) -> dict[str, dict]:
        """Per-shard multi-query-optimization report (compile-time).

        For each merge process, compiles the shard's view expressions
        through one :class:`~repro.relational.plan.PlanLibrary` against a
        throwaway copy of ``ss_0`` and returns the library's shared-node
        report — how much delta-probe work same-shard views share.  Views
        whose expressions the plan compiler cannot handle are listed
        under ``"unsupported"`` and excluded from the counts.
        """
        from repro.relational.plan import PlanLibrary, PlanUnsupported

        definitions = {d.name: d for d in self.definitions}
        shards: dict[str, list[str]] = {}
        for view, merge_name in sorted(self.view_to_merge.items()):
            shards.setdefault(merge_name, []).append(view)
        reports: dict[str, dict] = {}
        for merge_name, views in sorted(shards.items()):
            library = PlanLibrary(self._initial_state.snapshot())
            unsupported: list[str] = []
            for view in views:
                try:
                    library.compile(view, definitions[view].expression)
                except PlanUnsupported:
                    unsupported.append(view)
            report = library.report()
            report["views"] = views
            report["unsupported"] = unsupported
            reports[merge_name] = report
        return reports
