"""System assembly: build and run complete Figure-1 warehouses.

:class:`SystemConfig` selects every architectural knob the paper
discusses (manager class, merge algorithm, submission policy, distributed
merging, relevance filtering, latencies and costs);
:class:`WarehouseSystem` wires the processes together, runs workloads, and
exposes the state histories plus consistency verdicts and performance
metrics.
"""

from repro.system.config import SystemConfig
from repro.system.builder import WarehouseSystem
from repro.system.metrics import RunMetrics
from repro.system.sweep import SweepRow, format_sweep, sweep

__all__ = [
    "SystemConfig",
    "WarehouseSystem",
    "RunMetrics",
    "sweep",
    "SweepRow",
    "format_sweep",
]
