"""The complete view manager (§2.2, §3.3).

"A complete view manager ... processes one update U_j at a time and
generates the warehouse view that is consistent with the source state
after U_j executed" — one action list per relevant update, in order.
Pairs with the Simple Painting Algorithm.
"""

from __future__ import annotations

from repro.messages import UpdateForView
from repro.viewmgr.base import ViewManager


class CompleteViewManager(ViewManager):
    """One action list per update: complete single-view sequences."""

    level = "complete"

    def select_batch(self) -> list[UpdateForView]:
        return [self._buffer.popleft()]
