"""View managers: one concurrent process per materialized view.

A view manager receives the sub-sequence of source updates relevant to its
view, computes the incremental changes (its *delta computation*, which
takes time and may require querying base data), and emits action lists
``AL^x_j`` to the merge process (paper §3.3).

Implemented manager classes, by the consistency level they provide:

* :class:`CompleteViewManager` — one action list per update; yields
  *complete* single-view sequences.  Pairs with SPA.
* :class:`StrongViewManager` — batches intertwined updates into one action
  list; yields *strongly consistent* sequences.  Pairs with PA.
* :class:`CompleteNViewManager` — processes updates in fixed groups of N
  (§6.3); pairs with the complete-N merge policy.
* :class:`PeriodicRefreshManager` — periodically replaces the whole view
  (§6.3); appears to the merge process as a strong manager.
* :class:`ConvergentViewManager` — only guarantees eventual correctness
  (§6.3); pairs with the pass-through merge.
* :class:`NaiveViewManager` — deliberately *incorrect*: computes deltas
  against the latest base state without compensation.  Exists to
  demonstrate the intertwined-update anomaly of Example 1 / Problem 3.
"""

from repro.viewmgr.actions import Action, ActionList
from repro.viewmgr.base import ViewManager
from repro.viewmgr.complete import CompleteViewManager
from repro.viewmgr.strong import StrongViewManager
from repro.viewmgr.complete_n import CompleteNViewManager
from repro.viewmgr.periodic import PeriodicRefreshManager
from repro.viewmgr.convergent import ConvergentViewManager
from repro.viewmgr.naive import NaiveViewManager

__all__ = [
    "Action",
    "ActionList",
    "ViewManager",
    "CompleteViewManager",
    "StrongViewManager",
    "CompleteNViewManager",
    "PeriodicRefreshManager",
    "ConvergentViewManager",
    "NaiveViewManager",
]
