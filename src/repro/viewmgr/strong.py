"""The strongly consistent view manager (§2.2, §5.1).

"A strongly consistent view manager ... can batch multiple updates, U_i
through U_{i+k}, bringing the warehouse from a state consistent with the
sources before U_i to a state consistent with the sources after U_{i+k}.
Because a strongly consistent view manager can batch intertwined updates,
it is often more desirable in practice."

Batching here is load-driven, like Strobe's: whatever has queued up while
the previous delta computation ran is taken as the next batch (bounded by
``batch_max``).  Under light load it degenerates to one update per list;
under heavy load batches grow and the manager keeps up — precisely the
behaviour the Painting Algorithm exists to coordinate.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.errors import ViewManagerError
from repro.messages import UpdateForView
from repro.relational.expressions import ViewDefinition
from repro.relational.schema import Schema
from repro.viewmgr.base import CostModel, ViewManager, default_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class StrongViewManager(ViewManager):
    """Batches queued updates into one action list per computation."""

    level = "strong"

    def __init__(
        self,
        sim: "Simulator",
        definition: ViewDefinition,
        base_schemas: Mapping[str, Schema],
        name: str | None = None,
        merge_name: str = "merge",
        service_name: str = "basedata",
        mode: str = "cached",
        compute_cost: CostModel = default_cost,
        batch_max: int | None = None,
    ) -> None:
        super().__init__(
            sim,
            definition,
            base_schemas,
            name=name,
            merge_name=merge_name,
            service_name=service_name,
            mode=mode,
            compute_cost=compute_cost,
        )
        if batch_max is not None and batch_max < 1:
            raise ViewManagerError(f"batch_max must be >= 1, got {batch_max}")
        self.batch_max = batch_max

    def select_batch(self) -> list[UpdateForView]:
        limit = self.batch_max if self.batch_max is not None else len(self._buffer)
        batch: list[UpdateForView] = []
        while self._buffer and len(batch) < max(limit, 1):
            batch.append(self._buffer.popleft())
        return batch
