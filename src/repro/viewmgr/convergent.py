"""The convergent view manager (§6.3).

"A view manager may only guarantee the convergence of the view it
manages.  That is, it only guarantees the eventual correctness of the view
but not the correctness of intermediate view states."

This manager processes updates in order but applies each update's view
delta *non-atomically*: deletions ship in one action list and insertions
in a separate, later one.  Every intermediate warehouse state between the
two is wrong (rows missing), yet once the stream drains the view equals
the correct final contents — convergence, and nothing stronger.  Paired
with :class:`repro.merge.passthrough.PassThroughMerge`, which forwards
lists immediately, the warehouse inherits exactly that guarantee.
"""

from __future__ import annotations

from repro.messages import ActionListMessage, UpdateForView
from repro.relational.delta import Delta
from repro.viewmgr.actions import ActionList
from repro.viewmgr.base import ViewManager


class ConvergentViewManager(ViewManager):
    """Eventually correct, intermediate states unconstrained."""

    level = "convergent"

    def select_batch(self) -> list[UpdateForView]:
        return [self._buffer.popleft()]

    def _emit(
        self,
        covered: tuple[int, ...],
        view_delta: Delta,
        epoch: int | None = None,
    ) -> None:
        if (
            self._cache is not None
            and epoch is not None
            and epoch != self._epoch
        ):
            return  # stale pre-crash emit; see ViewManager._emit
        deletions = Delta({row: -count for row, count in view_delta.deletions()})
        insertions = Delta(dict(view_delta.insertions()))
        emitted = 0
        for part in (deletions, insertions):
            if not part:
                continue
            action_list = ActionList.from_delta(self.view, self.name, covered, part)
            self.send(self.merge_name, ActionListMessage(action_list))
            emitted += 1
        if not emitted:
            # Still announce progress with an empty list, like the others.
            empty = ActionList.from_delta(self.view, self.name, covered, Delta())
            self.send(self.merge_name, ActionListMessage(empty))
        self.action_lists_sent += max(emitted, 1)
        self.updates_processed += len(covered)
        self._applied_version = covered[-1]
        self._computing = False
        self._current_batch = []
        self._pending_emit = None
        if self._cache is not None:
            self._cache.on_handled(self)  # see ViewManager._emit
        self._maybe_start()
