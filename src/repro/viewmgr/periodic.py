"""The periodic-refresh view manager (§6.3).

"A view manager may do periodical refreshing instead of incremental
maintenance.  Such a view manager will appear to the MP in our system as
if it were an ordinary strongly consistent view manager.  The action lists
from this view manager will tell the warehouse to delete the entire old
view and insert tuples of the new view."

Implementation: the manager buffers updates as they arrive; every
``period`` of virtual time it recomputes the view from its base replicas
and ships a REPLACE action list covering everything buffered since the
last refresh.  Quiet periods (no relevant updates) ship nothing.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.errors import ViewManagerError
from repro.messages import UpdateForView
from repro.relational.algebra import evaluate
from repro.relational.delta import Delta
from repro.relational.expressions import ViewDefinition
from repro.relational.schema import Schema
from repro.viewmgr.actions import ActionList
from repro.viewmgr.base import CostModel, ViewManager, default_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class PeriodicRefreshManager(ViewManager):
    """Recomputes the whole view on a timer; strong to the merge process."""

    level = "strong"

    def __init__(
        self,
        sim: "Simulator",
        definition: ViewDefinition,
        base_schemas: Mapping[str, Schema],
        period: float,
        name: str | None = None,
        merge_name: str = "merge",
        service_name: str = "basedata",
        compute_cost: CostModel = default_cost,
    ) -> None:
        if period <= 0:
            raise ViewManagerError(f"refresh period must be positive, got {period}")
        super().__init__(
            sim,
            definition,
            base_schemas,
            name=name,
            merge_name=merge_name,
            service_name=service_name,
            mode="cached",  # refresh recomputes from the local replica
            compute_cost=compute_cost,
        )
        self.period = period
        self._refresh_due = False
        self._tick_scheduled = False
        self.refreshes = 0

    # Ticks are demand-driven: one is armed whenever updates are buffered
    # and none is pending, so the event queue drains once the stream ends
    # (a free-running timer would keep the simulation alive forever).  The
    # effect is a refresh at most every ``period`` after work arrives.
    def handle(self, message: object, sender: "Process") -> None:  # noqa: F821
        super().handle(message, sender)
        self._ensure_tick()

    def _ensure_tick(self) -> None:
        if not self._tick_scheduled and self._buffer:
            self._tick_scheduled = True
            self.sim.schedule(self.period, self._tick)

    def _tick(self) -> None:
        self._tick_scheduled = False
        self._refresh_due = True
        self._maybe_start()
        self._ensure_tick()

    def extra_durable_state(self) -> dict:
        return {"refresh_due": self._refresh_due}

    def restore_extra_state(self, state: dict) -> None:
        self._refresh_due = state.get("refresh_due", False)
        # The pre-crash tick (if any) still fires — ticks are idempotent —
        # but make sure a restored backlog is never left without one.
        self._ensure_tick()

    def select_batch(self) -> list[UpdateForView]:
        if not self._refresh_due or not self._buffer:
            return []
        self._refresh_due = False
        batch = list(self._buffer)
        self._buffer.clear()
        return batch

    def build_action_list(
        self, covered: tuple[int, ...], view_delta: Delta
    ) -> ActionList:
        """Ship the full recomputed view instead of the delta."""
        self.refreshes += 1
        contents = evaluate(self.definition.expression, self._require_replica())
        return ActionList.replacement(self.view, self.name, covered, contents)
