"""Action lists: the unit of work flowing from view managers to the merge.

``AL^x_j`` (paper §3.3) carries "the operations necessary to make view
V_x consistent with the source state existing after U_j was performed".
Here the operations are a signed-count :class:`Delta` plus an optional
full-replacement flag (for periodic-refresh managers, §6.3).

``covered`` lists every update id the list accounts for: a complete
manager covers exactly ``(j,)``; a strongly consistent manager may cover
``(i_k, ..., i_{k+n})`` with ``last_update == i_{k+n}`` — the subscript of
the action list "identifies the last update that is included in the
batch".
"""

from __future__ import annotations

import enum
from dataclasses import dataclass

from repro.errors import ViewManagerError
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.rows import Row


class ActionKind(enum.Enum):
    APPLY_DELTA = "apply_delta"
    REPLACE = "replace"


@dataclass(frozen=True, slots=True)
class Action:
    """A single operation against one warehouse view."""

    view: str
    kind: ActionKind
    delta: Delta = Delta()
    replacement: tuple[tuple[Row, int], ...] = ()

    def apply_to(self, relation: Relation) -> None:
        if self.kind is ActionKind.APPLY_DELTA:
            self.delta.apply_to(relation)
        else:
            relation.clear()
            for row, count in self.replacement:
                relation.insert(row, count)


@dataclass(frozen=True, slots=True)
class ActionList:
    """``AL^x_j``: everything view ``view`` needs for updates ``covered``."""

    view: str
    manager: str
    last_update: int
    covered: tuple[int, ...]
    actions: tuple[Action, ...]

    def __post_init__(self) -> None:
        if not self.covered:
            raise ViewManagerError("an action list must cover at least one update")
        if list(self.covered) != sorted(set(self.covered)):
            raise ViewManagerError(
                f"covered update ids must be strictly increasing: {self.covered}"
            )
        if self.covered[-1] != self.last_update:
            raise ViewManagerError(
                f"last_update {self.last_update} must be the largest covered id "
                f"{self.covered}"
            )
        for action in self.actions:
            if action.view != self.view:
                raise ViewManagerError(
                    f"action for view {action.view!r} inside list for {self.view!r}"
                )

    # -- constructors ---------------------------------------------------------
    @classmethod
    def from_delta(
        cls,
        view: str,
        manager: str,
        covered: tuple[int, ...],
        delta: Delta,
    ) -> "ActionList":
        """The common case: one delta covering one or more updates.

        An empty delta still produces a (contentless) action list — the
        paper sends empty lists too, because the merge process counts on
        one list per (manager, relevant update) to fill its table.
        """
        actions = (
            (Action(view, ActionKind.APPLY_DELTA, delta),) if delta else ()
        )
        return cls(view, manager, covered[-1], covered, actions)

    @classmethod
    def replacement(
        cls,
        view: str,
        manager: str,
        covered: tuple[int, ...],
        rows: Relation,
    ) -> "ActionList":
        """A full-view replacement (periodic refresh, §6.3)."""
        action = Action(
            view,
            ActionKind.REPLACE,
            replacement=tuple(sorted(rows.counts())),
        )
        return cls(view, manager, covered[-1], covered, (action,))

    @property
    def is_empty(self) -> bool:
        return not self.actions

    def net_delta(self) -> Delta:
        """The combined delta of all APPLY_DELTA actions (empty for REPLACE)."""
        combined = Delta()
        for action in self.actions:
            if action.kind is ActionKind.APPLY_DELTA:
                combined = combined.combined(action.delta)
        return combined

    def __str__(self) -> str:
        ids = ",".join(str(i) for i in self.covered)
        body = "empty" if self.is_empty else f"{len(self.actions)} action(s)"
        return f"AL[{self.view}/{self.manager} U{{{ids}}}: {body}]"
