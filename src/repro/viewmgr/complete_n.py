"""The complete-N view manager (§6.3).

"A view manager may be complete-N, that is, it may process N source
updates at a time and maintain the view consistently after every N
updates."

Global update ids partition into blocks ``[kN+1, (k+1)N]``.  The manager
emits one action list per block that contains at least one relevant
update, covering exactly its relevant updates in that block.  A block is
known to be over when the integrator's end-of-block marker for it arrives
(the integrator broadcasts markers to complete-N managers), so the
manager never waits indefinitely on a quiet view.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING, Mapping

from repro.errors import ViewManagerError
from repro.messages import UpdateForView
from repro.relational.expressions import ViewDefinition
from repro.relational.schema import Schema
from repro.sim.process import Process
from repro.viewmgr.base import CostModel, ViewManager, default_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True, slots=True)
class EndOfBlock:
    """Integrator marker: every update with id <= ``through`` was numbered."""

    block: int
    through: int


class CompleteNViewManager(ViewManager):
    """Processes its relevant updates in global blocks of N."""

    level = "complete-n"

    def __init__(
        self,
        sim: "Simulator",
        definition: ViewDefinition,
        base_schemas: Mapping[str, Schema],
        n: int,
        name: str | None = None,
        merge_name: str = "merge",
        service_name: str = "basedata",
        mode: str = "cached",
        compute_cost: CostModel = default_cost,
    ) -> None:
        super().__init__(
            sim,
            definition,
            base_schemas,
            name=name,
            merge_name=merge_name,
            service_name=service_name,
            mode=mode,
            compute_cost=compute_cost,
        )
        if n < 1:
            raise ViewManagerError(f"block size N must be >= 1, got {n}")
        self.n = n
        self._closed_through = 0  # largest update id in a closed block

    def handle(self, message: object, sender: Process) -> None:
        if isinstance(message, EndOfBlock):
            self._closed_through = max(self._closed_through, message.through)
            self._maybe_start()
        else:
            super().handle(message, sender)

    def flush(self) -> None:
        """Treat the end of the update stream as closing the last block."""
        if self._buffer:
            last = self._buffer[-1].update_id
            block_end = ((last - 1) // self.n + 1) * self.n
            self._closed_through = max(self._closed_through, block_end)
            self._maybe_start()

    def extra_durable_state(self) -> dict:
        return {"closed_through": self._closed_through}

    def restore_extra_state(self, state: dict) -> None:
        self._closed_through = state.get("closed_through", 0)

    def select_batch(self) -> list[UpdateForView]:
        """Take the buffered updates of the oldest fully closed block."""
        if not self._buffer:
            return []
        first = self._buffer[0].update_id
        block_end = ((first - 1) // self.n + 1) * self.n
        if self._closed_through < block_end:
            return []  # the block containing the oldest update is still open
        batch: list[UpdateForView] = []
        while self._buffer and self._buffer[0].update_id <= block_end:
            batch.append(self._buffer.popleft())
        return batch
