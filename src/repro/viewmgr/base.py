"""View manager base class.

A view manager (§3.3) is a process that owns one view: it buffers the
updates the integrator routes to it, computes view deltas (which takes
virtual time, configurable via ``compute_cost``), and sends action lists
to its merge process.

Pre-state acquisition — the crux of §1.1 Problem 3 (delta computation is
"intertwined" with subsequent updates) — supports three correct modes and
one deliberately broken one:

``cached``
    The manager keeps local replicas of its base relations, maintained
    from the very update stream it receives.  Replicas always sit exactly
    at the state preceding the batch being processed, so deltas are
    trivially correct.  (The paper notes delta computation "may involve
    queries back to the sources if base data is not cached at the
    warehouse" — this is the cached case.)

``snapshot``
    The manager queries the base-data service for the multiversion
    snapshot *as of* the batch's starting version.

``compensate``
    The manager queries the *current* state and rolls back the updates
    that committed after its batch start (the service ships the undo
    information).  This is the Strobe-flavoured discipline for autonomous
    sources without multiversion reads.

``naive``
    Queries the current state and uses it as-is.  Wrong whenever updates
    intertwine — kept to demonstrate the anomaly (see
    :class:`repro.viewmgr.naive.NaiveViewManager`).
"""

from __future__ import annotations

import itertools
from collections import deque
from time import perf_counter_ns
from typing import TYPE_CHECKING, Callable, Mapping

from repro.errors import ViewManagerError
from repro.messages import (
    ActionListMessage,
    SnapshotQuery,
    SnapshotResponse,
    UpdateForView,
)
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import ViewDefinition
from repro.relational.plan import MaintenancePlan, PlanUnsupported
from repro.relational.predicates import Predicate
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.process import Process
from repro.viewmgr.actions import ActionList

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator

#: cost model: f(number_of_updates_in_batch, delta_magnitude) -> virtual time
CostModel = Callable[[int, int], float]


def default_cost(batch_size: int, delta_magnitude: int) -> float:
    """A mild default: fixed overhead plus per-changed-row work."""
    return 1.0 + 0.05 * delta_magnitude + 0.1 * batch_size


PRE_STATE_MODES = ("cached", "snapshot", "compensate", "naive")


class ViewManager(Process):
    """Common machinery; subclasses choose the batching discipline."""

    #: single-view consistency level ("complete", "strong", "convergent")
    level = "complete"

    def __init__(
        self,
        sim: "Simulator",
        definition: ViewDefinition,
        base_schemas: Mapping[str, Schema],
        name: str | None = None,
        merge_name: str = "merge",
        service_name: str = "basedata",
        mode: str = "cached",
        compute_cost: CostModel = default_cost,
    ) -> None:
        super().__init__(sim, name or f"vm:{definition.name}")
        if mode not in PRE_STATE_MODES:
            raise ViewManagerError(
                f"unknown pre-state mode {mode!r}; pick one of {PRE_STATE_MODES}"
            )
        self.definition = definition
        self.view = definition.name
        self.base_schemas = dict(base_schemas)
        self.merge_name = merge_name
        self.service_name = service_name
        self.mode = mode
        self.compute_cost = compute_cost
        self._buffer: deque[UpdateForView] = deque()
        self._computing = False
        self._replica: Database | None = None
        self._plan: MaintenancePlan | None = None
        # Remote propagate endpoint (procs runtime): when set, cached-mode
        # delta computation round-trips a compute server instead of the
        # local plan (see repro.runtime.procpool.RemoteViewPlan).
        self._remote_plan = None
        # Per-relation sigma-restriction (selection filtering, [7]): rows a
        # view's selections provably reject are kept out of the replica
        # and out of incoming deltas — they can never contribute.
        self._replica_filters: dict[str, "Predicate"] = {}
        self._applied_version = 0
        self._query_ids = itertools.count(1)
        self._outstanding_query: int | None = None
        self._current_batch: list[UpdateForView] = []
        self.action_lists_sent = 0
        self.updates_processed = 0
        # Registry twins of the attribute counters above (plus row volume)
        # so exporters and `inspect` see per-view compute work without
        # touching manager internals.  Created eagerly: the instruments
        # exist (at zero) even for views that never see an update.
        metrics = sim.metrics
        self._m_batches = metrics.counter("vm_compute_batches", view=self.view)
        self._m_rows = metrics.counter("vm_compute_rows", view=self.view)
        self._m_updates = metrics.counter("vm_updates_processed", view=self.view)
        # Opt-in plan profiling (SystemConfig.profile_plans): wraps each
        # propagate in a wall-clock timer and, for local columnar plans,
        # attaches a PlanProfiler for per-node timings.
        self._profile = False
        # Content-addressed cache binding (repro.cache): None = the PR-1
        # behaviour, crash recovery by in-simulator replay only.
        self._cache = None
        self._pending_emit: tuple[tuple[int, ...], Delta] | None = None
        self._stash: dict | None = None
        self.cache_restores = 0
        self.cache_fallbacks = 0

    # -- replica management (cached mode) ---------------------------------------
    def set_replica_filters(self, filters: Mapping[str, "Predicate"]) -> None:
        """Install the restricted selection predicates (filtering mode).

        Must match the integrator's routing filter: an update this view
        never receives must also be a row the replica never holds.
        Call before :meth:`seed_replica`.
        """
        self._replica_filters = dict(filters)

    def _row_admissible(self, relation: str, row: Row) -> bool:
        predicate = self._replica_filters.get(relation)
        return predicate is None or predicate.evaluate(row)

    def _filter_deltas(self, deltas: dict[str, Delta]) -> dict[str, Delta]:
        if not self._replica_filters:
            return deltas
        return {
            relation: Delta(
                {
                    row: count
                    for row, count in delta.counts().items()
                    if self._row_admissible(relation, row)
                }
            )
            for relation, delta in deltas.items()
        }

    def install_cache(self, binding) -> None:
        """Attach a :class:`~repro.cache.artifacts.ViewCacheBinding`.

        Call before :meth:`seed_replica` so the binding can serve a seed
        artifact (warm plan compile + initial contents) and so every
        handled message gets a durable checkpoint.  Only cached mode has
        a standing replica worth caching.
        """
        if self.mode != "cached":
            raise ViewManagerError(
                f"{self.name} runs mode={self.mode!r}; the artifact cache "
                f"needs cached mode (a standing replica to checkpoint)"
            )
        self._cache = binding

    def seed_replica(self, initial: Database) -> None:
        """Install local base-relation replicas from the initial source state."""
        replica = Database()
        for relation in sorted(self.definition.base_relations()):
            schema = self.base_schemas[relation]
            rows = (
                row
                for row in initial.relation(relation)
                if self._row_admissible(relation, row)
            )
            replica.create_relation(relation, schema, rows)
        self._replica = replica
        # Cached mode processes every batch against this one stable
        # database, so maintenance can run through a compiled indexed
        # plan (columnar-engine by default — see docs/engine.md);
        # query-back modes rebuild a pre-state per batch and keep the
        # unindexed path.  A cache binding fixes its key material here
        # and may serve a seed artifact whose auxiliary state lets the
        # compile skip its evaluation passes (the cold-start hot spot).
        preload = None
        if self._cache is not None:
            self._cache.on_seeded(self)
            preload = self._cache.seed_aux()
        try:
            self._plan = MaintenancePlan(
                self.definition.expression, replica, preload=preload
            )
        except PlanUnsupported:
            self._plan = None

    def use_remote_plan(self, remote) -> None:
        """Offload cached-mode propagation to a compute server.

        ``remote`` needs one method, ``propagate(deltas) -> Delta``, with
        the same pre-state contract as the local plan's.  The server owns
        the authoritative plan/replica pair from here on; the local
        replica still advances (cheap row application) so a fallback or
        inspection sees current base state, but the local plan's auxiliary
        state is no longer maintained.
        """
        if self.mode != "cached":
            raise ViewManagerError(
                f"{self.name} runs mode={self.mode!r}; remote plans need "
                f"cached mode (a standing replica to fork)"
            )
        self._remote_plan = remote

    def materialize_initial(self, initial: Database) -> Relation:
        """Compute the view's initial contents (``V(ss_0)``)."""
        from repro.relational.algebra import evaluate

        if self._cache is not None:
            cached = self._cache.seed_contents()
            if cached is not None:
                return cached
        scratch = Database()
        for relation in sorted(self.definition.base_relations()):
            scratch.create_relation(
                relation,
                self.base_schemas[relation],
                iter(initial.relation(relation)),
            )
        contents = evaluate(self.definition.expression, scratch)
        if self._cache is not None:
            self._cache.publish_seed(self, contents)
        return contents

    # -- message handling -----------------------------------------------------
    def handle(self, message: object, sender: Process) -> None:
        if isinstance(message, UpdateForView):
            if message.view != self.view:
                raise ViewManagerError(
                    f"{self.name} got update for view {message.view!r}"
                )
            self._buffer.append(message)
            self._maybe_start()
        elif isinstance(message, SnapshotResponse):
            self._on_snapshot(message)
        elif type(message).__name__ == "EndOfBlock":
            # Block markers are broadcast to every manager in complete-N
            # systems; only CompleteNViewManager acts on them (it overrides
            # handle), the rest ignore them.
            pass
        else:
            raise ViewManagerError(
                f"{self.name} cannot handle {type(message).__name__}"
            )

    # -- compute loop -------------------------------------------------------------
    def _maybe_start(self) -> None:
        if self._computing or not self._buffer:
            return
        batch = self.select_batch()
        if not batch:
            return
        self._computing = True
        self._current_batch = batch
        if self.mode == "cached":
            self._compute_from(self._require_replica(), advance_replica=True)
        else:
            self._send_query(batch)

    def select_batch(self) -> list[UpdateForView]:
        """Take the updates to process next from the buffer (subclass hook).

        Must remove the selected messages from ``self._buffer`` and return
        them in arrival order; returning an empty list means "not yet"
        (e.g. complete-N still collecting).
        """
        raise NotImplementedError

    def _require_replica(self) -> Database:
        if self._replica is None:
            raise ViewManagerError(
                f"{self.name} runs in cached mode but seed_replica() was "
                f"never called"
            )
        return self._replica

    def _send_query(self, batch: list[UpdateForView]) -> None:
        start_version = batch[0].update_id - 1
        query_id = next(self._query_ids)
        self._outstanding_query = query_id
        if self.mode == "snapshot":
            query = SnapshotQuery(
                query_id,
                self.name,
                self.definition.base_relations(),
                version=start_version,
            )
        elif self.mode == "compensate":
            query = SnapshotQuery(
                query_id,
                self.name,
                self.definition.base_relations(),
                version=None,
                undo_from=start_version,
            )
        else:  # naive: current state, no undo information requested
            query = SnapshotQuery(
                query_id, self.name, self.definition.base_relations(), version=None
            )
        self.send(self.service_name, query)

    def _on_snapshot(self, response: SnapshotResponse) -> None:
        if response.query_id != self._outstanding_query:
            raise ViewManagerError(
                f"{self.name} got stale snapshot response {response.query_id}"
            )
        self._outstanding_query = None
        pre_state = self._build_pre_state(response)
        self._compute_from(pre_state, advance_replica=False)

    def _build_pre_state(self, response: SnapshotResponse) -> Database:
        db = Database()
        for relation in sorted(self.definition.base_relations()):
            counts = response.contents.get(relation, {})
            db.create_relation(relation, self.base_schemas[relation])
            target = db.relation(relation)
            for row, count in counts.items():
                target.insert(row, count)
        if self.mode == "compensate":
            # Roll back every update that committed after our batch start,
            # in reverse order, to reconstruct the pre-state.
            for _update_id, update in sorted(
                response.undo_updates, key=lambda pair: pair[0], reverse=True
            ):
                update.as_delta().negated().apply_to(db.relation(update.relation))
        return db

    def enable_plan_profiling(self, profiler=None) -> None:
        """Time every propagate; profile the local plan's nodes if present.

        ``profiler`` is shared across managers when the builder passes
        one (so a system-wide report aggregates per-node); remote plans
        profile inside their compute server instead.
        """
        self._profile = True
        metrics = self.sim.metrics
        self._m_prop_calls = metrics.counter(
            "plan_propagate_calls", view=self.view
        )
        self._m_prop_ns = metrics.counter(
            "plan_propagate_time_ns", view=self.view
        )
        if self._plan is not None and self._plan.engine == "columnar":
            self._plan.enable_profiling(profiler)

    def _compute_from(self, pre_state: Database, advance_replica: bool) -> None:
        batch = self._current_batch
        deltas = self._filter_deltas(self._batch_deltas(batch))
        t0 = perf_counter_ns() if self._profile else 0
        if advance_replica and self._remote_plan is not None:
            # Remote path (procs runtime): the compute server propagates
            # against its forked plan and advances its own replica; we
            # mirror the base-state advance locally and skip the (now
            # unmaintained) local plan entirely.
            view_delta = self._remote_plan.propagate(deltas)
            pre_state.apply_deltas(deltas)
        elif advance_replica and self._plan is not None:
            # Indexed path: probe the replica's hash indexes and the
            # plan's auxiliary state instead of rescanning base relations.
            view_delta = self._plan.propagate(deltas)
            pre_state.apply_deltas(deltas)
            self._plan.advance()
        else:
            view_delta = propagate_delta(
                self.definition.expression, pre_state, deltas
            )
            if advance_replica:
                pre_state.apply_deltas(deltas)
        if self._profile:
            self._m_prop_calls.inc()
            self._m_prop_ns.inc(perf_counter_ns() - t0)
        self._m_batches.inc()
        self._m_rows.inc(len(view_delta))
        self._m_updates.inc(len(batch))
        if advance_replica and self._cache is not None:
            self._cache.advance(deltas)
        covered = tuple(msg.update_id for msg in batch)
        cost = self.compute_cost(len(batch), len(view_delta) + 1)
        self.trace(
            "vm_compute",
            covered=covered,
            delta=len(view_delta),
            cost=round(cost, 4),
        )
        self._pending_emit = (covered, view_delta)
        self.sim.schedule(cost, self._emit, covered, view_delta, self._epoch)

    @staticmethod
    def _batch_deltas(batch: list[UpdateForView]) -> dict[str, Delta]:
        merged: dict[str, Delta] = {}
        for message in batch:
            for update in message.updates:
                existing = merged.get(update.relation, Delta())
                merged[update.relation] = existing.combined(update.as_delta())
        return merged

    def _emit(
        self,
        covered: tuple[int, ...],
        view_delta: Delta,
        epoch: int | None = None,
    ) -> None:
        if (
            self._cache is not None
            and epoch is not None
            and epoch != self._epoch
        ):
            # A pre-crash emit firing after restart.  Cache-backed
            # recovery restored (and re-scheduled) the pending emit
            # itself, so letting this stale event through would send the
            # action list twice.  Without a cache the stale emit *is*
            # the recovery path — the computed state survives in-process
            # — so the guard applies only to cache-backed managers.
            return
        action_list = self.build_action_list(covered, view_delta)
        self.send(self.merge_name, ActionListMessage(action_list))
        self.action_lists_sent += 1
        self.updates_processed += len(covered)
        self._applied_version = covered[-1]
        self._computing = False
        self._current_batch = []
        self._pending_emit = None
        if self._cache is not None:
            # The emit changed durable state (list sent, pending cleared)
            # outside any handled message — publish a covering checkpoint
            # or a restart would re-send this action list.
            self._cache.on_handled(self)
        self._maybe_start()

    def build_action_list(
        self, covered: tuple[int, ...], view_delta: Delta
    ) -> ActionList:
        """Package the computed delta (subclass hook for REPLACE managers)."""
        return ActionList.from_delta(self.view, self.name, covered, view_delta)

    def flush(self) -> None:
        """End-of-stream hook: release anything held voluntarily.

        The default managers hold nothing (they always drain their
        buffer); complete-N overrides this to close its trailing partial
        block once the update stream has ended.
        """

    # -- durability (repro.cache) -------------------------------------------
    def extra_durable_state(self) -> dict:
        """Subclass state a checkpoint must carry (plain picklable data)."""
        return {}

    def restore_extra_state(self, state: dict) -> None:
        """Inverse of :meth:`extra_durable_state`."""

    def on_handled(self, message: object, sender: Process) -> None:
        # Checkpoint-before-ack: this hook runs after the message's
        # effects but before the channel-level on_processed ack, so every
        # acked update is covered by some published artifact.
        if self._cache is not None:
            self._cache.on_handled(self)

    def on_crash(self) -> None:
        if self._cache is None:
            return
        # Model a real process death: volatile state is gone.  The live
        # objects are stashed aside only as the *fallback* recovery path
        # (mirroring PR-1 replay); restore prefers the artifact store and
        # the counters below say which path ran.
        self._stash = self._cache.capture_local(self)
        self._buffer = deque()
        self._current_batch = []
        self._pending_emit = None
        self._computing = False
        self._outstanding_query = None
        self._replica = None
        self._plan = None

    def on_restart(self) -> None:
        if self._cache is None:
            return
        if self._cache.try_restore(self):
            self.cache_restores += 1
            self.sim.metrics.counter("cache_restores", process=self.name).inc()
            self.trace("cache_restore", applied=self._applied_version)
        else:
            stash, self._stash = self._stash, None
            if stash is None:
                raise ViewManagerError(
                    f"{self.name} restarted with neither a cache artifact "
                    f"nor local state to fall back to"
                )
            self._cache.restore_local(self, stash)
            self.cache_fallbacks += 1
            self.sim.metrics.counter("cache_fallbacks", process=self.name).inc()
            self.trace("cache_fallback", applied=self._applied_version)
        self._stash = None
        pending = self._pending_emit
        if pending is not None:
            # The crash interrupted a computed-but-unsent batch; the
            # checkpoint preserved it, so re-emit immediately (the
            # compute cost was already paid before the crash).
            self.sim.schedule(
                0.0, self._emit, pending[0], pending[1], self._epoch
            )
        else:
            self._maybe_start()

    # -- inspection ------------------------------------------------------------
    @property
    def backlog(self) -> int:
        return len(self._buffer) + len(self._current_batch)

    def idle(self) -> bool:
        return not self._buffer and not self._computing
