"""The naive (deliberately broken) view manager.

Demonstrates §1.1 Problem 3: "A delta computation ... may be 'intertwined'
with subsequent updates.  For instance, in Example 1, in between times t1
and t2 we computed the join of the new S tuple [2,3] with R.  If R is
updated before we read it, we may get fewer or more tuples than what we
wanted."

This manager queries the *current* base state (no multiversion snapshot,
no compensation) and computes each update's delta against it.  Whenever
another update slips in between the update and the read, the resulting
action list is wrong — the view drifts away from every consistent source
state.  Tests and the Table-1 benchmark use it as the cautionary baseline
that motivates the correct managers in this package.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping

from repro.messages import UpdateForView
from repro.relational.expressions import ViewDefinition
from repro.relational.schema import Schema
from repro.viewmgr.base import CostModel, ViewManager, default_cost

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class NaiveViewManager(ViewManager):
    """Computes deltas against whatever base state it happens to read."""

    level = "broken"

    def __init__(
        self,
        sim: "Simulator",
        definition: ViewDefinition,
        base_schemas: Mapping[str, Schema],
        name: str | None = None,
        merge_name: str = "merge",
        service_name: str = "basedata",
        compute_cost: CostModel = default_cost,
    ) -> None:
        super().__init__(
            sim,
            definition,
            base_schemas,
            name=name,
            merge_name=merge_name,
            service_name=service_name,
            mode="naive",
            compute_cost=compute_cost,
        )

    def select_batch(self) -> list[UpdateForView]:
        return [self._buffer.popleft()]
