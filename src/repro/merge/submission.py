"""Warehouse-transaction submission policies (§4.3).

Once the painting algorithm declares a group of action lists ready, the
merge process must get it committed at the warehouse *in order relative to
dependent transactions* ("WT_j depends on WT_i if j > i and
VS(WT_j) ∩ VS(WT_i) ≠ ∅").  The paper sketches several solutions; all are
implemented:

* :class:`SequentialPolicy` — "only submit one to the warehouse after the
  previous transaction has committed."  Safe, minimal concurrency.
* :class:`DependencySequencedPolicy` — "only sequence dependent
  transactions instead of all transactions."  Independent transactions
  overlap at the warehouse.
* :class:`DbmsDependencyPolicy` — "submit transactions with dependency
  information and let the warehouse DBMS handle the execution sequence."
* :class:`BatchingPolicy` — "batch several WT_i s and submit them as one
  batched warehouse transaction (BWT)" — at the cost of degrading
  completeness to strong consistency (each BWT advances the warehouse by
  more than one state).
* :class:`EagerPolicy` — submit immediately with no ordering control.
  Deliberately unsafe: with a multi-executor warehouse it reproduces the
  §4.3 hazard where WT_3 commits before WT_1.
"""

from __future__ import annotations

from collections import deque
from typing import Callable

from repro.errors import MergeError
from repro.messages import WarehouseTransactionMsg
from repro.warehouse.txn import WarehouseTransaction, batch as batch_txns

SubmitFn = Callable[[WarehouseTransactionMsg], None]
AllocateFn = Callable[[], int]


class SubmissionPolicy:
    """Decides when (and annotated how) ready transactions reach the warehouse."""

    name = "policy"
    #: True when the policy preserves one warehouse state per ready unit
    preserves_completeness = True

    def __init__(self) -> None:
        self._submit: SubmitFn | None = None
        self._allocate: AllocateFn | None = None
        self.submitted = 0

    def bind(self, submit: SubmitFn, allocate_id: AllocateFn) -> None:
        """Wire the policy to its merge process."""
        self._submit = submit
        self._allocate = allocate_id

    def unbind(self) -> None:
        """Drop the merge-process callbacks (so the policy can be deep-copied
        into a checkpoint without dragging the process and simulator along)."""
        self._submit = None
        self._allocate = None

    def _send(self, message: WarehouseTransactionMsg) -> None:
        if self._submit is None:
            raise MergeError(f"{type(self).__name__} was never bound")
        self.submitted += 1
        self._submit(message)

    # -- policy API --------------------------------------------------------
    def offer(self, txn: WarehouseTransaction) -> None:
        """A new ready transaction, in submission order."""
        raise NotImplementedError

    def on_commit(self, txn_id: int) -> None:
        """The warehouse confirmed commit of ``txn_id``."""

    def flush(self) -> None:
        """Force out anything held back (end of run; batching)."""

    @property
    def pending(self) -> int:
        """Transactions held by the policy, not yet submitted."""
        return 0


class EagerPolicy(SubmissionPolicy):
    """Submit immediately, attach nothing.  Unsafe by design (§4.3 hazard)."""

    name = "eager"

    def offer(self, txn: WarehouseTransaction) -> None:
        self._send(WarehouseTransactionMsg(txn))


class SequentialPolicy(SubmissionPolicy):
    """One outstanding warehouse transaction at a time."""

    name = "sequential"

    def __init__(self) -> None:
        super().__init__()
        self._queue: deque[WarehouseTransaction] = deque()
        self._outstanding: int | None = None

    def offer(self, txn: WarehouseTransaction) -> None:
        self._queue.append(txn)
        self._pump()

    def on_commit(self, txn_id: int) -> None:
        if txn_id == self._outstanding:
            self._outstanding = None
        self._pump()

    def _pump(self) -> None:
        if self._outstanding is None and self._queue:
            txn = self._queue.popleft()
            self._outstanding = txn.txn_id
            self._send(WarehouseTransactionMsg(txn))

    @property
    def pending(self) -> int:
        return len(self._queue)


class DependencySequencedPolicy(SubmissionPolicy):
    """Delay a transaction only while a dependency is uncommitted."""

    name = "dependency-sequenced"

    def __init__(self) -> None:
        super().__init__()
        self._queue: list[WarehouseTransaction] = []
        self._uncommitted: dict[int, frozenset[str]] = {}

    def offer(self, txn: WarehouseTransaction) -> None:
        self._queue.append(txn)
        self._pump()

    def on_commit(self, txn_id: int) -> None:
        self._uncommitted.pop(txn_id, None)
        self._pump()

    def _blocked(self, txn: WarehouseTransaction, queued_before: list) -> bool:
        views = txn.view_set
        if any(views & vs for vs in self._uncommitted.values()):
            return True
        return any(views & earlier.view_set for earlier in queued_before)

    def _pump(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for index, txn in enumerate(self._queue):
                if not self._blocked(txn, self._queue[:index]):
                    del self._queue[index]
                    self._uncommitted[txn.txn_id] = txn.view_set
                    self._send(WarehouseTransactionMsg(txn))
                    progressed = True
                    break

    @property
    def pending(self) -> int:
        return len(self._queue)


class DbmsDependencyPolicy(SubmissionPolicy):
    """Submit everything at once, annotated with commit dependencies."""

    name = "dbms-dependency"

    def __init__(self) -> None:
        super().__init__()
        self._uncommitted: dict[int, frozenset[str]] = {}

    def offer(self, txn: WarehouseTransaction) -> None:
        deps = tuple(
            sorted(
                txn_id
                for txn_id, views in self._uncommitted.items()
                if views & txn.view_set
            )
        )
        self._uncommitted[txn.txn_id] = txn.view_set
        self._send(WarehouseTransactionMsg(txn, sequenced_after=deps))

    def on_commit(self, txn_id: int) -> None:
        self._uncommitted.pop(txn_id, None)


class BatchingPolicy(SubmissionPolicy):
    """Combine every ``batch_size`` ready WTs into one BWT (§4.3).

    The constituents keep their submission order inside the batch, so
    dependencies between them dissolve; dependencies between *batches* are
    handled by the ``inner`` policy (sequential by default).  Batching
    trades completeness for strong consistency: each BWT advances the
    warehouse state by more than one source state.
    """

    name = "batching"
    preserves_completeness = False

    def __init__(
        self,
        batch_size: int = 4,
        inner: SubmissionPolicy | None = None,
        merge_name: str = "merge",
    ) -> None:
        super().__init__()
        if batch_size < 1:
            raise MergeError(f"batch_size must be >= 1, got {batch_size}")
        self.batch_size = batch_size
        self.inner = inner if inner is not None else SequentialPolicy()
        self.merge_name = merge_name
        self._held: list[WarehouseTransaction] = []
        self.batches_formed = 0

    def bind(self, submit: SubmitFn, allocate_id: AllocateFn) -> None:
        super().bind(submit, allocate_id)
        self.inner.bind(self._count_and_submit, allocate_id)

    def unbind(self) -> None:
        super().unbind()
        self.inner.unbind()

    def _count_and_submit(self, message: WarehouseTransactionMsg) -> None:
        self.submitted += 1
        assert self._submit is not None
        self._submit(message)

    def offer(self, txn: WarehouseTransaction) -> None:
        self._held.append(txn)
        if len(self._held) >= self.batch_size:
            self._form_batch()

    def _form_batch(self) -> None:
        if not self._held:
            return
        assert self._allocate is not None
        combined = batch_txns(self._allocate(), self.merge_name, self._held)
        self._held = []
        self.batches_formed += 1
        self.inner.offer(combined)

    def on_commit(self, txn_id: int) -> None:
        self.inner.on_commit(txn_id)

    def flush(self) -> None:
        self._form_batch()
        self.inner.flush()

    @property
    def pending(self) -> int:
        return len(self._held) + self.inner.pending
