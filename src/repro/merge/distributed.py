"""Distributing the merge process (§6.1).

"The most straightforward way of splitting is to first partition view
managers into groups such that base relations used in the views of one
group are disjoint with those used in the views of other groups.  Then
each group of views is assigned one merge process."

:func:`partition_views` computes exactly those groups: connected
components of the bipartite view/base-relation sharing graph (union-find —
no external dependency).  The system builder assigns one
:class:`~repro.merge.process.MergeProcess` per group and routes each
``REL_i`` (restricted to the group) plus the group's action lists to it.
Updates touching relations of different groups never interact, so the
groups' warehouse transactions are always independent and MVC is preserved
without cross-merge coordination.
"""

from __future__ import annotations

from typing import Iterable, Sequence

from repro.errors import MergeError
from repro.relational.expressions import ViewDefinition


class _UnionFind:
    """Minimal union-find over arbitrary hashable items."""

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self._parent.setdefault(item, item)
        if parent is item or parent == item:
            return item
        root = self.find(parent)
        self._parent[item] = root
        return root

    def union(self, a: object, b: object) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


def partition_views(
    definitions: Sequence[ViewDefinition],
    max_groups: int | None = None,
) -> list[tuple[str, ...]]:
    """Group views so groups share no base relations.

    Returns groups as tuples of view names, each sorted, the groups
    ordered by their first view name.  ``max_groups`` optionally coalesces
    the finest partition into at most that many groups (merging the
    smallest groups first) — useful when running one merge process per
    group would be too many processes.
    """
    if not definitions:
        raise MergeError("cannot partition zero views")
    names = [d.name for d in definitions]
    if len(set(names)) != len(names):
        raise MergeError(f"duplicate view names: {names}")
    uf = _UnionFind()
    for definition in definitions:
        view_key = ("view", definition.name)
        uf.find(view_key)
        for relation in definition.base_relations():
            uf.union(view_key, ("rel", relation))
    groups: dict[object, list[str]] = {}
    for definition in definitions:
        root = uf.find(("view", definition.name))
        groups.setdefault(root, []).append(definition.name)
    result = sorted(
        (tuple(sorted(views)) for views in groups.values()),
        key=lambda group: group[0],
    )
    if max_groups is not None and max_groups >= 1 and len(result) > max_groups:
        result = _coalesce(result, max_groups)
    return result


def _coalesce(
    groups: list[tuple[str, ...]], max_groups: int
) -> list[tuple[str, ...]]:
    """Merge the smallest groups until at most ``max_groups`` remain."""
    working = [list(g) for g in groups]
    while len(working) > max_groups:
        working.sort(key=len)
        smallest = working.pop(0)
        working[0].extend(smallest)
    return sorted(
        (tuple(sorted(views)) for views in working),
        key=lambda group: group[0],
    )


def group_for_view(
    groups: Iterable[tuple[str, ...]], view: str
) -> tuple[str, ...]:
    """Find the group containing ``view``."""
    for group in groups:
        if view in group:
            return group
    raise MergeError(f"view {view!r} is in no group")
