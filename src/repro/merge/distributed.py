"""Distributing the merge process (§6.1).

"The most straightforward way of splitting is to first partition view
managers into groups such that base relations used in the views of one
group are disjoint with those used in the views of other groups.  Then
each group of views is assigned one merge process."

:func:`partition_views` computes exactly those groups: connected
components of the bipartite view/base-relation sharing graph (union-find —
no external dependency).  The system builder assigns one
:class:`~repro.merge.process.MergeProcess` per group and routes each
``REL_i`` (restricted to the group) plus the group's action lists to it.
Updates touching relations of different groups never interact, so the
groups' warehouse transactions are always independent and MVC is preserved
without cross-merge coordination.

``max_groups`` coalesces the finest partition into at most that many
groups by repeatedly merging the two cheapest groups, where "cheap" is
the summed :func:`estimate_plan_cost` of the member views — a static
proxy for the per-update maintenance work a merge process will carry.
For cost-balanced *placement* of groups onto a fixed shard fleet (stable
under group and shard churn), see :mod:`repro.merge.sharding`.
"""

from __future__ import annotations

import heapq
import warnings
from typing import Iterable, Mapping, Sequence

from repro.errors import MergeError
from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
    ViewDefinition,
)


class _UnionFind:
    """Minimal union-find over arbitrary hashable items.

    ``find`` is iterative with full path compression: the first pass
    walks to the root, the second re-points every node on the path
    directly at it.  (A recursive find blows Python's recursion limit
    once a single connected component grows past ~1000 members.)
    """

    def __init__(self) -> None:
        self._parent: dict[object, object] = {}

    def find(self, item: object) -> object:
        parent = self._parent
        root = item
        while True:
            above = parent.setdefault(root, root)
            if above == root:
                break
            root = above
        while item != root:
            item, parent[item] = parent[item], root
        return root

    def union(self, a: object, b: object) -> None:
        root_a, root_b = self.find(a), self.find(b)
        if root_a != root_b:
            self._parent[root_b] = root_a


#: static per-node weights for :func:`estimate_plan_cost`.  A join costs
#: the most (two index probes plus delta×delta work per update), an
#: aggregate keeps group state, selects/projects are per-row filters.
_NODE_COST = {
    BaseRelation: 1.0,
    Select: 0.2,
    Project: 0.2,
    Join: 2.0,
    Aggregate: 1.5,
}


def estimate_plan_cost(definition: ViewDefinition) -> float:
    """A static cost proxy for maintaining ``definition``.

    Walks the expression tree once and sums per-node weights.  The
    absolute scale is meaningless; what matters is that a three-way join
    view weighs more than a bare ``SELECT * FROM Q``, so coalescing and
    shard placement balance *work*, not view counts.
    """
    total = 0.0
    stack: list[Expression] = [definition.expression]
    while stack:
        node = stack.pop()
        total += _NODE_COST.get(type(node), 0.5)
        if isinstance(node, Join):
            stack.append(node.left)
            stack.append(node.right)
        elif isinstance(node, (Select, Project, Aggregate)):
            stack.append(node.child)
    return total


def partition_views(
    definitions: Sequence[ViewDefinition],
    max_groups: int | None = None,
) -> list[tuple[str, ...]]:
    """Group views so groups share no base relations.

    Returns groups as tuples of view names, each sorted, the groups
    ordered by their first view name.  ``max_groups`` optionally coalesces
    the finest partition into at most that many groups (merging the
    cheapest groups first, by estimated plan cost) — useful when running
    one merge process per group would be too many processes.
    """
    if not definitions:
        raise MergeError("cannot partition zero views")
    names = [d.name for d in definitions]
    if len(set(names)) != len(names):
        raise MergeError(f"duplicate view names: {names}")
    uf = _UnionFind()
    for definition in definitions:
        view_key = ("view", definition.name)
        uf.find(view_key)
        for relation in definition.base_relations():
            uf.union(view_key, ("rel", relation))
    groups: dict[object, list[str]] = {}
    for definition in definitions:
        root = uf.find(("view", definition.name))
        groups.setdefault(root, []).append(definition.name)
    result = sorted(
        (tuple(sorted(views)) for views in groups.values()),
        key=lambda group: group[0],
    )
    if max_groups is not None and max_groups >= 1 and len(result) > max_groups:
        costs = {d.name: estimate_plan_cost(d) for d in definitions}
        result = _coalesce(result, max_groups, costs)
    return result


def _coalesce(
    groups: list[tuple[str, ...]],
    max_groups: int,
    view_costs: Mapping[str, float],
) -> list[tuple[str, ...]]:
    """Merge the cheapest groups until at most ``max_groups`` remain.

    Repeatedly pops the two lowest-cost groups off a heap and pushes
    their union — O(G log G) overall, versus the old re-sort-per-
    iteration O(G² log G).  Keying the heap by summed estimated plan
    cost (first-view name as tiebreak, for determinism) balances the
    *work* each eventual merge process carries; the old view-count key
    would pair a ten-way-join group with another heavy group just
    because both held few views.
    """
    heap = [
        (sum(view_costs.get(v, 1.0) for v in group), group[0], list(group))
        for group in groups
    ]
    heapq.heapify(heap)
    while len(heap) > max_groups:
        cost_a, _, views_a = heapq.heappop(heap)
        cost_b, _, views_b = heapq.heappop(heap)
        views_a.extend(views_b)
        heapq.heappush(heap, (cost_a + cost_b, min(views_a), views_a))
    return sorted(
        (tuple(sorted(views)) for _cost, _tie, views in heap),
        key=lambda group: group[0],
    )


def view_to_group_map(
    groups: Iterable[tuple[str, ...]],
) -> dict[str, tuple[str, ...]]:
    """Precomputed view → group lookup table.

    Build this once and index it per view: O(V) total, versus the
    deprecated :func:`group_for_view` which re-scans every group per
    lookup (O(V·G) when called in a routing loop).
    """
    mapping: dict[str, tuple[str, ...]] = {}
    for group in groups:
        for view in group:
            mapping[view] = group
    return mapping


def group_for_view(
    groups: Iterable[tuple[str, ...]], view: str
) -> tuple[str, ...]:
    """Find the group containing ``view``.

    .. deprecated:: use :func:`view_to_group_map` and index the dict —
       this linear scan is O(V·G) when called once per view.
    """
    warnings.warn(
        "group_for_view scans all groups per lookup; build a "
        "view_to_group_map() once and index it instead",
        DeprecationWarning,
        stacklevel=2,
    )
    mapping = view_to_group_map(groups)
    try:
        return mapping[view]
    except KeyError:
        raise MergeError(f"view {view!r} is in no group") from None
