"""The pass-through merge policy for convergent view managers (§6.3).

"Then the MP can just pass along all ALs it received, and also guarantees
the convergence of the warehouse views.  That is, all warehouse views are
consistent eventually, although some of them may go through inconsistent
intermediate states."

No VUT, no holding: every action list becomes its own warehouse
transaction the moment it arrives.  REL messages are accepted (the
integrator does not special-case convergent systems) but ignored.
"""

from __future__ import annotations

from repro.merge.base import MergeAlgorithm, ReadyUnit
from repro.viewmgr.actions import ActionList


class PassThroughMerge(MergeAlgorithm):
    """Forward every action list immediately; convergence only."""

    requires_level = "convergent"
    guarantees_level = "convergent"

    def __init__(self, views: tuple[str, ...], name: str = "passthrough") -> None:
        super().__init__(views, name)

    # Convergent managers may emit several lists per update and need no
    # REL bookkeeping, so bypass the base class's ordering machinery.
    def receive_rel(self, update_id: int, views: frozenset[str]) -> list[ReadyUnit]:
        self.rels_received += 1
        self._last_rel_id = max(self._last_rel_id, update_id)
        return []

    def receive_action_list(self, action_list: ActionList) -> list[ReadyUnit]:
        self.als_received += 1
        if action_list.is_empty:
            return []
        unit = ReadyUnit(action_list.covered, (action_list,))
        self.units_emitted += 1
        return [unit]

    def idle(self) -> bool:
        return True

    def _on_rel(self, update_id: int, views: frozenset[str]) -> list[ReadyUnit]:
        raise AssertionError("unreachable: receive_rel is overridden")

    def _on_action_list(self, action_list: ActionList) -> list[ReadyUnit]:
        raise AssertionError("unreachable: receive_action_list is overridden")
