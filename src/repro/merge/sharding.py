"""Sharded merge: consistent-hash placement of §6.1 view groups.

:func:`~repro.merge.distributed.partition_views` yields the *finest*
legal split of the merge work — the connected components of the
view/base-relation sharing graph.  At warehouse scale (hundreds of
views) that is far more components than one wants merge processes, so
the components must be packed onto a fixed fleet of N shards.  Any union
of distinct components is still base-relation-disjoint from any other
union, so every packing preserves the §6.1 independence argument and
therefore MVC; the packing only decides *load balance* and *stability*.

:class:`ShardRouter` implements consistent hashing with bounded loads
(Mirrokni et al.): each shard owns ``replicas`` virtual points on a hash
ring, a view group hashes to a point by its anchor (lexicographically
first) view name, and the group walks clockwise to the first shard whose
accumulated *estimated plan cost* stays under ``(1 + load_slack) x`` the
fair share.  Two properties fall out:

* **stability** — adding or removing a group (or a shard) moves only the
  groups whose ring interval changed, not an arbitrary re-shuffle the
  way modulo hashing would;
* **cost balance** — the walk is bounded by estimated
  :func:`~repro.merge.distributed.estimate_plan_cost`, not view count,
  so a shard full of three-way-join views is "full" earlier than one
  holding bare selections.

The system builder (``SystemConfig(merge_router="hash")``) uses
:func:`shard_view_groups` to turn N shards into the ``merge_groups``
mapping the integrator already routes by: each shard becomes one merge
process receiving only its own ``REL_i`` restrictions and action lists.
"""

from __future__ import annotations

import bisect
import hashlib
from dataclasses import dataclass
from typing import Mapping, Sequence

from repro.errors import MergeError
from repro.merge.distributed import estimate_plan_cost, partition_views
from repro.relational.expressions import ViewDefinition


def stable_hash(text: str) -> int:
    """A process-stable 64-bit hash (``hash()`` is salted per process)."""
    digest = hashlib.blake2b(text.encode("utf-8"), digest_size=8).digest()
    return int.from_bytes(digest, "big")


@dataclass(frozen=True)
class ShardAssignment:
    """One shard's share of the merge work, as the router placed it."""

    shard: str
    groups: tuple[tuple[str, ...], ...]
    cost: float

    @property
    def views(self) -> tuple[str, ...]:
        return tuple(sorted(v for g in self.groups for v in g))


class ShardRouter:
    """Consistent-hash, cost-bounded placement of view groups on shards.

    The router is deterministic: the same shards, groups and costs always
    produce the same placement, independent of process hash seeds or
    insertion order.
    """

    def __init__(
        self,
        shards: Sequence[str],
        replicas: int = 64,
        load_slack: float = 0.25,
    ) -> None:
        if not shards:
            raise MergeError("a shard router needs at least one shard")
        if len(set(shards)) != len(shards):
            raise MergeError(f"duplicate shard names: {list(shards)}")
        if replicas < 1:
            raise MergeError(f"replicas must be >= 1, got {replicas}")
        if load_slack < 0:
            raise MergeError(f"load_slack must be >= 0, got {load_slack}")
        self.replicas = replicas
        self.load_slack = load_slack
        self._shards = list(shards)
        self._rebuild_ring()

    def _rebuild_ring(self) -> None:
        points = []
        for shard in self._shards:
            for replica in range(self.replicas):
                points.append((stable_hash(f"{shard}#{replica}"), shard))
        points.sort()
        self._ring_hashes = [h for h, _ in points]
        self._ring_shards = [s for _, s in points]

    # -- fleet membership ---------------------------------------------------
    @property
    def shards(self) -> tuple[str, ...]:
        return tuple(self._shards)

    def add_shard(self, shard: str) -> None:
        if shard in self._shards:
            raise MergeError(f"shard {shard!r} already in the ring")
        self._shards.append(shard)
        self._rebuild_ring()

    def remove_shard(self, shard: str) -> None:
        try:
            self._shards.remove(shard)
        except ValueError:
            raise MergeError(f"shard {shard!r} not in the ring") from None
        if not self._shards:
            raise MergeError("cannot remove the last shard")
        self._rebuild_ring()

    # -- placement ----------------------------------------------------------
    @staticmethod
    def anchor(group: tuple[str, ...]) -> str:
        """The name a group hashes by: its lexicographically first view.

        Anchoring on one member keeps the group's ring position stable
        when *other* members join or leave the component.
        """
        return min(group)

    def _walk(self, key: str):
        """Yield distinct shards ring-clockwise from ``key``'s position."""
        start = bisect.bisect_left(self._ring_hashes, stable_hash(key))
        seen: set[str] = set()
        size = len(self._ring_shards)
        for step in range(size):
            shard = self._ring_shards[(start + step) % size]
            if shard not in seen:
                seen.add(shard)
                yield shard

    def shard_for_key(self, key: str) -> str:
        """Pure ring lookup, ignoring load (the classic consistent hash)."""
        return next(self._walk(key))

    def assign(
        self,
        groups: Sequence[tuple[str, ...]],
        costs: Mapping[str, float] | None = None,
    ) -> dict[tuple[str, ...], str]:
        """Place every group on a shard; returns group → shard name.

        ``costs`` maps view name → estimated plan cost (missing views
        count 1.0).  Groups are placed heaviest-first so the bounded-load
        walk sees the hard bin-packing items while every bin is still
        open; each lands on the first ring successor whose load stays
        within ``(1 + load_slack)`` of the fair share.  If every shard is
        at capacity (possible with one giant group), the least-loaded
        shard takes it.
        """
        costs = costs or {}
        group_cost = {
            group: sum(costs.get(view, 1.0) for view in group)
            for group in groups
        }
        total = sum(group_cost.values())
        capacity = (1.0 + self.load_slack) * total / len(self._shards)
        loads: dict[str, float] = {shard: 0.0 for shard in self._shards}
        placement: dict[tuple[str, ...], str] = {}
        ordered = sorted(
            groups, key=lambda g: (-group_cost[g], self.anchor(g))
        )
        for group in ordered:
            cost = group_cost[group]
            chosen = None
            for shard in self._walk(self.anchor(group)):
                if loads[shard] + cost <= capacity:
                    chosen = shard
                    break
            if chosen is None:
                chosen = min(self._shards, key=lambda s: (loads[s], s))
            loads[chosen] += cost
            placement[group] = chosen
        return placement

    def assignments(
        self,
        groups: Sequence[tuple[str, ...]],
        costs: Mapping[str, float] | None = None,
    ) -> list[ShardAssignment]:
        """The placement rolled up per shard (empty shards omitted)."""
        costs = costs or {}
        placement = self.assign(groups, costs)
        per_shard: dict[str, list[tuple[str, ...]]] = {}
        for group, shard in placement.items():
            per_shard.setdefault(shard, []).append(group)
        out = []
        for shard in self._shards:
            owned = sorted(per_shard.get(shard, []))
            if not owned:
                continue
            cost = sum(costs.get(v, 1.0) for g in owned for v in g)
            out.append(ShardAssignment(shard, tuple(owned), cost))
        return out


def groups_by_shard(view_to_merge: Mapping[str, str]) -> dict[str, tuple[str, ...]]:
    """Invert a view → merge-process routing map into per-shard view tuples.

    The canonical grouping every per-shard consumer (the conformance
    oracle's ``shard:`` checks, the procs runtime's compute fleet, the
    MQO report) needs: shard names sorted, each shard's views sorted.
    """
    shards: dict[str, list[str]] = {}
    for view, merge_name in view_to_merge.items():
        shards.setdefault(merge_name, []).append(view)
    return {name: tuple(sorted(views)) for name, views in sorted(shards.items())}


def shard_view_groups(
    definitions: Sequence[ViewDefinition],
    shards: int,
    replicas: int = 64,
    load_slack: float = 0.25,
) -> list[tuple[str, ...]]:
    """Pack the finest §6.1 partition onto at most ``shards`` merges.

    Returns merged view groups in the same shape
    :func:`~repro.merge.distributed.partition_views` uses (sorted tuples,
    ordered by first view name) so the system builder can assign one
    merge process per returned group.  Shards that receive no view group
    are dropped — a fleet larger than the number of components simply
    runs fewer merges.
    """
    if shards < 1:
        raise MergeError(f"shards must be >= 1, got {shards}")
    components = partition_views(definitions)
    if shards == 1 or len(components) <= 1:
        return (
            components
            if len(components) <= shards
            else [tuple(sorted(v for g in components for v in g))]
        )
    router = ShardRouter(
        [f"shard{i}" for i in range(shards)],
        replicas=replicas,
        load_slack=load_slack,
    )
    costs = {d.name: estimate_plan_cost(d) for d in definitions}
    merged = [
        tuple(sorted(view for group in a.groups for view in group))
        for a in router.assignments(components, costs)
    ]
    return sorted(merged, key=lambda group: group[0])


__all__ = [
    "ShardAssignment",
    "ShardRouter",
    "groups_by_shard",
    "shard_view_groups",
    "stable_hash",
]
