"""Algorithm 2: the Painting Algorithm (PA), §5.

PA coordinates *strongly consistent* view managers, whose action lists may
batch several intertwined updates (``AL^x_{i_{k+n}}`` covers
``U_{i_k} .. U_{i_{k+n}}``).  Two things change relative to SPA:

* receiving an action list colors **every** white entry of its column at
  or below its last update red, and records that update in the entry's
  ``state`` field — the row each covered entry must jump to;
* rows whose entries were batched together must be applied **together**:
  ``ProcessRow`` recursively gathers the closure of rows linked by
  same-column earlier reds (Line 4) and forward ``state`` pointers
  (Line 5) into ``ApplyRows``, and the group is applied in a single
  warehouse transaction — or not at all if any member is not ready.

Implementation note.  The paper's pseudocode writes Lines 6-10 (the apply)
inside ``ProcessRow``, but its Example 5 narration makes the intent clear:
recursive calls (Lines 4/5) only *gather* rows and report readiness
("ProcessRow(2) ... returns true"), and the apply happens once the
*outermost* call has examined all of its columns ("actions in both WT2 and
WT3 are **now** applied").  Applying inside an inner frame would be
incorrect: the inner frame has only checked its own row's columns, so it
could commit a group while the outer row still has an unexamined column
whose earlier red rows must join the group.  We therefore split the
procedure into ``_gather`` (Lines 1-5) and ``_try_row`` (the root wrapper
performing Lines 6-10 on success); Line 9's cascading re-checks are
root-style calls as well, matching the "ApplyRows will be set to empty
before the next time the procedure is called" remark.

PA is *strongly consistent under MVC* (Theorem 5.1) and prompt.  It is not
complete: views may skip intermediate states (Example 4: all three views
jump to state 3 directly).
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import MergeError
from repro.merge.base import MergeAlgorithm, ReadyUnit
from repro.merge.vut import Color, ViewUpdateTable
from repro.viewmgr.actions import ActionList


class PaintingAlgorithm(MergeAlgorithm):
    """PA: MVC-strong merging for strongly consistent view managers."""

    requires_level = "strong"
    guarantees_level = "strong"

    def __init__(self, views: tuple[str, ...], name: str = "pa") -> None:
        super().__init__(views, name)
        self.vut = ViewUpdateTable(self.views)
        self._wt: dict[int, list[ActionList]] = defaultdict(list)
        self._emitted: list[ReadyUnit] = []
        self._apply_rows: set[int] = set()

    # -- event hooks -----------------------------------------------------------
    def _on_rel(self, update_id: int, views: frozenset[str]) -> list[ReadyUnit]:
        # Entries start with state = 0 (Entry's default).
        self.vut.allocate_row(update_id, views)
        if not views:
            # Irrelevant to every view here: the all-black row is inert.
            self.vut.purge(update_id)
        return []

    def _on_action_list(self, action_list: ActionList) -> list[ReadyUnit]:
        view = action_list.view
        last = action_list.last_update
        self._emitted = []
        # Procedure ProcessAction: every white entry of this column at or
        # below the batch's last update is covered by this list.
        whites = self.vut.white_rows_through(last, view)
        if whites != action_list.covered:
            raise MergeError(
                f"{action_list} covers {action_list.covered} but the white "
                f"entries in column {view!r} through row {last} are {whites}; "
                f"a strongly consistent manager must batch consecutive "
                f"relevant updates"
            )
        for row in whites:
            self.vut.set_color(row, view, Color.RED)
            self.vut.set_state(row, view, last)
        self._wt[last].append(action_list)
        self._try_row(last)
        return self._emitted

    # -- ProcessRow split into gather (Lines 1-5) and apply (Lines 6-10) --------
    def _try_row(self, row: int) -> bool:
        """Root-level ProcessRow: gather the closure, then apply it."""
        self._apply_rows = set()
        if not self._gather(row):
            self._apply_rows = set()
            return False
        self._apply_group()
        return True

    def _gather(self, row: int) -> bool:
        # Line 1: already slated for this application group.
        if row in self._apply_rows:
            return True
        if row not in self.vut:
            # Applied and purged previously (its column entries are gray
            # from this group's perspective); nothing more to gather.
            return True
        # Line 2: an action list for this row has not arrived.
        if self.vut.has_color(row, Color.WHITE):
            return False
        # Line 3: tentatively add this row to the application group.
        self._apply_rows.add(row)
        # Line 4: earlier unapplied (red) lists from the same managers must
        # be applied first — pull their rows in, or fail.
        for view in self.vut.views_with_color(row, Color.RED):
            for earlier in self.vut.earlier_red_rows(row, view):
                if not self._gather(earlier):
                    return False
        # Line 5: entries batched forward must be applied together with the
        # batch's last row.
        for view in self.views:
            state = self.vut.state(row, view)
            if state > row and not self._gather(state):
                return False
        return True

    def _apply_group(self) -> None:
        """Lines 6-10: apply every row in ApplyRows as one transaction."""
        group = tuple(sorted(self._apply_rows))
        if not group:
            return
        # Line 6: red -> gray across the group.
        for row in group:
            for view in self.vut.views_with_color(row, Color.RED):
                self.vut.set_color(row, view, Color.GRAY)
        # Line 7: all actions in all rows of the group form one transaction,
        # ordered by row so earlier updates' actions precede later ones.
        lists: list[ActionList] = []
        for row in group:
            lists.extend(sorted(self._wt.pop(row, ()), key=lambda al: al.view))
        if lists:
            self._emitted.append(ReadyUnit(group, tuple(lists)))
        # Line 8: reset ApplyRows.
        self._apply_rows = set()
        # Line 9 candidates: applying this group may unblock later rows.
        followers: set[int] = set()
        for row in group:
            for view in self.vut.views_with_color(row, Color.GRAY):
                follower = self.vut.next_red(row, view)
                if follower:
                    followers.add(follower)
        # Line 10: purge rows that are now fully black/gray.
        for row in group:
            if row in self.vut and self.vut.purgeable(row):
                self.vut.purge(row)
        # Line 9: each cascading attempt starts with a fresh ApplyRows.
        for follower in sorted(followers):
            if follower in self.vut:
                self._try_row(follower)

    # -- inspection ------------------------------------------------------------
    def idle(self) -> bool:
        return len(self.vut) == 0 and not self.pending_action_lists
