"""The merge process: MVC coordination between view managers and warehouse.

This package contains the paper's central contribution:

* :class:`ViewUpdateTable` (VUT) — the two-dimensional table of §4.1 whose
  entries are colored white / red / gray / black (plus the ``state`` field
  added for PA in §5.1).
* :class:`SimplePaintingAlgorithm` (SPA, §4) — merge algorithm for
  *complete* view managers; MVC-complete and prompt.
* :class:`PaintingAlgorithm` (PA, §5) — merge algorithm for *strongly
  consistent* view managers; MVC-strongly-consistent and prompt.
* Pass-through and complete-N merge policies (§6.3), and
  :func:`choose_algorithm` implementing the weakest-level rule for mixed
  view-manager fleets.
* Submission policies (§4.3) controlling warehouse commit order:
  sequential, dependency-sequenced, DBMS-dependency, batching (BWT), and
  the deliberately unsafe eager policy that exhibits the §4.3 hazard.
* :func:`partition_views` (§6.1) — splitting the merge work across several
  merge processes along shared-base-relation boundaries, and
  :class:`ShardRouter` / :func:`shard_view_groups` — consistent-hash,
  cost-balanced placement of those groups on a fixed merge-shard fleet.

The algorithms are plain (simulator-free) classes driven by
``receive_rel`` / ``receive_action_list`` events; :class:`MergeProcess`
wraps one of them as a simulated Figure-1 process.
"""

from repro.merge.vut import Color, Entry, ViewUpdateTable
from repro.merge.base import MergeAlgorithm, ReadyUnit
from repro.merge.spa import SimplePaintingAlgorithm
from repro.merge.pa import PaintingAlgorithm
from repro.merge.passthrough import PassThroughMerge
from repro.merge.complete_n import CompleteNMerge
from repro.merge.selection import choose_algorithm, weakest_level
from repro.merge.submission import (
    BatchingPolicy,
    DbmsDependencyPolicy,
    DependencySequencedPolicy,
    EagerPolicy,
    SequentialPolicy,
    SubmissionPolicy,
)
from repro.merge.process import MergeProcess
from repro.merge.distributed import (
    estimate_plan_cost,
    partition_views,
    view_to_group_map,
)
from repro.merge.sharding import ShardAssignment, ShardRouter, shard_view_groups

__all__ = [
    "Color",
    "Entry",
    "ViewUpdateTable",
    "MergeAlgorithm",
    "ReadyUnit",
    "SimplePaintingAlgorithm",
    "PaintingAlgorithm",
    "PassThroughMerge",
    "CompleteNMerge",
    "choose_algorithm",
    "weakest_level",
    "SubmissionPolicy",
    "EagerPolicy",
    "SequentialPolicy",
    "DependencySequencedPolicy",
    "DbmsDependencyPolicy",
    "BatchingPolicy",
    "MergeProcess",
    "ShardAssignment",
    "ShardRouter",
    "estimate_plan_cost",
    "partition_views",
    "shard_view_groups",
    "view_to_group_map",
]
