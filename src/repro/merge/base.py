"""Common machinery for merge algorithms.

A merge algorithm is a deterministic event consumer: it receives ``REL_i``
sets from the integrator and action lists from view managers, and emits
:class:`ReadyUnit` objects — groups of action lists that must be applied
to the warehouse as one atomic transaction.  It never blocks: unprocessable
input is held internally (the white/red discipline of the VUT).

The base class also implements the two protocol rules every algorithm
shares:

* an action list may arrive before its ``REL`` (merge must hold it — §4);
* action lists from one manager must be processed in the order sent.
"""

from __future__ import annotations

from collections import defaultdict
from dataclasses import dataclass, field

from repro.errors import MergeError
from repro.viewmgr.actions import ActionList


@dataclass(frozen=True, slots=True)
class ReadyUnit:
    """Action lists that must be applied in one warehouse transaction.

    ``rows`` are the VUT rows the unit covers, ascending; ``action_lists``
    are ordered row-by-row so earlier updates' actions precede later ones.
    """

    rows: tuple[int, ...]
    action_lists: tuple[ActionList, ...]
    detail: dict = field(default_factory=dict, compare=False)

    @property
    def views(self) -> frozenset[str]:
        return frozenset(al.view for al in self.action_lists)

    def __str__(self) -> str:
        rows = ",".join(str(r) for r in self.rows)
        return f"ReadyUnit(rows {{{rows}}}, {len(self.action_lists)} ALs)"


class MergeAlgorithm:
    """Base class: REL/AL intake, ordering checks, pending-AL buffering."""

    #: the single-view consistency level this algorithm requires from the
    #: view managers beneath it ("complete", "strong", or "convergent")
    requires_level = "complete"
    #: the MVC level the algorithm guarantees at the warehouse
    guarantees_level = "complete"

    def __init__(self, views: tuple[str, ...], name: str = "merge") -> None:
        if not views:
            raise MergeError("a merge algorithm needs at least one view")
        self.views = tuple(views)
        self.name = name
        self._last_rel_id = 0
        self._last_al_id: dict[str, int] = defaultdict(int)
        # ALs whose REL has not arrived yet, keyed by last_update.
        self._pending: dict[int, list[ActionList]] = defaultdict(list)
        self.rels_received = 0
        self.als_received = 0
        self.units_emitted = 0

    # -- public event API ---------------------------------------------------
    def receive_rel(self, update_id: int, views: frozenset[str]) -> list[ReadyUnit]:
        """Process ``REL_update_id``; returns any units that became ready."""
        if update_id <= self._last_rel_id:
            raise MergeError(
                f"REL{update_id} arrived after REL{self._last_rel_id}; the "
                f"integrator must send RELs in increasing order"
            )
        unknown = views - set(self.views)
        if unknown:
            raise MergeError(f"REL{update_id} names unknown views {sorted(unknown)}")
        self._last_rel_id = update_id
        self.rels_received += 1
        ready = self._on_rel(update_id, views)
        ready.extend(self._release_pending())
        self.units_emitted += len(ready)
        return ready

    def receive_action_list(self, action_list: ActionList) -> list[ReadyUnit]:
        """Process one ``AL^x_j``; returns any units that became ready."""
        if action_list.view not in self.views:
            raise MergeError(
                f"{action_list} targets view {action_list.view!r}, which is "
                f"not handled by merge {self.name!r} (views: {self.views})"
            )
        manager = action_list.manager
        if action_list.covered[0] <= self._last_al_id[manager]:
            raise MergeError(
                f"{action_list} overlaps an earlier list from {manager!r} "
                f"(last covered {self._last_al_id[manager]})"
            )
        self.als_received += 1
        if action_list.last_update > self._last_rel_id:
            # The REL for (part of) this batch has not arrived; hold the
            # list — RELs arrive in order, so waiting for last_update
            # suffices for every covered id.
            self._pending[action_list.last_update].append(action_list)
            return []
        self._last_al_id[manager] = action_list.last_update
        ready = self._on_action_list(action_list)
        self.units_emitted += len(ready)
        return ready

    def _release_pending(self) -> list[ReadyUnit]:
        ready: list[ReadyUnit] = []
        for last_update in sorted(self._pending):
            if last_update > self._last_rel_id:
                break
            for action_list in self._pending.pop(last_update):
                self._last_al_id[action_list.manager] = action_list.last_update
                ready.extend(self._on_action_list(action_list))
        return ready

    # -- inspection ------------------------------------------------------------
    @property
    def pending_action_lists(self) -> int:
        return sum(len(lists) for lists in self._pending.values())

    def idle(self) -> bool:
        """True when nothing is buffered (all received work was emitted)."""
        raise NotImplementedError

    # -- subclass hooks ----------------------------------------------------------
    def _on_rel(self, update_id: int, views: frozenset[str]) -> list[ReadyUnit]:
        raise NotImplementedError

    def _on_action_list(self, action_list: ActionList) -> list[ReadyUnit]:
        raise NotImplementedError
