"""Algorithm 1: the Simple Painting Algorithm (SPA), §4.

SPA coordinates *complete* view managers: every relevant update ``U_i``
produces exactly one action list per relevant view, so the merge process
waits for one AL per white VUT entry, applies each row as a single
warehouse transaction as soon as it (and every dependent earlier row) is
ready, and purges applied rows.

SPA is *complete under MVC* (Theorem 4.1) and *prompt*: it never delays an
action list that could safely be applied.

``strict`` (default) rejects action lists covering more than one update —
those come from strongly consistent managers and break SPA, as Example 4
shows.  ``strict=False`` reproduces the paper's Example-4 misbehaviour by
treating a batched list the way a naive SPA would (coloring every covered
entry red without the state bookkeeping PA adds); it exists so tests and
benchmarks can demonstrate *why* PA is necessary.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import MergeError
from repro.merge.base import MergeAlgorithm, ReadyUnit
from repro.merge.vut import Color, ViewUpdateTable
from repro.viewmgr.actions import ActionList


class SimplePaintingAlgorithm(MergeAlgorithm):
    """SPA: MVC-complete merging for complete view managers."""

    requires_level = "complete"
    guarantees_level = "complete"

    def __init__(
        self,
        views: tuple[str, ...],
        name: str = "spa",
        strict: bool = True,
    ) -> None:
        super().__init__(views, name)
        self.vut = ViewUpdateTable(self.views)
        self.strict = strict
        self._wt: dict[int, list[ActionList]] = defaultdict(list)
        # Must be a real list from construction: the crash-recovery path
        # calls _process_row directly, without a receive_* event resetting it.
        self._emitted: list[ReadyUnit] = []

    # -- event hooks ---------------------------------------------------------
    def _on_rel(self, update_id: int, views: frozenset[str]) -> list[ReadyUnit]:
        self.vut.allocate_row(update_id, views)
        self._emitted = []
        # A row relevant to no view in this merge's scope is trivially
        # appliable (and in the single-merge case represents an update
        # relevant to no view at all): emit nothing, purge immediately.
        self._process_row(update_id)
        return self._emitted

    def _on_action_list(self, action_list: ActionList) -> list[ReadyUnit]:
        if self.strict and len(action_list.covered) != 1:
            raise MergeError(
                f"SPA requires complete view managers (one update per action "
                f"list) but received {action_list}; use the Painting "
                f"Algorithm for strongly consistent managers (Example 4)"
            )
        self._emitted = []
        for row in action_list.covered:
            if self.vut.color(row, action_list.view) is not Color.WHITE:
                raise MergeError(
                    f"{action_list}: VUT[{row}, {action_list.view}] is "
                    f"{self.vut.color(row, action_list.view)}, expected white"
                )
            self.vut.set_color(row, action_list.view, Color.RED)
        self._wt[action_list.last_update].append(action_list)
        self._process_row(action_list.covered[0])
        return self._emitted

    # -- Procedure ProcessRow(i), Algorithm 1 ------------------------------------
    def _process_row(self, row: int) -> None:
        if row not in self.vut:
            return  # already applied and purged by an earlier recursion
        # Line 1: some action in this row has not yet arrived.
        if self.vut.has_color(row, Color.WHITE):
            return
        # Line 2: lists from the same view manager must be applied in the
        # order generated — an earlier red entry in any red column blocks.
        for view in self.vut.views_with_color(row, Color.RED):
            if self.vut.earlier_red_rows(row, view):
                return
        # Line 3: mark this row's lists as being applied.
        reds = self.vut.views_with_color(row, Color.RED)
        for view in reds:
            self.vut.set_color(row, view, Color.GRAY)
        # Line 4: apply all actions in WT_i as a single warehouse transaction.
        lists = tuple(sorted(self._wt.pop(row, ()), key=lambda al: al.view))
        if lists:
            self._emitted.append(ReadyUnit((row,), lists))
        # Line 5: applying this row may unblock the next red in each column.
        followers = sorted(
            {
                self.vut.next_red(row, view)
                for view in reds
                if self.vut.next_red(row, view)
            }
        )
        # Line 6: purge row i (before recursing keeps the table minimal and
        # is safe — gray entries never gate a later row).
        self.vut.purge(row)
        for follower in followers:
            self._process_row(follower)

    # -- inspection ---------------------------------------------------------------
    def idle(self) -> bool:
        return len(self.vut) == 0 and not self.pending_action_lists
