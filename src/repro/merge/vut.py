"""The ViewUpdateTable (VUT) of §4.1 / §5.1.

``VUT[i, x]`` corresponds to update ``U_i`` and view ``V_x``.  Each entry
carries a color:

* **white** — waiting for the corresponding action list;
* **red** — the action list has been received but is being held;
* **gray** — the action list has just been applied;
* **black** — the entry need not be examined (update irrelevant to view).

For the Painting Algorithm each entry additionally carries a ``state``
field: the row number of the last update batched into the action list
that covers this entry (0 when not yet known).

Rows are keyed by (globally numbered) update id and may be sparse — a
distributed merge process only ever sees the rows relevant to its view
group (§6.1).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterator, Sequence

from repro.errors import MergeError


class Color(enum.Enum):
    WHITE = "w"
    RED = "r"
    GRAY = "g"
    BLACK = "b"

    def __str__(self) -> str:
        return self.value


@dataclass(slots=True)
class Entry:
    """One VUT cell: a color plus PA's next-state pointer."""

    color: Color = Color.BLACK
    state: int = 0

    def __str__(self) -> str:
        return f"({self.color},{self.state})"


class ViewUpdateTable:
    """The merge process's bookkeeping table."""

    def __init__(self, views: Sequence[str]) -> None:
        if not views:
            raise MergeError("a VUT needs at least one view column")
        if len(set(views)) != len(views):
            raise MergeError(f"duplicate view columns: {views}")
        self._views = tuple(views)
        self._rows: dict[int, dict[str, Entry]] = {}

    # -- structure -----------------------------------------------------------
    @property
    def views(self) -> tuple[str, ...]:
        return self._views

    @property
    def row_ids(self) -> tuple[int, ...]:
        return tuple(sorted(self._rows))

    def __len__(self) -> int:
        return len(self._rows)

    def __contains__(self, row: object) -> bool:
        return row in self._rows

    def allocate_row(self, row: int, relevant_views: frozenset[str]) -> None:
        """§4.2: new row ``row`` — white for views in ``REL``, black otherwise."""
        if row in self._rows:
            raise MergeError(f"row {row} already allocated")
        unknown = relevant_views - set(self._views)
        if unknown:
            raise MergeError(f"REL names unknown views {sorted(unknown)}")
        self._rows[row] = {
            view: Entry(Color.WHITE if view in relevant_views else Color.BLACK)
            for view in self._views
        }

    def _entry(self, row: int, view: str) -> Entry:
        try:
            return self._rows[row][view]
        except KeyError:
            raise MergeError(f"no VUT entry for row {row}, view {view!r}") from None

    # -- cell access -----------------------------------------------------------
    def color(self, row: int, view: str) -> Color:
        return self._entry(row, view).color

    def set_color(self, row: int, view: str, color: Color) -> None:
        self._entry(row, view).color = color

    def state(self, row: int, view: str) -> int:
        return self._entry(row, view).state

    def set_state(self, row: int, view: str, state: int) -> None:
        self._entry(row, view).state = state

    # -- queries used by the painting algorithms ---------------------------------
    def views_with_color(self, row: int, color: Color) -> tuple[str, ...]:
        if row not in self._rows:
            raise MergeError(f"no VUT row {row}")
        return tuple(v for v in self._views if self._rows[row][v].color is color)

    def has_color(self, row: int, color: Color) -> bool:
        return any(e.color is color for e in self._rows[row].values())

    def rows_before(self, row: int) -> Iterator[int]:
        """Existing row ids strictly smaller than ``row``, ascending."""
        return iter(sorted(r for r in self._rows if r < row))

    def rows_after(self, row: int) -> Iterator[int]:
        return iter(sorted(r for r in self._rows if r > row))

    def next_red(self, row: int, view: str) -> int:
        """``nextRed(i, x)``: the next red entry below ``VUT[i, x]``, or 0."""
        for later in self.rows_after(row):
            if self._rows[later][view].color is Color.RED:
                return later
        return 0

    def earlier_red_rows(self, row: int, view: str) -> tuple[int, ...]:
        """Rows ``i' < row`` whose entry in column ``view`` is red."""
        return tuple(
            r for r in self.rows_before(row)
            if self._rows[r][view].color is Color.RED
        )

    def white_rows_through(self, row: int, view: str) -> tuple[int, ...]:
        """Rows ``i' <= row`` whose entry in column ``view`` is white (PA)."""
        return tuple(
            r
            for r in sorted(self._rows)
            if r <= row and self._rows[r][view].color is Color.WHITE
        )

    def purgeable(self, row: int) -> bool:
        """A row may be purged when every entry is black or gray."""
        return all(
            e.color in (Color.BLACK, Color.GRAY) for e in self._rows[row].values()
        )

    def purge(self, row: int) -> None:
        if row not in self._rows:
            raise MergeError(f"cannot purge missing row {row}")
        if not self.purgeable(row):
            raise MergeError(f"row {row} still has white or red entries")
        del self._rows[row]

    def purge_completed(self) -> tuple[int, ...]:
        """Purge every purgeable row; returns the purged ids."""
        purged = tuple(r for r in sorted(self._rows) if self.purgeable(r))
        for row in purged:
            del self._rows[row]
        return purged

    # -- display (used by the paper-trace benchmarks) -----------------------------
    def snapshot(self) -> dict[int, dict[str, str]]:
        """A printable copy: row -> view -> "color" or "(color,state)"."""
        return {
            row: {view: str(entry) for view, entry in columns.items()}
            for row, columns in sorted(self._rows.items())
        }

    def render(self, show_state: bool = False) -> str:
        """Render the table like the paper's figures."""
        header = "      " + " ".join(f"{v:>8}" for v in self._views)
        lines = [header]
        for row in sorted(self._rows):
            cells = []
            for view in self._views:
                entry = self._rows[row][view]
                text = (
                    f"({entry.color},{entry.state})" if show_state else str(entry.color)
                )
                cells.append(f"{text:>8}")
            lines.append(f"U{row:<5}" + " ".join(cells))
        return "\n".join(lines)
