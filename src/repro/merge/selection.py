"""Choosing a merge algorithm for a fleet of view managers (§6.3).

"When there is a combination of different types of view managers in the
system, it is always possible to use the merge algorithm corresponding to
the view manager guaranteeing the weakest level of consistency.  For
example, if there are both complete and strongly consistent view managers
in a system, a MP can always use PA to guarantee strong consistency."
"""

from __future__ import annotations

from typing import Iterable

from repro.errors import MergeError
from repro.merge.base import MergeAlgorithm
from repro.merge.pa import PaintingAlgorithm
from repro.merge.passthrough import PassThroughMerge
from repro.merge.spa import SimplePaintingAlgorithm

#: consistency levels, strongest first; "broken" deliberately maps to the
#: weakest coordination (pass-through) so the anomaly demos can run.
_LEVEL_ORDER = ("complete", "complete-n", "strong", "convergent", "broken")


def weakest_level(levels: Iterable[str]) -> str:
    """The weakest single-view consistency level present in ``levels``."""
    seen = list(levels)
    if not seen:
        raise MergeError("no view-manager levels given")
    for level in seen:
        if level not in _LEVEL_ORDER:
            raise MergeError(
                f"unknown consistency level {level!r}; "
                f"expected one of {_LEVEL_ORDER}"
            )
    return max(seen, key=_LEVEL_ORDER.index)


def choose_algorithm(
    views: tuple[str, ...],
    levels: Iterable[str],
    name: str = "merge",
) -> MergeAlgorithm:
    """Build the weakest-level-appropriate merge algorithm for ``views``.

    * all managers complete            -> SPA  (MVC-complete)
    * complete-N present               -> PA   (treats blocks as batches)
    * any strongly consistent manager  -> PA   (MVC-strong)
    * any convergent (or broken) one   -> pass-through (convergence only)
    """
    level = weakest_level(levels)
    if level == "complete":
        return SimplePaintingAlgorithm(views, name=name)
    if level in ("strong", "complete-n"):
        return PaintingAlgorithm(views, name=name)
    return PassThroughMerge(views, name=name)
