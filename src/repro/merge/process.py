"""The merge process of Figure 1: a simulated wrapper around an algorithm.

``MergeProcess = MergeAlgorithm + SubmissionPolicy``.  It consumes
``RelMessage`` and ``ActionListMessage`` events, turns the algorithm's
ready units into numbered warehouse transactions, hands them to the
submission policy, and feeds warehouse commit notifications back to the
policy.  Its ``service_time`` models per-message coordination cost — the
knob the §7 bottleneck study turns.

With ``checkpointing=True`` the process additionally snapshots its entire
durable state — the algorithm (VUT, held action lists), the submission
policy, the transaction-id counter, and the unacknowledged buffers of its
outgoing :class:`~repro.sim.network.ReliableChannel` s — after *every*
handled message, before the reliable channel acknowledges that message.
A crash then loses only unacknowledged input, which the senders
retransmit; :meth:`on_restart` reinstates the checkpoint, so the restarted
merge resumes exactly where its last acknowledged message left it and MVC
is preserved end-to-end (see ``docs/faults.md``).
"""

from __future__ import annotations

import copy
from dataclasses import dataclass, field
from typing import TYPE_CHECKING

from repro.errors import MergeError
from repro.merge.base import MergeAlgorithm, ReadyUnit
from repro.merge.submission import SequentialPolicy, SubmissionPolicy
from repro.messages import (
    ActionListMessage,
    CommitNotification,
    RelMessage,
    WarehouseTransactionMsg,
)
from repro.sim.network import ReliableChannel
from repro.sim.process import Process
from repro.warehouse.txn import WarehouseTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


@dataclass(frozen=True, slots=True)
class MergeCheckpoint:
    """A restorable snapshot of everything a merge process must not lose."""

    algorithm: MergeAlgorithm
    policy: SubmissionPolicy
    next_txn_id: int
    transactions_formed: int
    channel_states: dict[str, tuple] = field(default_factory=dict)


class MergeProcess(Process):
    """Runs a merge algorithm against live message traffic."""

    def __init__(
        self,
        sim: "Simulator",
        algorithm: MergeAlgorithm,
        name: str | None = None,
        warehouse_name: str = "warehouse",
        policy: SubmissionPolicy | None = None,
        per_message_cost: float = 0.0,
        txn_id_start: int = 1,
        txn_id_step: int = 1,
        checkpointing: bool = False,
        cache=None,
    ) -> None:
        super().__init__(sim, name or algorithm.name)
        self.algorithm = algorithm
        self.warehouse_name = warehouse_name
        self.policy = policy if policy is not None else SequentialPolicy()
        self.per_message_cost = per_message_cost
        # Distributed merges interleave disjoint id streams (start/step) so
        # transaction ids stay globally unique without coordination.
        self._next_txn_id = txn_id_start
        self._txn_id_step = txn_id_step
        self.policy.bind(self._submit_to_warehouse, self._allocate_txn_id)
        self.transactions_formed = 0
        # VUT occupancy over time: a timeline gauge so the registry keeps
        # the full (time, size) series, not just the peak.
        self._g_vut = sim.metrics.gauge("merge_vut_size", timeline=True,
                                        merge=self.name)
        self.checkpointing = checkpointing
        # Optional repro.cache.artifacts.MergeCacheBinding: checkpoints
        # additionally publish to the content-addressed store, and
        # restarts prefer the store's artifact over the in-memory copy.
        self._cache = cache
        self._checkpoint: MergeCheckpoint | None = None
        self.checkpoints_taken = 0
        self.restores = 0
        self.cache_restores = 0
        self.cache_fallbacks = 0

    # -- plumbing -----------------------------------------------------------
    def _allocate_txn_id(self) -> int:
        txn_id = self._next_txn_id
        self._next_txn_id += self._txn_id_step
        return txn_id

    def _submit_to_warehouse(self, message: WarehouseTransactionMsg) -> None:
        self.trace(
            "merge_submit",
            txn=message.txn.txn_id,
            rows=message.txn.covered_rows,
            after=message.sequenced_after,
        )
        self.send(self.warehouse_name, message)

    # -- message handling -------------------------------------------------------
    def service_time(self, message: object) -> float:
        return self.per_message_cost

    def handle(self, message: object, sender: Process) -> None:
        if isinstance(message, RelMessage):
            ready = self.algorithm.receive_rel(message.update_id, message.views)
        elif isinstance(message, ActionListMessage):
            ready = self.algorithm.receive_action_list(message.action_list)
        elif isinstance(message, CommitNotification):
            self.policy.on_commit(message.txn_id)
            return
        else:
            raise MergeError(
                f"{self.name} cannot handle {type(message).__name__}"
            )
        for unit in ready:
            self._offer(unit)
        vut = getattr(self.algorithm, "vut", None)
        if vut is not None:
            self._g_vut.set(len(vut), at=self.sim.now)
            self.trace("vut_size", size=len(vut))

    def _offer(self, unit: ReadyUnit) -> None:
        txn = WarehouseTransaction(
            txn_id=self._allocate_txn_id(),
            merge_name=self.name,
            action_lists=unit.action_lists,
            covered_rows=unit.rows,
        )
        self.transactions_formed += 1
        self.trace("merge_ready", txn=txn.txn_id, rows=unit.rows)
        self.policy.offer(txn)

    def flush(self) -> None:
        """Release anything the algorithm or policy is holding voluntarily."""
        flush_units = getattr(self.algorithm, "flush", None)
        if callable(flush_units):
            for unit in flush_units():
                self._offer(unit)
        self.policy.flush()

    # -- checkpoint / restore (crash recovery) ----------------------------------
    def on_handled(self, message: object, sender: Process) -> None:
        if self.checkpointing:
            self.take_checkpoint()

    def take_checkpoint(self) -> MergeCheckpoint:
        """Snapshot durable state; taken after each handled message.

        The policy's merge-process callbacks are detached for the copy so
        the checkpoint does not drag the process (and the simulator) along.
        Channel sender states are captured *after* the message's sends, so
        a restore retransmits exactly the output the crash destroyed.
        """
        self.policy.unbind()
        try:
            algorithm = copy.deepcopy(self.algorithm)
            policy = copy.deepcopy(self.policy)
        finally:
            self.policy.bind(self._submit_to_warehouse, self._allocate_txn_id)
        channel_states = {
            name: channel.sender_state()
            for name, channel in self._outgoing.items()
            if isinstance(channel, ReliableChannel)
        }
        self._checkpoint = MergeCheckpoint(
            algorithm=algorithm,
            policy=policy,
            next_txn_id=self._next_txn_id,
            transactions_formed=self.transactions_formed,
            channel_states=channel_states,
        )
        self.checkpoints_taken += 1
        self.trace("checkpoint", next_txn=self._next_txn_id)
        if self._cache is not None:
            self._cache.publish(self._checkpoint)
        return self._checkpoint

    def on_restart(self) -> None:
        """Reinstate the newest checkpoint (or stay pristine if none exists).

        With a cache binding the artifact store is the source of truth:
        its ref points at the newest durably published checkpoint, and
        the in-memory copy is only the fallback for a miss or a failed
        integrity check.
        """
        checkpoint = None
        if self._cache is not None:
            checkpoint = self._cache.try_restore()
            if checkpoint is not None:
                self.cache_restores += 1
                self.sim.metrics.counter(
                    "cache_restores", process=self.name
                ).inc()
            elif self._checkpoint is not None:
                self.cache_fallbacks += 1
                self.sim.metrics.counter(
                    "cache_fallbacks", process=self.name
                ).inc()
        if checkpoint is None:
            checkpoint = self._checkpoint
        if checkpoint is None:
            return
        # Copy out of the checkpoint so it remains restorable a second time.
        self.algorithm = copy.deepcopy(checkpoint.algorithm)
        policy = copy.deepcopy(checkpoint.policy)
        policy.bind(self._submit_to_warehouse, self._allocate_txn_id)
        self.policy = policy
        self._next_txn_id = checkpoint.next_txn_id
        self.transactions_formed = checkpoint.transactions_formed
        for name, state in checkpoint.channel_states.items():
            channel = self._outgoing.get(name)
            if isinstance(channel, ReliableChannel):
                channel.restore_sender_state(state)
        self.restores += 1
        self.trace("restore", next_txn=self._next_txn_id)

    # -- inspection ------------------------------------------------------------
    def idle(self) -> bool:
        return (
            self.queue_length == 0
            and self.algorithm.idle()
            and self.policy.pending == 0
        )
