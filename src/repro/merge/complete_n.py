"""The complete-N merge policy (§6.3).

"The MP can use an algorithm that is similar to SPA, but instead it
collects all ALs corresponding to every N updates, then forwards them to
the warehouse.  The warehouse view maintenance is complete-N as well."

Global update ids partition into blocks ``[kN+1, (k+1)N]``.  The merge
process releases one warehouse transaction per block, containing every
action list of the block in row order, once

* the REL of every update in the block has arrived, and
* every white entry of the block has been painted red, and
* every earlier block has been released (blocks advance the warehouse
  state in order).

View managers feeding this policy are
:class:`repro.viewmgr.complete_n.CompleteNViewManager` instances with the
same N, whose action lists cover exactly their relevant updates within
one block.
"""

from __future__ import annotations

from collections import defaultdict

from repro.errors import MergeError
from repro.merge.base import MergeAlgorithm, ReadyUnit
from repro.merge.vut import Color, ViewUpdateTable
from repro.viewmgr.actions import ActionList


class CompleteNMerge(MergeAlgorithm):
    """Release warehouse transactions one N-update block at a time."""

    requires_level = "complete-n"
    guarantees_level = "complete-n"

    def __init__(self, views: tuple[str, ...], n: int, name: str = "merge-n") -> None:
        super().__init__(views, name)
        if n < 1:
            raise MergeError(f"block size N must be >= 1, got {n}")
        self.n = n
        self.vut = ViewUpdateTable(self.views)
        self._wt: dict[int, list[ActionList]] = defaultdict(list)
        self._next_block = 0  # index of the next block to release
        # Rows with at least one relevant view *in this merge's scope*.
        # Only these are covered by released transactions — under §6.1
        # distribution every merge receives every REL (complete-N needs
        # closed blocks), but a row must be covered by exactly one merge.
        self._relevant_rows: set[int] = set()

    def _block_of(self, update_id: int) -> int:
        return (update_id - 1) // self.n

    def _on_rel(self, update_id: int, views: frozenset[str]) -> list[ReadyUnit]:
        self.vut.allocate_row(update_id, views)
        if views:
            self._relevant_rows.add(update_id)
        return self._release_blocks()

    def _on_action_list(self, action_list: ActionList) -> list[ReadyUnit]:
        first_block = self._block_of(action_list.covered[0])
        last_block = self._block_of(action_list.last_update)
        if first_block != last_block:
            raise MergeError(
                f"{action_list} spans blocks {first_block} and {last_block}; "
                f"complete-{self.n} managers must flush at block boundaries"
            )
        for row in action_list.covered:
            if self.vut.color(row, action_list.view) is not Color.WHITE:
                raise MergeError(
                    f"{action_list}: entry [{row}, {action_list.view}] is "
                    f"{self.vut.color(row, action_list.view)}, expected white"
                )
            self.vut.set_color(row, action_list.view, Color.RED)
        self._wt[action_list.last_update].append(action_list)
        return self._release_blocks()

    def _release_blocks(self) -> list[ReadyUnit]:
        ready: list[ReadyUnit] = []
        while self._block_ready(self._next_block):
            unit = self._release(self._next_block)
            if unit is not None:
                ready.append(unit)
            self._next_block += 1
        return ready

    def flush(self) -> list[ReadyUnit]:
        """Release the trailing partial block once the update stream ends.

        Only legal when every expected action list has arrived; raises
        :class:`MergeError` if some entry is still white.
        """
        remaining = self.vut.row_ids
        if not remaining:
            return []
        rows: list[int] = []
        lists: list[ActionList] = []
        for row in remaining:
            if self.vut.has_color(row, Color.WHITE):
                raise MergeError(
                    f"cannot flush: row {row} still waits for action lists"
                )
            if row in self._relevant_rows:
                rows.append(row)
                self._relevant_rows.discard(row)
            for view in self.vut.views_with_color(row, Color.RED):
                self.vut.set_color(row, view, Color.GRAY)
            lists.extend(sorted(self._wt.pop(row, ()), key=lambda al: al.view))
            self.vut.purge(row)
        self._next_block = self._block_of(remaining[-1]) + 1
        if not rows:
            return []
        unit = ReadyUnit(tuple(rows), tuple(lists))
        self.units_emitted += 1
        return [unit]

    def _block_ready(self, block: int) -> bool:
        start, end = block * self.n + 1, (block + 1) * self.n
        # Every REL of the block must have arrived...
        if self._last_rel_id < end:
            return False
        # ...and every relevant entry must have its action list.
        for row in range(start, end + 1):
            if row in self.vut and self.vut.has_color(row, Color.WHITE):
                return False
        return True

    def _release(self, block: int) -> ReadyUnit | None:
        start, end = block * self.n + 1, (block + 1) * self.n
        rows: list[int] = []
        lists: list[ActionList] = []
        for row in range(start, end + 1):
            if row not in self.vut:
                continue
            if row in self._relevant_rows:
                rows.append(row)
                self._relevant_rows.discard(row)
            for view in self.vut.views_with_color(row, Color.RED):
                self.vut.set_color(row, view, Color.GRAY)
            lists.extend(sorted(self._wt.pop(row, ()), key=lambda al: al.view))
            self.vut.purge(row)
        if not rows:
            return None  # the whole block was irrelevant to this merge
        return ReadyUnit(tuple(rows), tuple(lists))

    def idle(self) -> bool:
        return len(self.vut) == 0 and not self.pending_action_lists
