"""Multiple view consistency checkers (§2.3).

"The definitions for multiple view consistency (MVC) are very similar to
that for single view consistency.  All we need to do is replace '=' by '≈'
in our previous definitions" — i.e. compare the *vector* of all view
contents at once instead of one view at a time.

These functions take the warehouse history (a sequence of
:class:`~repro.warehouse.store.WarehouseState`) and the source state
sequence, build the two vector-valued sequences, and delegate to the
single-sequence checkers.
"""

from __future__ import annotations

from typing import Sequence

from repro.consistency.checker import (
    ConsistencyReport,
    check_complete,
    check_convergent,
    check_strong,
    strongest_level,
)
from repro.consistency.states import source_view_values
from repro.relational.database import Database
from repro.relational.expressions import ViewDefinition
from repro.warehouse.store import WarehouseState


def _warehouse_vectors(
    history: Sequence[WarehouseState],
    definitions: Sequence[ViewDefinition],
) -> list[tuple]:
    names = tuple(d.name for d in definitions)
    return [tuple(state.view(name) for name in names) for state in history]


def _source_vectors(
    source_states: Sequence[Database],
    definitions: Sequence[ViewDefinition],
) -> list[tuple]:
    names = tuple(d.name for d in definitions)
    values = source_view_values(source_states, definitions)
    return [tuple(per_state[name] for name in names) for per_state in values]


def check_mvc_convergent(
    history: Sequence[WarehouseState],
    source_states: Sequence[Database],
    definitions: Sequence[ViewDefinition],
) -> ConsistencyReport:
    """All views eventually equal their final source evaluation."""
    return check_convergent(
        _warehouse_vectors(history, definitions),
        _source_vectors(source_states, definitions),
    )


def check_mvc_strong(
    history: Sequence[WarehouseState],
    source_states: Sequence[Database],
    definitions: Sequence[ViewDefinition],
) -> ConsistencyReport:
    """Every warehouse state is mutually consistent with one source state,
    in order, reaching the final state (Theorem 5.1's guarantee for PA)."""
    return check_strong(
        _warehouse_vectors(history, definitions),
        _source_vectors(source_states, definitions),
    )


def check_mvc_complete(
    history: Sequence[WarehouseState],
    source_states: Sequence[Database],
    definitions: Sequence[ViewDefinition],
) -> ConsistencyReport:
    """Strong, plus every source state reflected (Theorem 4.1, SPA)."""
    return check_complete(
        _warehouse_vectors(history, definitions),
        _source_vectors(source_states, definitions),
    )


def classify_mvc(
    history: Sequence[WarehouseState],
    source_states: Sequence[Database],
    definitions: Sequence[ViewDefinition],
) -> str:
    """The strongest MVC level a run achieved."""
    return strongest_level(
        _warehouse_vectors(history, definitions),
        _source_vectors(source_states, definitions),
    )
