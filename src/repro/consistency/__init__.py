"""Executable consistency definitions (paper §2).

The paper defines consistency over two sequences:

* the **consistent source state sequence** ``ss_0 .. ss_f`` — base-data
  states after each committed transaction of the serial schedule;
* the **warehouse state sequence** ``ws_0 .. ws_q`` — view contents after
  each warehouse transaction.

This package turns every definition into a checker that takes those two
sequences and says whether (and how) they correspond:

* single-view **convergence** — the final view equals ``V(ss_f)``;
* single-view **strong consistency** — an order-preserving mapping from
  warehouse states onto source states exists and ends at ``ss_f``;
* single-view **completeness** — strong, plus every source state is
  reflected (the view walks through *all* of ``V(ss_0) .. V(ss_f)``);
* the **MVC** variants of each — identical definitions with the per-view
  equality ``=`` replaced by the all-views-at-once equality ``≈`` (§2.3).

The checkers are the oracles for the whole test suite: SPA runs must be
MVC-complete, PA runs MVC-strongly-consistent, pass-through runs
MVC-convergent — for *any* message interleaving.
"""

from repro.consistency.states import replay_source_states, source_view_values
from repro.consistency.checker import (
    ConsistencyReport,
    check_complete,
    check_convergent,
    check_strong,
)
from repro.consistency.mvc import (
    check_mvc_complete,
    check_mvc_convergent,
    check_mvc_strong,
    classify_mvc,
)
from repro.consistency.ordered import (
    check_mvc_ordered,
    classify_mvc_ordered,
    reconstruct_schedule,
)

__all__ = [
    "replay_source_states",
    "source_view_values",
    "ConsistencyReport",
    "check_convergent",
    "check_strong",
    "check_complete",
    "check_mvc_convergent",
    "check_mvc_strong",
    "check_mvc_complete",
    "classify_mvc",
    "check_mvc_ordered",
    "classify_mvc_ordered",
    "reconstruct_schedule",
]
