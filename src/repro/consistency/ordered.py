"""Order-aware MVC checkers.

The painting algorithms may apply independent updates out of numbering
order ("some actions corresponding to later updates may be applied before
actions for earlier ones, provided that those updates do not affect the
same views" — §4.1).  The §2 definitions cover this: consistency is judged
against *a* consistent source state sequence, i.e. the state sequence of
**any** serial schedule equivalent to the real one.

These checkers therefore

1. reconstruct the application schedule ``R`` from the warehouse history
   (the concatenation of each transaction's covered update ids);
2. verify ``R`` is conflict-equivalent to the commit schedule ``S`` —
   sufficient condition: updates touching a common base relation appear in
   their original numbering order (same-relation updates never commute
   conservatively; cross-relation ones always do);
3. replay ``R`` over the initial base state and require each warehouse
   state vector to equal the evaluated views at its cumulative prefix;
4. require the final warehouse state to equal the evaluation at the full
   schedule ``S`` — this also catches an unsound relevance filter, since
   updates missing from ``R`` (never routed to any view) must be
   value-invisible for the final states to agree.

Completeness additionally requires every applied transaction to advance
the warehouse by at most one update *relevant to the checked views* (no
batching of visible changes, no skipped states).  Relevance matters when
checking a **subset** of the views (the conformance engine checks view
pairs): a transaction from another merge group may legally batch several
updates, but since those touch none of the checked views' base relations
they are value-invisible here and do not break the checked views'
walk through every source state.
"""

from __future__ import annotations

from typing import Mapping, Sequence

from repro.consistency.checker import ConsistencyReport
from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.expressions import ViewDefinition
from repro.sources.transactions import SourceTransaction
from repro.warehouse.store import WarehouseState


def reconstruct_schedule(history: Sequence[WarehouseState]) -> list[int]:
    """``R``: update ids in warehouse application order."""
    schedule: list[int] = []
    for state in history:
        schedule.extend(state.covered_rows)
    return schedule


def _conflict_order_ok(
    schedule: Sequence[int],
    transactions: Mapping[int, SourceTransaction],
) -> str | None:
    """Check same-relation updates keep numbering order; None if ok."""
    last_seen: dict[str, int] = {}
    for update_id in schedule:
        for relation in transactions[update_id].relations:
            previous = last_seen.get(relation)
            if previous is not None and previous > update_id:
                return (
                    f"updates U{previous} and U{update_id} both touch "
                    f"{relation!r} but were applied out of order"
                )
            last_seen[relation] = update_id
    return None


def _evaluate_views(
    state: Database, definitions: Sequence[ViewDefinition]
) -> tuple:
    return tuple(evaluate(d.expression, state) for d in definitions)


def _warehouse_vector(
    state: WarehouseState, definitions: Sequence[ViewDefinition]
) -> tuple:
    return tuple(state.view(d.name) for d in definitions)


def check_mvc_ordered(
    history: Sequence[WarehouseState],
    initial: Database,
    numbered: Sequence[tuple[int, SourceTransaction, float]],
    definitions: Sequence[ViewDefinition],
    level: str = "strong",
) -> ConsistencyReport:
    """Verify MVC at ``level`` ("strong" or "complete") against schedule R."""
    transactions = {update_id: txn for update_id, txn, _time in numbered}
    schedule = reconstruct_schedule(history)
    label = f"mvc-{level}"
    checked_relations = frozenset().union(
        *(frozenset(d.base_relations()) for d in definitions)
    )

    unknown = [u for u in schedule if u not in transactions]
    if unknown:
        return ConsistencyReport(
            False, label, f"warehouse applied unknown updates {unknown}"
        )
    # Transactions from other merge groups (§6.1 sharding) may cover
    # updates touching none of the checked views' base relations — e.g. a
    # convergent shard splitting a modify across two warehouse
    # transactions.  Those updates are value-invisible to the checked
    # views, so they are excluded from the order checks and the replay
    # (the completeness walk below already filters the same way).
    visible = [
        u
        for u in schedule
        if not checked_relations.isdisjoint(transactions[u].relations)
    ]
    if len(set(visible)) != len(visible):
        return ConsistencyReport(
            False, label, f"some update applied twice in schedule {visible}"
        )
    reason = _conflict_order_ok(visible, transactions)
    if reason is not None:
        return ConsistencyReport(False, label, reason)

    # Replay R prefix by prefix and compare against each warehouse state.
    scratch = initial.snapshot()
    scratch._frozen = False
    if not history:
        return ConsistencyReport(False, label, "empty warehouse history")
    if _warehouse_vector(history[0], definitions) != _evaluate_views(
        scratch, definitions
    ):
        return ConsistencyReport(
            False, label, "initial warehouse state does not reflect ss_0"
        )
    applied = 0
    for state in history[1:]:
        if level == "complete":
            relevant = [
                u
                for u in state.covered_rows
                if not checked_relations.isdisjoint(transactions[u].relations)
            ]
            if len(relevant) > 1:
                return ConsistencyReport(
                    False,
                    label,
                    f"transaction {state.txn_id} advances the checked views "
                    f"by {len(relevant)} updates; completeness requires "
                    f"one source state per warehouse state",
                )
        for update_id in state.covered_rows:
            if checked_relations.isdisjoint(transactions[update_id].relations):
                continue  # value-invisible (see the `visible` filter above)
            scratch.apply_deltas(transactions[update_id].deltas())
            applied += 1
        expected = _evaluate_views(scratch, definitions)
        got = _warehouse_vector(state, definitions)
        if got != expected:
            return ConsistencyReport(
                False,
                label,
                f"warehouse state #{state.index} (after txn {state.txn_id}, "
                f"{applied} updates applied) does not match the replayed "
                f"schedule prefix",
            )

    # Final check against the *full* commit schedule: updates never applied
    # at the warehouse must have been value-invisible.
    full = initial.snapshot()
    full._frozen = False
    for update_id in sorted(transactions):
        full.apply_deltas(transactions[update_id].deltas())
    if _warehouse_vector(history[-1], definitions) != _evaluate_views(
        full, definitions
    ):
        return ConsistencyReport(
            False,
            label,
            "final warehouse state does not reflect the final source state "
            "(a skipped update was not value-invisible)",
        )
    return ConsistencyReport(True, label)


def classify_mvc_ordered(
    history: Sequence[WarehouseState],
    initial: Database,
    numbered: Sequence[tuple[int, SourceTransaction, float]],
    definitions: Sequence[ViewDefinition],
) -> str:
    """Strongest level achieved: complete > strong > convergent > inconsistent."""
    if check_mvc_ordered(history, initial, numbered, definitions, "complete"):
        return "complete"
    if check_mvc_ordered(history, initial, numbered, definitions, "strong"):
        return "strong"
    # Convergence: final state only.
    full = initial.snapshot()
    full._frozen = False
    for _update_id, txn, _time in sorted(numbered):
        full.apply_deltas(txn.deltas())
    if history and _warehouse_vector(history[-1], definitions) == _evaluate_views(
        full, definitions
    ):
        return "convergent"
    return "inconsistent"
