"""Building the reference source-state sequence.

Consistency is judged against *a* consistent source state sequence — any
serial schedule equivalent to the real one (§2.1).  We replay the
transactions **in integrator numbering order**: same-source transactions
keep their commit order (FIFO reporting), and transactions from different
sources touch disjoint relations and therefore commute, so the replayed
sequence is equivalent to the commit-order schedule while matching the
numbering that every VUT row, action list and warehouse transaction uses.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.expressions import ViewDefinition
from repro.relational.relation import Relation
from repro.sources.transactions import SourceTransaction


def replay_source_states(
    initial: Database,
    transactions: Iterable[SourceTransaction],
) -> list[Database]:
    """``ss_0 .. ss_f``: snapshots after each transaction, in given order."""
    states = [initial.snapshot()]
    current = initial.snapshot()
    current._frozen = False  # a private scratch copy we mutate step by step
    for transaction in transactions:
        current.apply_deltas(transaction.deltas())
        states.append(current.snapshot())
    return states


def source_view_values(
    states: Sequence[Database],
    definitions: Sequence[ViewDefinition],
) -> list[dict[str, Relation]]:
    """``V(ss_i)`` for every view and source state."""
    return [
        {d.name: evaluate(d.expression, state) for d in definitions}
        for state in states
    ]


def collapse_consecutive(values: Sequence[object]) -> list[object]:
    """Drop adjacent duplicates.

    Two adjacent identical states are indistinguishable to any reader, so
    all checkers compare *collapsed* sequences: a warehouse transaction
    with no net effect does not create (or require) a new logical state.
    """
    collapsed: list[object] = []
    for value in values:
        if not collapsed or collapsed[-1] != value:
            collapsed.append(value)
    return collapsed


def view_sequence(
    values: Sequence[Mapping[str, Relation]], view: str
) -> list[Relation]:
    """Extract one view's value sequence from per-state dictionaries."""
    return [state[view] for state in values]
