"""Single-view consistency checkers (§2.2).

All checkers compare a warehouse value sequence against a source value
sequence (``V(ss_0) .. V(ss_f)``) after collapsing adjacent duplicates —
see :func:`repro.consistency.states.collapse_consecutive` for why.

* ``check_convergent``  — final warehouse value equals ``V(ss_f)``.
* ``check_strong``      — the collapsed warehouse sequence embeds
  order-preservingly into the collapsed source sequence, starting at
  ``V(ss_0)`` and ending at ``V(ss_f)``.
* ``check_complete``    — the collapsed sequences are *identical*: every
  source state is reflected, in order.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import Sequence

from repro.errors import ConsistencyViolation
from repro.consistency.states import collapse_consecutive


@dataclass(frozen=True, slots=True)
class ConsistencyReport:
    """The outcome of a consistency check."""

    ok: bool
    level: str
    reason: str = ""
    mapping: tuple[int, ...] | None = None

    def __bool__(self) -> bool:
        return self.ok

    def require(self) -> "ConsistencyReport":
        """Raise :class:`ConsistencyViolation` unless the check passed."""
        if not self.ok:
            raise ConsistencyViolation(f"{self.level}: {self.reason}")
        return self


def _describe(value: object) -> str:
    text = repr(value)
    return text if len(text) <= 120 else text[:117] + "..."


def check_convergent(
    warehouse_values: Sequence[object],
    source_values: Sequence[object],
) -> ConsistencyReport:
    """Eventual correctness: the last warehouse value is ``V(ss_f)``."""
    if not warehouse_values or not source_values:
        return ConsistencyReport(False, "convergent", "empty state sequence")
    if warehouse_values[-1] == source_values[-1]:
        return ConsistencyReport(True, "convergent")
    return ConsistencyReport(
        False,
        "convergent",
        f"final warehouse value {_describe(warehouse_values[-1])} != "
        f"final source value {_describe(source_values[-1])}",
    )


def check_strong(
    warehouse_values: Sequence[object],
    source_values: Sequence[object],
) -> ConsistencyReport:
    """Strong consistency: order-preserving embedding ending at ``ss_f``.

    Greedy earliest matching is complete here: if any strictly increasing
    mapping exists, matching each warehouse value to the earliest
    still-available source value also succeeds.
    """
    ws = collapse_consecutive(warehouse_values)
    ss = collapse_consecutive(source_values)
    if not ws or not ss:
        return ConsistencyReport(False, "strong", "empty state sequence")
    mapping: list[int] = []
    cursor = 0
    for j, value in enumerate(ws):
        found = None
        for i in range(cursor, len(ss)):
            if ss[i] == value:
                found = i
                break
        if found is None:
            return ConsistencyReport(
                False,
                "strong",
                f"warehouse state #{j} {_describe(value)} matches no source "
                f"state at or after ss#{cursor}",
                tuple(mapping),
            )
        mapping.append(found)
        cursor = found + 1
    if ws[-1] != ss[-1]:
        return ConsistencyReport(
            False,
            "strong",
            "warehouse never reaches the final source state "
            f"{_describe(ss[-1])}",
            tuple(mapping),
        )
    return ConsistencyReport(True, "strong", mapping=tuple(mapping))


def check_complete(
    warehouse_values: Sequence[object],
    source_values: Sequence[object],
) -> ConsistencyReport:
    """Completeness: every source state reflected, in order (collapsed)."""
    ws = collapse_consecutive(warehouse_values)
    ss = collapse_consecutive(source_values)
    if ws == ss:
        return ConsistencyReport(
            True, "complete", mapping=tuple(range(len(ss)))
        )
    # Produce a helpful reason: first divergence point.
    for index, (have, want) in enumerate(zip(ws, ss)):
        if have != want:
            return ConsistencyReport(
                False,
                "complete",
                f"state #{index}: warehouse {_describe(have)} != source "
                f"{_describe(want)}",
            )
    return ConsistencyReport(
        False,
        "complete",
        f"warehouse walked through {len(ws)} distinct states, source "
        f"through {len(ss)}",
    )


def strongest_level(
    warehouse_values: Sequence[object],
    source_values: Sequence[object],
) -> str:
    """Classify a run: 'complete' > 'strong' > 'convergent' > 'inconsistent'."""
    if check_complete(warehouse_values, source_values):
        return "complete"
    if check_strong(warehouse_values, source_values):
        return "strong"
    if check_convergent(warehouse_values, source_values):
        return "convergent"
    return "inconsistent"
