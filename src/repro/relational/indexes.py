"""Incrementally-maintained hash indexes over multiset relations.

A :class:`HashIndex` maps a key tuple (the values of a fixed attribute
list) to the bag of rows carrying that key.  Indexes are the probe
structure behind the row-dict maintenance engine
(:mod:`repro.relational.plan_reference`; the default columnar engine
probes :class:`~repro.relational.columnar.ColumnIndex` instead):
rather than materializing an entire join side to match it against a
delta, maintenance probes only the buckets named by the delta's join
keys — O(|delta| x matching rows) instead of O(|side|).

Indexes are owned by :class:`~repro.relational.relation.Relation` (see
``Relation.index_on``), built lazily on first use and kept in lockstep by
``insert``/``delete``.  Every attribute in the key must be present on
every row of the relation (schema-derived keys guarantee this).
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Mapping

from repro.relational.rows import Row

#: shared empty probe result — callers iterate it without allocating
_EMPTY: Mapping[Row, int] = MappingProxyType({})


class HashIndex:
    """A bag index: key tuple -> {row: multiplicity}.

    When the owning relation has a schema, ``index_on`` passes its sorted
    attribute ``layout``: key extraction then reads values positionally
    off each row's normalised item tuple (the same column positions the
    columnar engine uses) instead of doing one dict lookup per key
    attribute.
    """

    __slots__ = ("attrs", "_buckets", "_positions")

    def __init__(
        self, attrs: Iterable[str], layout: tuple[str, ...] | None = None
    ) -> None:
        self.attrs = tuple(attrs)
        self._buckets: dict[tuple, dict[Row, int]] = {}
        self._positions: tuple[int, ...] | None = None
        if layout is not None and all(a in layout for a in self.attrs):
            self._positions = tuple(layout.index(a) for a in self.attrs)

    def key_of(self, row: Row) -> tuple:
        positions = self._positions
        if positions is not None:
            items = row._items
            return tuple(items[p][1] for p in positions)
        return tuple(row[a] for a in self.attrs)

    # -- maintenance -------------------------------------------------------
    def build(self, counts: Mapping[Row, int]) -> None:
        """(Re)build from a row->count mapping, discarding prior state."""
        self._buckets.clear()
        for row, count in counts.items():
            self.add(row, count)

    def add(self, row: Row, count: int) -> None:
        bucket = self._buckets.setdefault(self.key_of(row), {})
        bucket[row] = bucket.get(row, 0) + count

    def remove(self, row: Row, count: int) -> None:
        key = self.key_of(row)
        bucket = self._buckets[key]
        remaining = bucket[row] - count
        if remaining:
            bucket[row] = remaining
        else:
            del bucket[row]
            if not bucket:
                del self._buckets[key]

    # -- probing ------------------------------------------------------------
    def bucket(self, key: tuple) -> Mapping[Row, int]:
        """The rows whose key attributes equal ``key`` (zero-copy view).

        Returns an empty mapping for absent keys.  The result aliases
        live index state — callers must not hold it across mutations.
        """
        found = self._buckets.get(key)
        return found if found is not None else _EMPTY

    def keys(self) -> Iterable[tuple]:
        return self._buckets.keys()

    def __len__(self) -> int:
        """Number of distinct keys."""
        return len(self._buckets)

    def __repr__(self) -> str:
        return f"HashIndex(on={self.attrs!r}, keys={len(self._buckets)})"
