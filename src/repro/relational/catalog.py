"""View catalogs: loading and saving sets of view definitions.

A catalog is a plain-text file, one definition per line, with ``#``
comments and blank lines ignored::

    # customer-inquiry warehouse
    Portfolio = SELECT * FROM Checking JOIN Savings
    BranchBook = SELECT branch, cust, cbal FROM Checking

``load_views`` parses a catalog (text or path); ``dump_views`` renders
definitions back through :func:`repro.relational.render.to_sql`, so a
catalog round-trips loss-free for canonical-shape views.
"""

from __future__ import annotations

from pathlib import Path
from typing import Sequence

from repro.errors import ParseError
from repro.relational.expressions import ViewDefinition
from repro.relational.parser import parse_view
from repro.relational.render import to_sql


def parse_catalog(text: str) -> list[ViewDefinition]:
    """Parse a catalog from a string; duplicate names are rejected."""
    definitions: list[ViewDefinition] = []
    seen: set[str] = set()
    for lineno, raw in enumerate(text.splitlines(), start=1):
        line = raw.split("#", 1)[0].strip()
        if not line:
            continue
        try:
            definition = parse_view(line)
        except ParseError as exc:
            raise ParseError(f"catalog line {lineno}: {exc}") from exc
        if definition.name in seen:
            raise ParseError(
                f"catalog line {lineno}: duplicate view {definition.name!r}"
            )
        seen.add(definition.name)
        definitions.append(definition)
    if not definitions:
        raise ParseError("catalog contains no view definitions")
    return definitions


def load_views(path: str | Path) -> list[ViewDefinition]:
    """Load a catalog file."""
    return parse_catalog(Path(path).read_text(encoding="utf-8"))


def dump_views(
    definitions: Sequence[ViewDefinition],
    header: str | None = None,
) -> str:
    """Render definitions as catalog text."""
    lines: list[str] = []
    if header:
        lines.extend(f"# {line}" for line in header.splitlines())
    lines.extend(to_sql(d) for d in definitions)
    return "\n".join(lines) + "\n"


def save_views(
    definitions: Sequence[ViewDefinition],
    path: str | Path,
    header: str | None = None,
) -> None:
    """Write a catalog file."""
    Path(path).write_text(dump_views(definitions, header), encoding="utf-8")
