"""Columnar relation storage and vectorized (compiled) delta kernels.

This module is the raw-speed core underneath the row-dict facade
(:class:`~repro.relational.rows.Row` / :class:`~repro.relational.relation.Relation`
/ :class:`~repro.relational.delta.Delta` — see ``docs/engine.md`` for the
facade contract).  The facade stays the public API; everything here is
position-keyed and batch-oriented:

* a **layout** is a sorted tuple of attribute names.  Because rows
  normalise their attributes the same way (sorted by name), a row with
  exactly the layout's attributes maps to a plain value tuple with *no*
  per-attribute name lookup (:meth:`Row.values_tuple`).
* :class:`ColumnarRelation` stores a bag as ``{value-tuple: multiplicity}``
  plus lazily-maintained :class:`ColumnIndex` probe structures and
  on-demand column vectors (one value list per attribute position,
  aligned with a multiplicity vector).
* :class:`ColumnarDelta` is the signed-count (insertions > 0,
  deletions < 0) tuple bag, applied to a :class:`ColumnarRelation` in one
  validated batch.
* predicates, projections and join merges are **compiled once per
  (operator, layout)** into position-indexed Python functions
  (:func:`compile_filter`, :func:`compile_projection`,
  :func:`compile_merge`): attribute names are resolved to tuple positions
  at compile time, and the batch kernels are synthesized comprehensions/
  loops so the per-row inner work is a few C-level tuple operations
  instead of dict lookups, ``Row`` construction and method dispatch.

:func:`evaluate_columnar` runs a full select-project-join-aggregate
evaluation through these kernels; it is property-tested bag-for-bag equal
to the row-dict reference :func:`~repro.relational.algebra.evaluate`.
The compiled maintenance engine in :mod:`repro.relational.plan` is built
from the same pieces.
"""

from __future__ import annotations

from collections import defaultdict
from operator import itemgetter
from types import MappingProxyType
from typing import Callable, Iterable, Mapping

from repro.errors import ExpressionError, RelationError
from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
)
from repro.relational.rows import Row

#: shared empty tuple-bag — callers iterate it without allocating
EMPTY_COUNTS: Mapping[tuple, int] = MappingProxyType({})

Layout = tuple  # a sorted tuple of attribute names


# ---------------------------------------------------------------------------
# layouts and row/tuple conversion (the facade boundary)
# ---------------------------------------------------------------------------

def layout_of(names: Iterable[str]) -> Layout:
    """The canonical (sorted) attribute layout for ``names``."""
    return tuple(sorted(names))


#: per-layout compiled tuple -> Row builders (see :func:`compile_row_builder`)
_ROW_BUILDER_CACHE: dict[Layout, Callable[[tuple], Row]] = {}


def compile_row_builder(layout: Layout) -> Callable[[tuple], Row]:
    """A compiled tuple -> :class:`Row` constructor for one layout.

    This is the hot half of the facade boundary, so the generated source
    inlines everything ``Row._from_sorted_items`` would do per row: the
    items tuple is a constant-shaped display (no ``zip``), the slots are
    stored directly (no ``object.__setattr__`` calls), and the cached
    sorted-names slot is pre-seeded with ``layout`` itself so a later
    ``values_tuple`` round-trip takes its positional fast path.
    """
    builder = _ROW_BUILDER_CACHE.get(layout)
    if builder is None:
        pairs = ", ".join(f"({name!r}, t[{i}])" for i, name in enumerate(layout))
        source = (
            "def _build(t, _new=_new, _Row=_Row, _dict=dict, _hash=hash,"
            " _layout=_layout):\n"
            "    row = _new(_Row)\n"
            f"    items = ({pairs},)\n"
            "    row._items = items\n"
            "    row._dict = _dict(items)\n"
            "    row._hash = _hash(items)\n"
            "    row._projections = None\n"
            "    row._names = _layout\n"
            "    return row\n"
        )
        namespace = {"_new": object.__new__, "_Row": Row, "_layout": layout}
        exec(source, namespace)  # noqa: S102 - source built from repr'd names
        builder = _ROW_BUILDER_CACHE[layout] = namespace["_build"]
    return builder


def row_of(layout: Layout, values: tuple) -> Row:
    """Rebuild a facade :class:`Row` from a layout-positioned value tuple.

    ``layout`` is sorted, so the compiled builder yields already-normalised
    items and the row skips its usual merge/sort construction work.
    """
    return compile_row_builder(layout)(values)


def counts_to_rows(layout: Layout, counts: Mapping[tuple, int]) -> dict[Row, int]:
    """Convert a tuple bag back to the facade's ``Row -> count`` form."""
    build = compile_row_builder(layout)
    return {build(t): c for t, c in counts.items()}


def rows_to_counts(layout: Layout, counts: Mapping[Row, int]) -> dict[tuple, int]:
    """Convert a ``Row -> count`` bag to layout-positioned tuples."""
    return {row.values_tuple(layout): c for row, c in counts.items()}


def make_key(layout: Layout, attrs: tuple[str, ...]) -> Callable[[tuple], object]:
    """A key extractor for ``attrs`` over ``layout``-positioned tuples.

    Single-attribute keys are the bare value (cheapest dict key); wider
    keys are value tuples; an empty ``attrs`` keys everything together
    (the cross-product bucket).  Both sides of a join must build their
    keys through this function so the conventions agree.
    """
    positions = tuple(layout.index(a) for a in attrs)
    if not positions:
        return lambda t: ()
    if len(positions) == 1:
        return itemgetter(positions[0])
    return itemgetter(*positions)


# ---------------------------------------------------------------------------
# compiled kernels: predicates, projections, merges
# ---------------------------------------------------------------------------

_OP_SOURCE = {"=": "==", "!=": "!=", "<": "<", "<=": "<=", ">": ">", ">=": ">="}

#: kernel caches, keyed by (operator AST, layout).  Predicates and
#: expressions are frozen dataclasses, so they hash; unhashable constants
#: simply skip the cache.
_FILTER_CACHE: dict[tuple, Callable] = {}
_PROJECT_CACHE: dict[tuple, Callable] = {}
_MERGE_CACHE: dict[tuple, Callable] = {}


class _TupleRow(Mapping):
    """A tuple presented as the mapping predicates expect (fallback path).

    Only used for :class:`Predicate` subclasses the source compiler does
    not know — evaluation falls back to the interpreted ``evaluate``.
    """

    __slots__ = ("_layout", "_values")

    def __init__(self, layout: Layout, values: tuple) -> None:
        self._layout = layout
        self._values = values

    def __getitem__(self, name: str) -> object:
        try:
            return self._values[self._layout.index(name)]
        except ValueError:
            raise KeyError(name) from None

    def __iter__(self):
        return iter(self._layout)

    def __len__(self) -> int:
        return len(self._layout)

    def __contains__(self, name: object) -> bool:
        return name in self._layout


def _operand_source(operand, layout: Layout, env: dict) -> str:
    if isinstance(operand, Attr):
        try:
            return f"t[{layout.index(operand.name)}]"
        except ValueError:
            raise ExpressionError(
                f"predicate attribute {operand.name!r} not in layout {layout}"
            ) from None
    if isinstance(operand, Const):
        name = f"c{len(env)}"
        env[name] = operand.literal
        return name
    raise _Uncompilable(operand)


class _Uncompilable(Exception):
    """Internal: the predicate contains a node the compiler cannot inline."""


def _predicate_source(predicate: Predicate, layout: Layout, env: dict) -> str:
    if isinstance(predicate, TruePredicate):
        return "True"
    if isinstance(predicate, Comparison):
        lhs = _operand_source(predicate.lhs, layout, env)
        rhs = _operand_source(predicate.rhs, layout, env)
        return f"({lhs} {_OP_SOURCE[predicate.op]} {rhs})"
    if isinstance(predicate, And):
        return (f"({_predicate_source(predicate.left, layout, env)} and "
                f"{_predicate_source(predicate.right, layout, env)})")
    if isinstance(predicate, Or):
        return (f"({_predicate_source(predicate.left, layout, env)} or "
                f"{_predicate_source(predicate.right, layout, env)})")
    if isinstance(predicate, Not):
        return f"(not {_predicate_source(predicate.child, layout, env)})"
    raise _Uncompilable(predicate)


def compile_filter(
    predicate: Predicate, layout: Layout
) -> Callable[[Mapping[tuple, int]], Mapping[tuple, int]] | None:
    """Compile ``predicate`` into a batch filter over a tuple bag.

    Returns ``None`` for the always-true predicate (callers skip the
    filter entirely).  The kernel is a single synthesized dict
    comprehension — the whole batch is filtered without any per-row
    Python function call.  Compiled once per (predicate, layout) and
    cached.  Comparison type errors surface as :class:`ExpressionError`,
    matching the interpreted facade semantics.
    """
    if isinstance(predicate, TruePredicate):
        return None
    key = None
    try:
        key = (predicate, layout)
        cached = _FILTER_CACHE.get(key)
        if cached is not None:
            return cached
    except TypeError:  # unhashable constant: compile uncached
        pass

    env: dict = {}
    try:
        test = _predicate_source(predicate, layout, env)
        source = (
            "def _filter(items):\n"
            f"    return {{t: c for t, c in items if {test}}}\n"
        )
        exec(compile(source, "<columnar-filter>", "exec"), env)
        kernel = env["_filter"]
    except _Uncompilable:
        # Unknown Predicate subclass: interpreted per-row fallback.
        def kernel(items, _p=predicate, _l=layout):
            return {t: c for t, c in items if _p.evaluate(_TupleRow(_l, t))}

    def batch_filter(counts: Mapping[tuple, int]) -> Mapping[tuple, int]:
        try:
            return kernel(counts.items())
        except TypeError as exc:
            raise ExpressionError(
                f"cannot evaluate {predicate} over layout {layout}: {exc}"
            ) from exc

    if key is not None:
        _FILTER_CACHE[key] = batch_filter
    return batch_filter


def compile_projection(
    child_layout: Layout, names: tuple[str, ...]
) -> tuple[Layout, Callable[[Mapping[tuple, int]], dict[tuple, int]]]:
    """Compile a projection onto ``names`` into a batch re-keying kernel.

    Returns ``(output layout, kernel)``.  The kernel folds multiplicities
    of now-identical tuples together (bag projection).  The output tuple
    is built by an inlined tuple display — no per-row calls.
    """
    out_layout = layout_of(names)
    missing = [n for n in out_layout if n not in child_layout]
    if missing:
        raise ExpressionError(
            f"projection attributes {missing} not in layout {child_layout}"
        )
    key = (child_layout, out_layout)
    cached = _PROJECT_CACHE.get(key)
    if cached is not None:
        return out_layout, cached
    take = ", ".join(f"t[{child_layout.index(n)}]" for n in out_layout)
    if len(out_layout) == 1:
        take += ","
    source = (
        "def _project(items):\n"
        "    out = {}\n"
        "    get = out.get\n"
        "    for t, c in items:\n"
        f"        k = ({take})\n"
        "        out[k] = get(k, 0) + c\n"
        "    return out\n"
    )
    env: dict = {}
    exec(compile(source, "<columnar-projection>", "exec"), env)
    kernel_fn = env["_project"]

    def kernel(counts: Mapping[tuple, int]) -> dict[tuple, int]:
        out = kernel_fn(counts.items())
        for k in [k for k, c in out.items() if not c]:
            del out[k]
        return out

    _PROJECT_CACHE[key] = kernel
    return out_layout, kernel


def compile_merge(
    left_layout: Layout, right_layout: Layout
) -> tuple[Layout, Callable[[tuple, tuple], tuple]]:
    """Compile the join tuple-concatenation for two layouts.

    Returns ``(output layout, merge)`` where ``merge(l, r)`` builds the
    output tuple positionally (shared attributes are taken from the left
    operand — the join key guarantees they agree).
    """
    out_layout = layout_of(set(left_layout) | set(right_layout))
    key = (left_layout, right_layout)
    cached = _MERGE_CACHE.get(key)
    if cached is not None:
        return out_layout, cached
    parts = []
    for name in out_layout:
        if name in left_layout:
            parts.append(f"l[{left_layout.index(name)}]")
        else:
            parts.append(f"r[{right_layout.index(name)}]")
    body = ", ".join(parts)
    if len(out_layout) == 1:
        body += ","
    env: dict = {}
    exec(compile(f"def _merge(l, r):\n    return ({body})\n",
                 "<columnar-merge>", "exec"), env)
    merge = env["_merge"]
    _MERGE_CACHE[key] = merge
    return out_layout, merge


#: fused probe-loop kernels, keyed by (delta layout, other layout, on, side)
_PROBE_CACHE: dict[tuple, Callable] = {}


def compile_join_probe(
    delta_layout: Layout,
    other_layout: Layout,
    on: tuple[str, ...],
    delta_is_left: bool,
) -> Callable[[Iterable[tuple], Callable, dict], None]:
    """A fused probe loop for one single-sided join delta term.

    ``_probe(items, bucket_get, out)`` drives ``d_delta |><| other_old``
    with everything inlined in generated source: the join key is a
    positional display over the delta tuple, the bucket lookup is one
    ``dict.get``, and the merged output tuple is the
    :func:`compile_merge` display spliced directly into the inner loop —
    no per-pair function calls at all.

    The output is written with a plain store (``out[k] = c * oc``), which
    is exact for a *single* term: distinct ``(t, other)`` pairs always
    merge to distinct output tuples (they differ on a delta-side or an
    other-side-only attribute), so no accumulation can occur.  Callers
    mixing several terms into one dict must not use this kernel.
    """
    cache_key = (delta_layout, other_layout, on, delta_is_left)
    probe = _PROBE_CACHE.get(cache_key)
    if probe is not None:
        return probe
    positions = tuple(delta_layout.index(a) for a in on)
    if not positions:
        key_expr = "()"
    elif len(positions) == 1:
        key_expr = f"t[{positions[0]}]"
    else:
        key_expr = "(" + ", ".join(f"t[{p}]" for p in positions) + ")"
    out_layout = layout_of(set(delta_layout) | set(other_layout))
    # shared attributes come from the join's LEFT operand (compile_merge's
    # convention) — which is the delta side iff ``delta_is_left``
    first, first_var = (delta_layout, "t") if delta_is_left else (other_layout, "o")
    second, second_var = (other_layout, "o") if delta_is_left else (delta_layout, "t")
    parts = []
    for name in out_layout:
        if name in first:
            parts.append(f"{first_var}[{first.index(name)}]")
        else:
            parts.append(f"{second_var}[{second.index(name)}]")
    display = ", ".join(parts)
    if len(out_layout) == 1:
        display += ","
    source = (
        "def _probe(items, bucket_get, out):\n"
        "    for t, c in items:\n"
        f"        m = bucket_get({key_expr})\n"
        "        if m:\n"
        "            for o, oc in m.items():\n"
        f"                out[({display})] = c * oc\n"
    )
    env: dict = {}
    exec(compile(source, "<columnar-probe>", "exec"), env)
    probe = _PROBE_CACHE[cache_key] = env["_probe"]
    return probe


def join_counts_columnar(
    left: Mapping[tuple, int],
    right: Mapping[tuple, int],
    left_key: Callable[[tuple], object],
    right_key: Callable[[tuple], object],
    merge: Callable[[tuple, tuple], tuple],
) -> dict[tuple, int]:
    """Hash-join two signed- or unsigned-count tuple bags.

    Multiplicities multiply (counting semantics, signed counts included).
    The hash table is built over the smaller side.
    """
    if not left or not right:
        return {}
    out: dict[tuple, int] = defaultdict(int)
    if len(left) <= len(right):
        table: dict = defaultdict(list)
        for t, c in left.items():
            table[left_key(t)].append((t, c))
        for t, c in right.items():
            for other, other_count in table.get(right_key(t), ()):
                out[merge(other, t)] += c * other_count
    else:
        table = defaultdict(list)
        for t, c in right.items():
            table[right_key(t)].append((t, c))
        for t, c in left.items():
            for other, other_count in table.get(left_key(t), ()):
                out[merge(t, other)] += c * other_count
    return {t: c for t, c in out.items() if c}


# ---------------------------------------------------------------------------
# aggregates over tuple bags
# ---------------------------------------------------------------------------

class AggregateKernel:
    """Compiled fold + output-row builder for a count/sum group-by.

    The whole fold — group-key extraction, state-vector creation and the
    per-spec accumulations — is synthesized into one straight-line loop
    body (positions inlined, no inner loop over specs, no per-row
    function calls), as is the builder from ``(group key, state vector)``
    to the output tuple in layout order.
    """

    __slots__ = ("layout", "group_by", "width", "_fold", "_build", "_delta_pass")

    def __init__(self, expr: Aggregate, child_layout: Layout) -> None:
        self.group_by = expr.group_by
        self.width = len(expr.aggregates)
        self.layout = layout_of(
            tuple(expr.group_by) + tuple(s.alias for s in expr.aggregates)
        )
        # the fold: group key is always a tuple so states index uniformly
        key_positions = tuple(child_layout.index(a) for a in expr.group_by)
        key_expr = "(" + "".join(f"t[{p}], " for p in key_positions) + ")"
        lines = [
            "def _fold(groups, items):",
            "    get = groups.get",
            "    for t, c in items:",
            f"        k = {key_expr}",
            "        s = get(k)",
            "        if s is None:",
            f"            s = groups[k] = [0] * {self.width + 1}",
            "        s[0] += c",
        ]
        for index, spec in enumerate(expr.aggregates, start=1):
            if spec.fn == "count":
                lines.append(f"        s[{index}] += c")
            else:
                pos = child_layout.index(spec.attr)
                lines.append(f"        s[{index}] += c * t[{pos}]")
        env: dict = {}
        exec(compile("\n".join(lines) + "\n", "<columnar-fold>", "exec"), env)
        self._fold = env["_fold"]
        # the output builder: (key, state) -> layout-ordered tuple.  Kept
        # as a template over the state variable name so the delta pass
        # below can splice the same display in for old and new states.
        aliases = tuple(s.alias for s in expr.aggregates)
        parts = []
        for name in self.layout:
            if name in expr.group_by:
                parts.append(f"k[{expr.group_by.index(name)}]")
            else:
                parts.append("{state}[" + str(aliases.index(name) + 1) + "]")
        template = ", ".join(parts)
        if len(self.layout) == 1:
            template += ","
        env = {}
        body = template.format(state="s")
        exec(compile(f"def _build(k, s):\n    return ({body})\n",
                     "<columnar-aggregate>", "exec"), env)
        self._build = env["_build"]
        # the delta pass: merge per-group contributions into the old
        # states and emit old-row deletions / new-row insertions, all in
        # one synthesized loop (state addition unrolled, output displays
        # inlined).  Accumulation via ``get`` is still needed: a
        # value-only change can make the old and new output rows collide
        # (and cancel).
        merged = ", ".join(f"s[{i}] + d[{i}]" for i in range(self.width + 1))
        source = (
            "def _delta_pass(groups, contributions):\n"
            "    out = {}\n"
            "    out_get = out.get\n"
            "    group_get = groups.get\n"
            "    new_states = {}\n"
            "    for k, d in contributions.items():\n"
            "        s = group_get(k)\n"
            "        if s is None:\n"
            "            n = d\n"
            "        else:\n"
            f"            n = [{merged}]\n"
            f"            t = ({template.format(state='s')})\n"
            "            out[t] = out_get(t, 0) - 1\n"
            "        if n[0] != 0:\n"
            f"            t = ({template.format(state='n')})\n"
            "            out[t] = out_get(t, 0) + 1\n"
            "        new_states[k] = n\n"
            "    return out, new_states\n"
        )
        env = {}
        exec(compile(source, "<columnar-aggregate-delta>", "exec"), env)
        self._delta_pass = env["_delta_pass"]

    def accumulate(self, groups: dict[tuple, list], counts: Mapping[tuple, int]) -> None:
        """Fold a (signed) tuple bag into per-group state vectors.

        State vector: ``[row_count, agg_1, ..., agg_n]``.
        """
        self._fold(groups, counts.items())

    def output(self, key: tuple, state: list) -> tuple:
        """The output tuple (layout order) for one live group."""
        return self._build(key, state)

    def delta_pass(
        self, groups: Mapping[tuple, list], contributions: Mapping[tuple, list]
    ) -> tuple[dict[tuple, int], dict[tuple, list]]:
        """Merge contribution vectors into old states; emit the row delta.

        Returns ``(out, new_states)``: ``out`` maps output tuples to
        signed counts (-1 old row, +1 new row, possibly cancelling to 0
        on a no-op change — callers filter zeros), and ``new_states``
        holds the post-batch state vector per touched group (row count 0
        means the group died).  ``groups`` is not mutated.
        """
        return self._delta_pass(groups, contributions)

    def aggregate(self, counts: Mapping[tuple, int]) -> dict[tuple, int]:
        """Full grouping of a bag: one output tuple per non-empty group."""
        groups: dict[tuple, list] = {}
        self.accumulate(groups, counts)
        build = self._build
        return {build(k, s): 1 for k, s in groups.items() if s[0] != 0}


# ---------------------------------------------------------------------------
# columnar storage
# ---------------------------------------------------------------------------

class ColumnIndex:
    """A bag index over layout-positioned tuples: key -> {tuple: count}.

    The columnar sibling of :class:`~repro.relational.indexes.HashIndex`:
    buckets are zero-copy views and key extraction is positional
    (:func:`make_key`), so probes never touch attribute names.
    """

    __slots__ = ("attrs", "_key", "_buckets")

    def __init__(self, layout: Layout, attrs: tuple[str, ...]) -> None:
        self.attrs = tuple(attrs)
        self._key = make_key(layout, self.attrs)
        self._buckets: dict = {}

    def build(self, counts: Mapping[tuple, int]) -> None:
        self._buckets.clear()
        for t, c in counts.items():
            self.add(t, c)

    def table(self) -> Mapping[object, Mapping[tuple, int]]:
        """The whole key -> bucket mapping, zero-copy.

        For bulk probe loops (:func:`compile_join_probe`) that want one
        ``dict.get`` per probe instead of a :meth:`bucket` call.  Callers
        must treat it as read-only.
        """
        return self._buckets

    def apply_signed(self, counts: Mapping[tuple, int]) -> None:
        """Fold a signed tuple bag in as one bulk pass.

        The index twin of :meth:`ColumnarRelation.apply_signed` — the
        caller has already validated that no bucket entry underflows.
        Emptied buckets are dropped so probe misses stay dict misses.
        """
        key_of = self._key
        buckets = self._buckets
        for t, c in counts.items():
            if not c:
                continue
            k = key_of(t)
            bucket = buckets.get(k)
            if bucket is None:
                if c > 0:
                    buckets[k] = {t: c}
                continue
            n = bucket.get(t, 0) + c
            if n:
                bucket[t] = n
            else:
                del bucket[t]
                if not bucket:
                    del buckets[k]

    def add(self, t: tuple, count: int) -> None:
        bucket = self._buckets.setdefault(self._key(t), {})
        bucket[t] = bucket.get(t, 0) + count

    def remove(self, t: tuple, count: int) -> None:
        key = self._key(t)
        bucket = self._buckets[key]
        remaining = bucket[t] - count
        if remaining:
            bucket[t] = remaining
        else:
            del bucket[t]
            if not bucket:
                del self._buckets[key]

    def bucket(self, key: object) -> Mapping[tuple, int]:
        """Rows matching ``key`` (zero-copy; do not hold across mutations)."""
        found = self._buckets.get(key)
        return found if found is not None else EMPTY_COUNTS

    def key_of(self, t: tuple) -> object:
        return self._key(t)

    def __len__(self) -> int:
        return len(self._buckets)

    def __repr__(self) -> str:
        return f"ColumnIndex(on={self.attrs!r}, keys={len(self._buckets)})"


class ColumnarRelation:
    """A bag of layout-positioned value tuples with a multiplicity vector.

    The storage is ``{value-tuple: multiplicity}`` — attribute names
    appear only in the layout, never per row.  Mutations keep all
    :class:`ColumnIndex` probe structures in lockstep (the pattern
    :class:`~repro.relational.relation.Relation` uses for its row
    indexes).  :meth:`column_vectors` decomposes the bag into per-position
    value vectors aligned with the multiplicity vector — the scan-order
    view vectorized full evaluation and index rebuilds read.
    """

    __slots__ = ("layout", "_counts", "_size", "_indexes")

    def __init__(
        self, layout: Iterable[str], counts: Mapping[tuple, int] | None = None
    ) -> None:
        self.layout: Layout = layout_of(layout)
        self._counts: dict[tuple, int] = {}
        self._size = 0
        self._indexes: dict[tuple[str, ...], ColumnIndex] = {}
        if counts:
            for t, c in counts.items():
                if c < 0:
                    raise RelationError(f"negative multiplicity {c} for {t}")
                if c:
                    self._counts[t] = c
                    self._size += c

    # -- facade conversions -------------------------------------------------
    @classmethod
    def from_rows(
        cls, layout: Iterable[str], counts: Mapping[Row, int]
    ) -> "ColumnarRelation":
        """Build from the facade's ``Row -> count`` bag."""
        table = cls(layout)
        table._counts = rows_to_counts(table.layout, counts)
        table._size = sum(table._counts.values())
        return table

    def to_rows(self) -> dict[Row, int]:
        """The facade view: ``Row -> count`` (a fresh dict)."""
        return counts_to_rows(self.layout, self._counts)

    # -- reads ---------------------------------------------------------------
    def counts_view(self) -> Mapping[tuple, int]:
        """Zero-copy read-only view of the tuple -> multiplicity mapping."""
        return MappingProxyType(self._counts)

    def multiplicity(self, t: tuple) -> int:
        return self._counts.get(t, 0)

    def __len__(self) -> int:
        """Total number of rows, counting multiplicity."""
        return self._size

    def distinct_count(self) -> int:
        return len(self._counts)

    def __bool__(self) -> bool:
        return self._size > 0

    def __contains__(self, t: object) -> bool:
        return t in self._counts

    def column_vectors(self) -> tuple[list[list], list[int]]:
        """Per-position value vectors plus the aligned multiplicity vector.

        A snapshot (fresh lists) in distinct-row order: ``columns[i][j]``
        is the value of attribute ``layout[i]`` on the j-th distinct row,
        whose multiplicity is ``mults[j]``.
        """
        columns: list[list] = [[] for _ in self.layout]
        mults: list[int] = []
        for t, c in self._counts.items():
            for i, v in enumerate(t):
                columns[i].append(v)
            mults.append(c)
        return columns, mults

    def index_on(self, attrs: Iterable[str]) -> ColumnIndex:
        """The column index keyed on ``attrs`` (lazy build, then lockstep)."""
        key = tuple(attrs)
        index = self._indexes.get(key)
        if index is None:
            index = ColumnIndex(self.layout, key)
            index.build(self._counts)
            self._indexes[key] = index
        return index

    # -- mutation ------------------------------------------------------------
    def insert(self, t: tuple, count: int = 1) -> None:
        if count <= 0:
            raise RelationError(f"insert count must be positive, got {count}")
        self._counts[t] = self._counts.get(t, 0) + count
        self._size += count
        if self._indexes:
            for index in self._indexes.values():
                index.add(t, count)

    def delete(self, t: tuple, count: int = 1) -> None:
        if count <= 0:
            raise RelationError(f"delete count must be positive, got {count}")
        present = self._counts.get(t, 0)
        if present < count:
            raise RelationError(
                f"cannot delete {count} copies of {t}: only {present} present"
            )
        if present == count:
            del self._counts[t]
        else:
            self._counts[t] = present - count
        self._size -= count
        if self._indexes:
            for index in self._indexes.values():
                index.remove(t, count)

    def apply_signed(self, counts: Mapping[tuple, int]) -> None:
        """Apply a signed tuple bag as one validated batch.

        Each tuple carries one *net* count, so application order between
        tuples cannot matter (the modify-safety the facade
        :meth:`Delta.apply_to` gets from deletes-first is automatic
        here), and the whole batch lands as one vectorized pass over the
        counts dict plus one bulk pass per live index — no per-row
        :meth:`insert`/:meth:`delete` calls.  Underflow still raises
        with the relation untouched, but the check rides the application
        pass itself: a violation rolls back what the pass already wrote,
        so the common (valid) case never pays for a separate validation
        sweep.
        """
        own = self._counts
        get = own.get
        for t, c in counts.items():
            if not c:
                continue
            n = get(t, 0) + c
            if n > 0:
                own[t] = n
            elif n:
                self._rollback(counts, t)
                raise RelationError(
                    f"batch deletes {-c} copies of {t} but relation "
                    f"holds {n - c}"
                )
            else:
                del own[t]
        self._size += sum(counts.values())
        for index in self._indexes.values():
            index.apply_signed(counts)

    def _rollback(self, counts: Mapping[tuple, int], failed: tuple) -> None:
        """Undo a partially-applied batch, stopping at the failing tuple
        (which was never written).  Dict iteration order is stable, so
        re-walking ``counts`` revisits exactly the applied prefix."""
        own = self._counts
        get = own.get
        for t, c in counts.items():
            if t == failed:
                return
            if not c:
                continue
            n = get(t, 0) - c
            if n:
                own[t] = n
            else:
                del own[t]

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarRelation):
            return NotImplemented
        return self.layout == other.layout and self._counts == other._counts

    def __repr__(self) -> str:
        return (f"ColumnarRelation({'|'.join(self.layout)} "
                f"|{self._size}| {self.distinct_count()} distinct)")


class ColumnarDelta:
    """A signed tuple bag: the columnar twin of the facade ``Delta``.

    Positive counts are insertions, negative counts deletions; zero
    counts are dropped at construction.  Batches convert once at the
    facade boundary (:meth:`from_delta` / :meth:`to_delta`) and apply to
    a :class:`ColumnarRelation` in one validated call.
    """

    __slots__ = ("layout", "_counts")

    def __init__(
        self, layout: Iterable[str], counts: Mapping[tuple, int] | None = None
    ) -> None:
        self.layout: Layout = layout_of(layout)
        self._counts: dict[tuple, int] = {}
        if counts:
            for t, c in counts.items():
                if c:
                    self._counts[t] = c

    @classmethod
    def from_delta(cls, layout: Iterable[str], delta) -> "ColumnarDelta":
        """Convert a facade :class:`~repro.relational.delta.Delta`."""
        out = cls(layout)
        out._counts = rows_to_counts(out.layout, delta.counts())
        return out

    @classmethod
    def _adopt(cls, layout: Layout, counts: dict[tuple, int]) -> "ColumnarDelta":
        """Wrap an already-validated counts dict without copying.

        Internal: ``layout`` must be sorted and ``counts`` an owned,
        zero-free dict (what plan nodes produce) — the zero-filtering
        copy of ``__init__`` is exactly the per-output-row cost the
        batch path exists to avoid.
        """
        out = object.__new__(cls)
        out.layout = layout
        out._counts = counts
        return out

    def to_delta(self):
        """Convert back to the facade :class:`Delta`."""
        from repro.relational.delta import Delta

        return Delta(counts_to_rows(self.layout, self._counts))

    def counts(self) -> Mapping[tuple, int]:
        return MappingProxyType(self._counts)

    def is_empty(self) -> bool:
        return not self._counts

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __len__(self) -> int:
        """Total magnitude: rows inserted plus rows deleted."""
        return sum(abs(c) for c in self._counts.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, ColumnarDelta):
            return NotImplemented
        return self.layout == other.layout and self._counts == other._counts

    def combined(self, other: "ColumnarDelta") -> "ColumnarDelta":
        """The delta equivalent to applying self then ``other``."""
        counts = defaultdict(int, self._counts)
        for t, c in other._counts.items():
            counts[t] += c
        return ColumnarDelta(self.layout, counts)

    def apply_to(self, table: ColumnarRelation) -> None:
        table.apply_signed(self._counts)

    def __repr__(self) -> str:
        parts = [f"{'+' if c > 0 else ''}{c}*{t!r}"
                 for t, c in sorted(self._counts.items())]
        return f"ColumnarDelta({', '.join(parts)})"


# ---------------------------------------------------------------------------
# vectorized full evaluation
# ---------------------------------------------------------------------------

def evaluate_columnar(expr: Expression, db) -> "Relation":
    """Evaluate ``expr`` through the columnar kernels; returns a Relation.

    Bag-for-bag equal to the row-dict reference
    :func:`repro.relational.algebra.evaluate` (property-tested in
    ``tests/relational/test_columnar_properties.py``).  Base relations
    are read through their lockstep columnar stores
    (:meth:`Relation.columnar`), so repeated evaluations share them.
    """
    from repro.relational.relation import Relation

    schema = expr.infer_schema(db.schemas)
    layout, counts = _eval_columnar(expr, db)
    return Relation.from_counts(counts_to_rows(layout, counts), schema)


def _eval_columnar(expr: Expression, db) -> tuple[Layout, Mapping[tuple, int]]:
    if isinstance(expr, BaseRelation):
        store = db.relation(expr.name).columnar()
        return store.layout, store.counts_view()
    if isinstance(expr, Select):
        layout, counts = _eval_columnar(expr.child, db)
        kernel = compile_filter(expr.predicate, layout)
        return layout, (counts if kernel is None else kernel(counts))
    if isinstance(expr, Project):
        layout, counts = _eval_columnar(expr.child, db)
        out_layout, kernel = compile_projection(layout, expr.names)
        return out_layout, kernel(counts)
    if isinstance(expr, Join):
        left_layout, left = _eval_columnar(expr.left, db)
        right_layout, right = _eval_columnar(expr.right, db)
        on = expr.join_attributes(db.schemas)
        out_layout, merge = compile_merge(left_layout, right_layout)
        joined = join_counts_columnar(
            left, right,
            make_key(left_layout, on), make_key(right_layout, on), merge,
        )
        return out_layout, joined
    if isinstance(expr, Aggregate):
        layout, counts = _eval_columnar(expr.child, db)
        kernel = AggregateKernel(expr, layout)
        return kernel.layout, kernel.aggregate(counts)
    raise ExpressionError(
        f"cannot evaluate expression of type {type(expr).__name__}"
    )
