"""Full evaluation of relational expressions against a database state.

``evaluate(expr, db)`` computes the bag result of a select-project-join
expression.  It is the reference semantics against which the incremental
delta rules in :mod:`repro.relational.delta` are property-tested, and the
oracle the consistency checkers use to compute ``V(ss_i)`` — "the result
of evaluating the expression of V at source state ss_i" (paper, §2.2).
"""

from __future__ import annotations

from collections import defaultdict
from typing import Mapping

from repro.errors import ExpressionError
from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema


def evaluate(expr: Expression, db: "DatabaseLike") -> Relation:
    """Evaluate ``expr`` against ``db`` and return the result relation.

    ``db`` is anything with ``relation(name) -> Relation`` and
    ``schemas -> Mapping[str, Schema]`` (duck-typed so both
    :class:`~repro.relational.database.Database` and plain snapshots work).
    """
    schema = expr.infer_schema(db.schemas)
    counts = _eval_counts(expr, db)
    return Relation.from_counts(counts, schema)


class DatabaseLike:
    """Protocol sketch for evaluation targets (documentation only)."""

    schemas: Mapping[str, Schema]

    def relation(self, name: str) -> Relation:  # pragma: no cover - protocol
        raise NotImplementedError


def _eval_counts(expr: Expression, db: "DatabaseLike") -> Mapping[Row, int]:
    if isinstance(expr, BaseRelation):
        # Zero-copy: every consumer treats the result as read-only.
        return db.relation(expr.name).counts_view()
    if isinstance(expr, Select):
        child = _eval_counts(expr.child, db)
        return {row: c for row, c in child.items() if expr.predicate.evaluate(row)}
    if isinstance(expr, Project):
        child = _eval_counts(expr.child, db)
        out: dict[Row, int] = defaultdict(int)
        for row, count in child.items():
            out[row.project(expr.names)] += count
        return dict(out)
    if isinstance(expr, Join):
        left = _eval_counts(expr.left, db)
        right = _eval_counts(expr.right, db)
        on = expr.join_attributes(db.schemas)
        return join_counts(left, right, on)
    if isinstance(expr, Aggregate):
        child = _eval_counts(expr.child, db)
        return aggregate_counts(expr, child)
    raise ExpressionError(f"cannot evaluate expression of type {type(expr).__name__}")


def aggregate_counts(
    expr: "Aggregate", child: Mapping[Row, int]
) -> dict[Row, int]:
    """Group ``child`` (a signed- or unsigned-count bag) and aggregate.

    Accumulates per-group (count, sums) honouring multiplicities, then
    emits one output row (count 1) per group whose row count is non-zero.
    With signed inputs this computes the *net* aggregates — exactly what
    the delta rules need.
    """
    groups: dict[tuple, list] = {}
    for row, count in child.items():
        key = tuple(row[a] for a in expr.group_by)
        state = groups.setdefault(key, [0] + [0] * len(expr.aggregates))
        state[0] += count
        for index, spec in enumerate(expr.aggregates, start=1):
            if spec.fn == "count":
                state[index] += count
            else:
                assert spec.attr is not None
                state[index] += count * row[spec.attr]
    out: dict[Row, int] = {}
    for key, state in groups.items():
        if state[0] == 0:
            continue  # the group vanished (or never existed)
        values = dict(zip(expr.group_by, key))
        for index, spec in enumerate(expr.aggregates, start=1):
            values[spec.alias] = state[index]
        out[Row(values)] = 1
    return out


def join_counts(
    left: Mapping[Row, int],
    right: Mapping[Row, int],
    on: tuple[str, ...],
) -> dict[Row, int]:
    """Hash-join two signed- or unsigned-count bags on attributes ``on``.

    Multiplicities multiply, which is exactly what counting-based
    incremental maintenance requires (signed counts included).  An empty
    ``on`` yields a cross product.
    """
    out: dict[Row, int] = defaultdict(int)
    if not left or not right:
        return {}
    # Build the hash table on the smaller side.
    build, probe, build_is_left = (
        (left, right, True) if len(left) <= len(right) else (right, left, False)
    )
    table: dict[tuple, list[tuple[Row, int]]] = defaultdict(list)
    for row, count in build.items():
        table[tuple(row[a] for a in on)].append((row, count))
    for row, count in probe.items():
        key = tuple(row[a] for a in on)
        for other, other_count in table.get(key, ()):  # matching build rows
            merged = other.merge(row) if build_is_left else row.merge(other)
            out[merged] += count * other_count
    return {row: c for row, c in out.items() if c != 0}
