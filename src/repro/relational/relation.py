"""Multiset relations.

A :class:`Relation` is a bag of :class:`~repro.relational.rows.Row` objects
with positive multiplicities, optionally validated against a
:class:`~repro.relational.schema.Schema`.  Bag semantics (rather than set
semantics) are what make counting-based incremental view maintenance
correct under projection and join.
"""

from __future__ import annotations

from types import MappingProxyType
from typing import Iterable, Iterator, Mapping

from repro.errors import RelationError, SchemaError
from repro.relational.columnar import ColumnarRelation
from repro.relational.indexes import HashIndex
from repro.relational.rows import Row
from repro.relational.schema import Schema


class Relation:
    """A multiset of rows.

    Supports insert/delete with multiplicities, iteration (each row
    repeated by its count), equality as bags, cheap copying, and lazily
    built hash indexes kept in lockstep by ``insert``/``delete``.
    """

    __slots__ = ("_schema", "_counts", "_size", "_indexes", "_store")

    def __init__(
        self,
        schema: Schema | None = None,
        rows: Iterable[Row | Mapping[str, object]] = (),
    ) -> None:
        self._schema = schema
        self._counts: dict[Row, int] = {}
        self._size = 0
        self._indexes: dict[tuple[str, ...], HashIndex] = {}
        self._store: ColumnarRelation | None = None
        for row in rows:
            self.insert(row)

    # -- construction helpers --------------------------------------------
    @classmethod
    def from_counts(
        cls, counts: Mapping[Row, int], schema: Schema | None = None
    ) -> "Relation":
        """Build a relation directly from a row→count mapping."""
        rel = cls(schema)
        for row, count in counts.items():
            if count < 0:
                raise RelationError(f"negative multiplicity {count} for {row}")
            if count:
                rel._check(row)
                rel._counts[row] = count
                rel._size += count
        return rel

    def copy(self) -> "Relation":
        """Return an independent copy (rows are immutable and shared)."""
        dup = Relation(self._schema)
        dup._counts = dict(self._counts)
        dup._size = self._size
        return dup

    # -- basic properties --------------------------------------------------
    @property
    def schema(self) -> Schema | None:
        return self._schema

    def __len__(self) -> int:
        """Total number of rows, counting multiplicity."""
        return self._size

    def distinct_count(self) -> int:
        """Number of distinct rows."""
        return len(self._counts)

    def __bool__(self) -> bool:
        return self._size > 0

    def __iter__(self) -> Iterator[Row]:
        for row, count in self._counts.items():
            for _ in range(count):
                yield row

    def counts(self) -> Iterator[tuple[Row, int]]:
        """Iterate (row, multiplicity) pairs."""
        return iter(self._counts.items())

    def counts_view(self) -> Mapping[Row, int]:
        """A zero-copy read-only view of the row->multiplicity mapping.

        The view aliases live state: it reflects subsequent mutations and
        must not be held across them by callers that need a snapshot (use
        ``dict(rel.counts_view())`` for that).
        """
        return MappingProxyType(self._counts)

    def index_on(self, attrs: Iterable[str]) -> HashIndex:
        """The hash index keyed on ``attrs``, built lazily on first use.

        Subsequent ``insert``/``delete`` calls keep it maintained, so
        repeated probes never pay a rebuild.  ``clear`` (and therefore
        ``replace_all``) drops all indexes; they rebuild on next use.
        Every attribute must exist on every row of the relation.  When
        the relation carries a schema, key extraction is positional over
        the schema layout instead of per-attribute dict lookups.
        """
        key = tuple(attrs)
        index = self._indexes.get(key)
        if index is None:
            layout = (
                tuple(sorted(self._schema.names))
                if self._schema is not None
                else None
            )
            index = HashIndex(key, layout=layout)
            index.build(self._counts)
            self._indexes[key] = index
        return index

    def columnar(self) -> ColumnarRelation:
        """The columnar twin of this relation, built lazily on first use.

        Like the hash indexes, the store is kept in lockstep by
        ``insert``/``delete`` and dropped by ``clear()`` (so out-of-band
        ``replace_all`` cannot desync it); ``copy()`` does not carry it.
        Requires a schema — the schema's attribute set is the columnar
        layout, and schema validation is what guarantees every row fits
        it.  See ``docs/engine.md`` for the facade contract.
        """
        store = self._store
        if store is None:
            if self._schema is None:
                raise RelationError(
                    "columnar storage requires a schema (the layout)"
                )
            store = ColumnarRelation.from_rows(self._schema.names, self._counts)
            self._store = store
        return store

    def multiplicity(self, row: Row) -> int:
        return self._counts.get(row, 0)

    def __contains__(self, row: object) -> bool:
        return row in self._counts

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Relation):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        preview = ", ".join(repr(r) for r in sorted(self._counts)[:4])
        if self.distinct_count() > 4:
            preview += ", ..."
        return f"Relation(|{self._size}| {preview})"

    def sorted_rows(self) -> list[Row]:
        """All rows (with multiplicity) in a deterministic order."""
        result: list[Row] = []
        for row in sorted(self._counts):
            result.extend([row] * self._counts[row])
        return result

    # -- mutation ----------------------------------------------------------
    def _check(self, row: Row) -> None:
        if self._schema is not None:
            self._schema.validate(dict(row))

    def _coerce(self, row: Row | Mapping[str, object]) -> Row:
        return row if isinstance(row, Row) else Row(row)

    def insert(self, row: Row | Mapping[str, object], count: int = 1) -> None:
        """Insert ``count`` copies of ``row``."""
        if count <= 0:
            raise RelationError(f"insert count must be positive, got {count}")
        row = self._coerce(row)
        self._check(row)
        self._counts[row] = self._counts.get(row, 0) + count
        self._size += count
        if self._indexes:
            for index in self._indexes.values():
                index.add(row, count)
        if self._store is not None:
            self._store.insert(row.values_tuple(self._store.layout), count)

    def delete(self, row: Row | Mapping[str, object], count: int = 1) -> None:
        """Delete ``count`` copies of ``row``; the row must be present."""
        if count <= 0:
            raise RelationError(f"delete count must be positive, got {count}")
        row = self._coerce(row)
        present = self._counts.get(row, 0)
        if present < count:
            raise RelationError(
                f"cannot delete {count} copies of {row}: only {present} present"
            )
        if present == count:
            del self._counts[row]
        else:
            self._counts[row] = present - count
        self._size -= count
        if self._indexes:
            for index in self._indexes.values():
                index.remove(row, count)
        if self._store is not None:
            self._store.delete(row.values_tuple(self._store.layout), count)

    def modify(
        self,
        old: Row | Mapping[str, object],
        new: Row | Mapping[str, object],
    ) -> None:
        """Replace one copy of ``old`` with ``new`` atomically."""
        old = self._coerce(old)
        new = self._coerce(new)
        self.delete(old)
        try:
            self.insert(new)
        except SchemaError:
            self.insert(old)  # roll back so the relation stays valid
            raise

    def clear(self) -> None:
        self._counts.clear()
        self._size = 0
        self._indexes.clear()
        self._store = None

    def replace_all(self, rows: Iterable[Row]) -> None:
        """Replace the entire contents (periodic-refresh semantics)."""
        self.clear()
        for row in rows:
            self.insert(row)
