"""In-memory multiset relational engine.

This package is the database substrate for the MVC reproduction: typed
schemas, immutable rows, multiset relations, a select-project-join algebra
with both full evaluation and incremental (counting-style) delta
propagation, versioned databases, and a small view-definition parser.

The engine is deliberately self-contained — the paper's algorithms are
data-model independent, but its examples and our workloads are relational.

Storage is two-layered: the public row-dict facade (``Row``/``Relation``/
``Delta``) and the columnar core underneath it
(:mod:`repro.relational.columnar` — position-keyed tuple bags with
compiled batch kernels), which the maintenance plans run on by default.
``docs/engine.md`` documents the layout and the facade contract.
"""

from repro.relational.schema import Attribute, AttrType, Schema
from repro.relational.rows import Row
from repro.relational.relation import Relation
from repro.relational.columnar import (
    ColumnarDelta,
    ColumnarRelation,
    ColumnIndex,
    evaluate_columnar,
)
from repro.relational.predicates import (
    Attr,
    Comparison,
    Const,
    And,
    Or,
    Not,
    TRUE,
    Predicate,
)
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
    ViewDefinition,
)
from repro.relational.algebra import evaluate
from repro.relational.delta import Delta, propagate_delta
from repro.relational.database import Database, VersionedDatabase
from repro.relational.indexes import HashIndex
from repro.relational.parser import parse_view
from repro.relational.plan import MaintenancePlan, PlanLibrary, PlanUnsupported
from repro.relational.render import to_sql
from repro.relational.maintain import MaterializedView

__all__ = [
    "Attribute",
    "AttrType",
    "Schema",
    "Row",
    "Relation",
    "ColumnarRelation",
    "ColumnarDelta",
    "ColumnIndex",
    "evaluate_columnar",
    "Attr",
    "Const",
    "Comparison",
    "And",
    "Or",
    "Not",
    "TRUE",
    "Predicate",
    "Expression",
    "BaseRelation",
    "Select",
    "Project",
    "Join",
    "Aggregate",
    "AggregateSpec",
    "ViewDefinition",
    "to_sql",
    "HashIndex",
    "MaintenancePlan",
    "PlanLibrary",
    "PlanUnsupported",
    "MaterializedView",
    "evaluate",
    "Delta",
    "propagate_delta",
    "Database",
    "VersionedDatabase",
    "parse_view",
]
