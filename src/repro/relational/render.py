"""Rendering expressions back to the view-definition language.

``to_sql`` inverts :func:`repro.relational.parser.parse_view` for
expressions in the parser's canonical shape —
``Project?(Select?(join tree of base relations))`` — so definitions can be
round-tripped, logged, and stored in catalogs.  Non-canonical trees (e.g.
a selection *under* a join) raise :class:`ExpressionError`; normalise them
first if needed.
"""

from __future__ import annotations

from repro.errors import ExpressionError
from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
    ViewDefinition,
)
from repro.relational.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
    TruePredicate,
)


def render_operand(operand: object) -> str:
    if isinstance(operand, Attr):
        return operand.name
    if isinstance(operand, Const):
        literal = operand.literal
        if isinstance(literal, bool):
            return "true" if literal else "false"
        if isinstance(literal, str):
            escaped = literal.replace("\\", "\\\\").replace("'", "\\'")
            return f"'{escaped}'"
        return repr(literal)
    raise ExpressionError(f"cannot render operand {operand!r}")


def render_predicate(predicate: Predicate) -> str:
    """Render a predicate in the parser's WHERE syntax."""
    if isinstance(predicate, TruePredicate):
        return "true = true"  # the grammar has no literal TRUE predicate
    if isinstance(predicate, Comparison):
        return (
            f"{render_operand(predicate.lhs)} {predicate.op} "
            f"{render_operand(predicate.rhs)}"
        )
    if isinstance(predicate, And):
        return (
            f"({render_predicate(predicate.left)} AND "
            f"{render_predicate(predicate.right)})"
        )
    if isinstance(predicate, Or):
        return (
            f"({render_predicate(predicate.left)} OR "
            f"{render_predicate(predicate.right)})"
        )
    if isinstance(predicate, Not):
        return f"NOT ({render_predicate(predicate.child)})"
    raise ExpressionError(f"cannot render predicate {predicate!r}")


def _render_source(expr: Expression) -> str:
    """Render a left-deep join tree of base relations."""
    if isinstance(expr, BaseRelation):
        return expr.name
    if isinstance(expr, Join):
        if not isinstance(expr.right, BaseRelation):
            raise ExpressionError(
                "only left-deep join trees are renderable; normalise "
                f"{expr} first"
            )
        left = _render_source(expr.left)
        if expr.on is None:
            return f"{left} JOIN {expr.right.name}"
        on = ", ".join(expr.on)
        return f"{left} JOIN {expr.right.name} ON ({on})"
    raise ExpressionError(
        f"{type(expr).__name__} cannot appear below a join in the "
        f"canonical SELECT shape"
    )


def to_sql(expr: Expression | ViewDefinition) -> str:
    """Render an expression (or definition) as ``[name =] SELECT ...``."""
    if isinstance(expr, ViewDefinition):
        return f"{expr.name} = {to_sql(expr.expression)}"
    columns = "*"
    body = expr
    if isinstance(body, Project):
        columns = ", ".join(body.names)
        body = body.child
    having = ""
    if isinstance(body, Select) and isinstance(body.child, Aggregate):
        having = f" HAVING {render_predicate(body.predicate)}"
        body = body.child
    group = ""
    if isinstance(body, Aggregate):
        parts = list(body.group_by)
        for spec in body.aggregates:
            inner = "*" if spec.attr is None else spec.attr
            parts.append(f"{spec.fn}({inner}) AS {spec.alias}")
        agg_columns = ", ".join(parts)
        if columns == "*":
            columns = agg_columns
        elif columns != agg_columns:
            raise ExpressionError(
                "cannot render a projection that reorders aggregate output; "
                "drop the Project or match the canonical column order"
            )
        if body.group_by:
            group = f" GROUP BY {', '.join(body.group_by)}"
        body = body.child
    where = ""
    if isinstance(body, Select):
        where = f" WHERE {render_predicate(body.predicate)}"
        body = body.child
    source = _render_source(body)
    return f"SELECT {columns} FROM {source}{where}{group}{having}"
