"""Standalone incremental view maintenance.

:class:`MaterializedView` is the library-adopter-friendly wrapper around
the delta rules: keep a view's result materialized against a live
:class:`Database` and apply base-table deltas incrementally, with the
recomputation equivalence checkable at any time.  It is independent of the
simulation machinery — useful for embedding the maintenance engine in
other systems (or for testing the delta rules in isolation).

By default maintenance runs through a compiled
:class:`~repro.relational.plan.MaintenancePlan` (indexed join probes,
self-maintained aggregates, columnar batch kernels — O(|delta|) per
update, see ``docs/engine.md``); expressions the plan compiler does not
support fall back transparently to the unindexed
:func:`~repro.relational.delta.propagate_delta` path.  Both paths
implement the same counting rules, so results are identical.

Usage::

    db = Database(); ...create relations...
    view = MaterializedView(parse_view("V = SELECT * FROM R JOIN S"), db)
    delta = {"R": Delta.insert(Row(A=1, B=2))}
    view.apply(delta)          # updates both the base data and the view
    view.contents              # always equals evaluate(expr, db)
"""

from __future__ import annotations

from typing import Mapping

from repro.errors import ConsistencyViolation
from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import ViewDefinition
from repro.relational.plan import MaintenancePlan, PlanUnsupported
from repro.relational.relation import Relation


class MaterializedView:
    """A view result kept in lockstep with its base data."""

    def __init__(
        self,
        definition: ViewDefinition,
        database: Database,
        use_plan: bool = True,
    ) -> None:
        self.definition = definition
        self.database = database
        self._contents = evaluate(definition.expression, database)
        self.plan: MaintenancePlan | None = None
        if use_plan:
            try:
                self.plan = MaintenancePlan(definition.expression, database)
            except PlanUnsupported:
                self.plan = None  # unindexed propagate_delta fallback
        self.deltas_applied = 0
        self.rows_changed = 0

    @property
    def name(self) -> str:
        return self.definition.name

    @property
    def contents(self) -> Relation:
        return self._contents

    def __len__(self) -> int:
        return len(self._contents)

    def apply(self, base_deltas: Mapping[str, Delta]) -> Delta:
        """Apply ``base_deltas`` to the database *and* the view.

        Returns the view delta that was applied.  The base data is only
        advanced after the view delta has been computed against the
        pre-state, so a failure leaves both untouched.
        """
        if self.plan is not None:
            view_delta = self.plan.propagate(base_deltas)
            self.database.apply_deltas(base_deltas)
            self.plan.advance()
        else:
            view_delta = propagate_delta(
                self.definition.expression, self.database, base_deltas
            )
            self.database.apply_deltas(base_deltas)
        view_delta.apply_to(self._contents)
        self.deltas_applied += 1
        self.rows_changed += len(view_delta)
        return view_delta

    def verify(self) -> None:
        """Raise unless the materialization matches recomputation."""
        fresh = evaluate(self.definition.expression, self.database)
        if fresh != self._contents:
            raise ConsistencyViolation(
                f"materialized view {self.name!r} drifted from its "
                f"definition: {len(self._contents)} rows materialized, "
                f"{len(fresh)} recomputed"
            )

    def refresh(self) -> None:
        """Recompute from scratch (periodic-refresh style).

        Also rebuilds the plan's auxiliary state, so ``refresh`` is the
        recovery handle after out-of-band database mutations.
        """
        self._contents = evaluate(self.definition.expression, self.database)
        if self.plan is not None:
            self.plan.rebuild()
