"""Relation schemas: named, typed attribute lists.

A :class:`Schema` is an ordered list of :class:`Attribute` objects.  Rows
(:class:`repro.relational.rows.Row`) are validated against a schema when a
relation is created with one.  Schemas also drive schema inference for
relational expressions (projection keeps a subset, natural join merges two
schemas on their common attribute names).
"""

from __future__ import annotations

import enum
from dataclasses import dataclass
from typing import Iterable, Iterator

from repro.errors import SchemaError


class AttrType(enum.Enum):
    """The value types supported by the engine."""

    INT = "int"
    FLOAT = "float"
    STR = "str"
    BOOL = "bool"

    @property
    def python_type(self) -> type:
        return _PYTHON_TYPES[self]

    def accepts(self, value: object) -> bool:
        """Return True if ``value`` is a legal value of this type.

        ``bool`` is *not* accepted for INT even though ``bool`` subclasses
        ``int`` in Python — mixing them silently hides schema bugs.
        """
        if self is AttrType.INT:
            return isinstance(value, int) and not isinstance(value, bool)
        if self is AttrType.FLOAT:
            return (
                isinstance(value, float)
                or (isinstance(value, int) and not isinstance(value, bool))
            )
        if self is AttrType.STR:
            return isinstance(value, str)
        return isinstance(value, bool)


_PYTHON_TYPES = {
    AttrType.INT: int,
    AttrType.FLOAT: float,
    AttrType.STR: str,
    AttrType.BOOL: bool,
}


@dataclass(frozen=True, slots=True)
class Attribute:
    """A single named, typed column."""

    name: str
    type: AttrType = AttrType.INT

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise SchemaError(f"attribute name {self.name!r} is not an identifier")

    def __str__(self) -> str:
        return f"{self.name}:{self.type.value}"


class Schema:
    """An ordered, duplicate-free list of attributes.

    Schemas are immutable and hashable so they can be compared and cached.
    """

    __slots__ = ("_attributes", "_by_name", "_hash")

    def __init__(self, attributes: Iterable[Attribute | str]) -> None:
        attrs: list[Attribute] = []
        for attr in attributes:
            if isinstance(attr, str):
                attr = Attribute(attr)
            attrs.append(attr)
        names = [a.name for a in attrs]
        if len(set(names)) != len(names):
            raise SchemaError(f"duplicate attribute names in schema: {names}")
        if not attrs:
            raise SchemaError("a schema must have at least one attribute")
        object.__setattr__(self, "_attributes", tuple(attrs))
        object.__setattr__(self, "_by_name", {a.name: a for a in attrs})
        object.__setattr__(self, "_hash", hash(tuple(attrs)))

    @property
    def attributes(self) -> tuple[Attribute, ...]:
        return self._attributes

    @property
    def names(self) -> tuple[str, ...]:
        return tuple(a.name for a in self._attributes)

    def __contains__(self, name: object) -> bool:
        return name in self._by_name

    def __iter__(self) -> Iterator[Attribute]:
        return iter(self._attributes)

    def __len__(self) -> int:
        return len(self._attributes)

    def __getitem__(self, name: str) -> Attribute:
        try:
            return self._by_name[name]
        except KeyError:
            raise SchemaError(f"schema has no attribute {name!r}") from None

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Schema):
            return NotImplemented
        return self._attributes == other._attributes

    def __hash__(self) -> int:
        return self._hash

    def __repr__(self) -> str:
        return f"Schema({', '.join(str(a) for a in self._attributes)})"

    def validate(self, values: dict[str, object]) -> None:
        """Raise :class:`SchemaError` unless ``values`` matches this schema."""
        missing = [n for n in self.names if n not in values]
        if missing:
            raise SchemaError(f"row is missing attributes {missing}")
        extra = [n for n in values if n not in self._by_name]
        if extra:
            raise SchemaError(f"row has attributes {extra} not in schema")
        for attr in self._attributes:
            value = values[attr.name]
            if not attr.type.accepts(value):
                raise SchemaError(
                    f"attribute {attr.name!r} expects {attr.type.value}, "
                    f"got {value!r} ({type(value).__name__})"
                )

    def project(self, names: Iterable[str]) -> "Schema":
        """Return the sub-schema containing only ``names`` (in given order)."""
        return Schema([self[name] for name in names])

    def common_names(self, other: "Schema") -> tuple[str, ...]:
        """Attribute names shared with ``other`` (in this schema's order)."""
        return tuple(n for n in self.names if n in other)

    def natural_join(self, other: "Schema") -> "Schema":
        """Schema of the natural join: self's attributes, then other's new ones.

        Shared attribute names must agree on type.
        """
        for name in self.common_names(other):
            if self[name].type is not other[name].type:
                raise SchemaError(
                    f"natural join type mismatch on {name!r}: "
                    f"{self[name].type.value} vs {other[name].type.value}"
                )
        merged = list(self._attributes)
        merged.extend(a for a in other if a.name not in self._by_name)
        return Schema(merged)
