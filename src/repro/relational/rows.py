"""Immutable rows (tuples with named attributes).

A :class:`Row` is an immutable, hashable mapping from attribute name to
value.  Rows are the unit stored in relations and carried by updates,
deltas and action lists; immutability is what makes it safe to share them
freely between simulated processes.
"""

from __future__ import annotations

from operator import itemgetter
from typing import Iterable, Iterator, Mapping

from repro.errors import SchemaError

_ITEM_VALUE = itemgetter(1)


class Row(Mapping[str, object]):
    """An immutable named tuple of attribute values.

    Construction accepts either a mapping or keyword arguments::

        Row({"a": 1, "b": 2})
        Row(a=1, b=2)

    Attribute order is normalised (sorted by name) so two rows with the
    same name/value pairs are equal and hash alike regardless of how they
    were built.
    """

    __slots__ = ("_items", "_dict", "_hash", "_projections", "_names")

    def __init__(self, values: Mapping[str, object] | None = None, **kwargs: object):
        merged: dict[str, object] = dict(values) if values else {}
        for key, val in kwargs.items():
            if key in merged:
                raise SchemaError(f"attribute {key!r} given twice")
            merged[key] = val
        if not merged:
            raise SchemaError("a row must have at least one attribute")
        items = tuple(sorted(merged.items()))
        object.__setattr__(self, "_items", items)
        object.__setattr__(self, "_dict", dict(items))
        object.__setattr__(self, "_hash", hash(items))
        object.__setattr__(self, "_projections", None)
        object.__setattr__(self, "_names", None)

    @classmethod
    def _from_sorted_items(cls, items: tuple) -> "Row":
        """Build from already-normalised (sorted, unique-key) items.

        Skips the merge/sort work of ``__init__`` — only for internal
        callers that derive ``items`` from an existing row's ``_items``.
        """
        row = object.__new__(cls)
        object.__setattr__(row, "_items", items)
        object.__setattr__(row, "_dict", dict(items))
        object.__setattr__(row, "_hash", hash(items))
        object.__setattr__(row, "_projections", None)
        object.__setattr__(row, "_names", None)
        return row

    # -- Mapping protocol ------------------------------------------------
    def __getitem__(self, name: str) -> object:
        try:
            return self._dict[name]
        except KeyError:
            raise SchemaError(f"row has no attribute {name!r}") from None

    def __iter__(self) -> Iterator[str]:
        return iter(self._dict)

    def __len__(self) -> int:
        return len(self._dict)

    def __contains__(self, name: object) -> bool:
        return name in self._dict

    # -- identity --------------------------------------------------------
    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Row):
            return NotImplemented
        return self._items == other._items

    def __hash__(self) -> int:
        return self._hash

    def __lt__(self, other: "Row") -> bool:
        """Total order on rows with comparable values — used for stable output."""
        return self._sort_key() < other._sort_key()

    def _sort_key(self) -> tuple:
        return tuple((k, type(v).__name__, v) for k, v in self._items)

    def __repr__(self) -> str:
        inner = ", ".join(f"{k}={v!r}" for k, v in self._items)
        return f"Row({inner})"

    # -- derivation ------------------------------------------------------
    @property
    def names(self) -> tuple[str, ...]:
        return tuple(self._dict)

    def sorted_names(self) -> tuple[str, ...]:
        """The attribute names in normalised (sorted) order, cached.

        This *is* the row's columnar layout: items are stored sorted by
        name, so a sorted layout over the same attribute set lines up
        with the row's values positionally.
        """
        cached = self._names
        if cached is None:
            cached = tuple(pair[0] for pair in self._items)
            object.__setattr__(self, "_names", cached)
        return cached

    def values_tuple(self, layout: tuple[str, ...]) -> tuple:
        """The attribute values in ``layout`` order, as a plain tuple.

        This is the row -> columnar boundary conversion.  When ``layout``
        equals the row's own sorted names (the common case — schema
        validation guarantees every row of a schema'd relation carries
        exactly the schema's attributes), values are read straight off
        the normalised items with no per-name lookup.
        """
        if layout == self.sorted_names():
            return tuple(map(_ITEM_VALUE, self._items))
        return tuple(self[name] for name in layout)

    def project(self, names: Iterable[str]) -> "Row":
        """Return a new row containing only ``names``.

        Results are memoized per (row, name tuple): projection runs once
        per row per Project node per update, and rows are shared between
        relations and deltas, so repeat projections are dict hits.  The
        projected row's items are carved out of this row's already-sorted
        items, skipping the normalisation sort.
        """
        key = tuple(names)
        cache = self._projections
        if cache is None:
            cache = {}
            object.__setattr__(self, "_projections", cache)
        hit = cache.get(key)
        if hit is not None:
            return hit
        if not key:
            raise SchemaError("a row must have at least one attribute")
        keep = set(key)
        items = tuple(pair for pair in self._items if pair[0] in keep)
        if len(items) != len(keep):
            missing = sorted(keep - self._dict.keys())
            raise SchemaError(f"row has no attribute {missing[0]!r}")
        projected = Row._from_sorted_items(items)
        cache[key] = projected
        return projected

    def merge(self, other: "Row") -> "Row":
        """Combine two rows; shared attributes must agree.

        This is the tuple-concatenation step of a natural join.  Raises
        :class:`SchemaError` if a shared attribute has conflicting values —
        callers are expected to have checked joinability first.
        """
        merged = dict(self._dict)
        for name, value in other.items():
            if name in merged and merged[name] != value:
                raise SchemaError(
                    f"cannot merge rows: attribute {name!r} conflicts "
                    f"({merged[name]!r} vs {value!r})"
                )
            merged[name] = value
        return Row(merged)

    def joins_with(self, other: "Row", on: Iterable[str]) -> bool:
        """True if both rows agree on every attribute in ``on``."""
        return all(self[name] == other[name] for name in on)

    def replace(self, **changes: object) -> "Row":
        """Return a copy with some attribute values replaced."""
        updated = dict(self._dict)
        for name, value in changes.items():
            if name not in updated:
                raise SchemaError(f"row has no attribute {name!r}")
            updated[name] = value
        return Row(updated)
