"""Database states: named relations, snapshots and version histories.

Two classes:

* :class:`Database` — a mutable mapping from relation name to
  :class:`~repro.relational.relation.Relation`, with schema registry and
  cheap snapshotting.  Snapshots are themselves (frozen) databases, so the
  algebra evaluator works on either.
* :class:`VersionedDatabase` — a database that retains a snapshot per
  committed version.  This is the multiversion capability our simulated
  sources expose so *complete* view managers can ask for "the state as of
  update j" (the paper's sources are queried live and compensated instead;
  both manager styles are implemented in :mod:`repro.viewmgr`).
"""

from __future__ import annotations

from typing import Iterable, Mapping

from repro.errors import SourceError
from repro.relational.delta import Delta
from repro.relational.relation import Relation
from repro.relational.rows import Row
from repro.relational.schema import Schema


class Database:
    """A set of named relations with registered schemas."""

    __slots__ = ("_relations", "_schemas", "_frozen")

    def __init__(self) -> None:
        self._relations: dict[str, Relation] = {}
        self._schemas: dict[str, Schema] = {}
        self._frozen = False

    # -- registry ---------------------------------------------------------
    def create_relation(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Row | Mapping[str, object]] = (),
    ) -> Relation:
        """Register and return a new relation."""
        self._check_mutable()
        if name in self._relations:
            raise SourceError(f"relation {name!r} already exists")
        relation = Relation(schema, rows)
        self._relations[name] = relation
        self._schemas[name] = schema
        return relation

    @property
    def schemas(self) -> Mapping[str, Schema]:
        return dict(self._schemas)

    @property
    def relation_names(self) -> tuple[str, ...]:
        return tuple(self._relations)

    def relation(self, name: str) -> Relation:
        try:
            return self._relations[name]
        except KeyError:
            raise SourceError(f"unknown relation {name!r}") from None

    def __contains__(self, name: object) -> bool:
        return name in self._relations

    # -- mutation -----------------------------------------------------------
    def _check_mutable(self) -> None:
        if self._frozen:
            raise SourceError("cannot mutate a database snapshot")

    def apply_delta(self, name: str, delta: Delta) -> None:
        self._check_mutable()
        delta.apply_to(self.relation(name))

    def apply_deltas(self, deltas: Mapping[str, Delta]) -> None:
        """Apply several deltas atomically.

        Every delta is validated against its relation before anything is
        mutated, so a bad delta raises with the database untouched —
        callers never see a half-applied batch.
        """
        self._check_mutable()
        for name, delta in deltas.items():
            delta.check_applicable(self.relation(name))
        for name, delta in deltas.items():
            delta._apply_unchecked(self.relation(name))

    # -- snapshots ------------------------------------------------------------
    def snapshot(self) -> "Database":
        """Return an immutable copy of the current state."""
        snap = Database()
        snap._schemas = dict(self._schemas)
        snap._relations = {n: r.copy() for n, r in self._relations.items()}
        snap._frozen = True
        return snap

    def state_fingerprint(self) -> int:
        """A hash of the full contents — handy for fast state comparison."""
        return hash(
            tuple(
                (name, frozenset(self._relations[name].counts()))
                for name in sorted(self._relations)
            )
        )

    def same_state_as(self, other: "Database") -> bool:
        if set(self._relations) != set(other._relations):
            return False
        return all(
            self._relations[n] == other._relations[n] for n in self._relations
        )

    def __repr__(self) -> str:
        inner = ", ".join(
            f"{n}[{len(r)}]" for n, r in sorted(self._relations.items())
        )
        return f"Database({inner})"


class VersionedDatabase:
    """A database retaining an immutable snapshot per committed version.

    Version 0 is the initial state; committing advances the version by one
    and records a snapshot.  ``as_of(v)`` returns the snapshot for version
    ``v``.  Old versions can be pruned once no reader needs them.
    """

    __slots__ = ("_current", "_versions", "_version", "_pruned_below")

    def __init__(self, initial: Database | None = None) -> None:
        self._current = initial if initial is not None else Database()
        self._version = 0
        self._versions: dict[int, Database] = {0: self._current.snapshot()}
        self._pruned_below = 0

    # -- registry passthrough -------------------------------------------------
    def create_relation(
        self,
        name: str,
        schema: Schema,
        rows: Iterable[Row | Mapping[str, object]] = (),
    ) -> Relation:
        if self._version != 0:
            raise SourceError("relations must be created before any commit")
        relation = self._current.create_relation(name, schema, rows)
        self._versions[0] = self._current.snapshot()
        return relation

    @property
    def schemas(self) -> Mapping[str, Schema]:
        return self._current.schemas

    @property
    def version(self) -> int:
        return self._version

    @property
    def current(self) -> Database:
        return self._current

    def relation(self, name: str) -> Relation:
        return self._current.relation(name)

    # -- versioned commits ------------------------------------------------------
    def commit(self, deltas: Mapping[str, Delta]) -> int:
        """Apply ``deltas`` atomically and record a new version.

        Returns the new version number.  If applying any delta fails, the
        database is left at the previous version — ``apply_deltas``
        validates every delta before mutating anything, so no full-state
        dry-run copy is needed per commit.
        """
        self._current.apply_deltas(deltas)
        self._version += 1
        self._versions[self._version] = self._current.snapshot()
        return self._version

    def as_of(self, version: int) -> Database:
        """The snapshot at ``version`` (0 = initial state)."""
        if version in self._versions:
            return self._versions[version]
        if version < self._pruned_below:
            raise SourceError(f"version {version} has been pruned")
        raise SourceError(
            f"no version {version} (current version is {self._version})"
        )

    def prune_below(self, version: int) -> None:
        """Drop snapshots strictly older than ``version``."""
        for v in [v for v in self._versions if v < version]:
            del self._versions[v]
        self._pruned_below = max(self._pruned_below, version)

    def retained_versions(self) -> tuple[int, ...]:
        return tuple(sorted(self._versions))
