"""A small SQL-flavoured parser for view definitions.

Grammar (case-insensitive keywords)::

    view      := NAME "=" query
    query     := "SELECT" columns "FROM" source ("WHERE" predicate)?
    columns   := "*" | NAME ("," NAME)*
    source    := NAME ("JOIN" NAME ("ON" "(" NAME ("," NAME)* ")")?)*
    predicate := disjunct ("OR" disjunct)*
    disjunct  := conjunct ("AND" conjunct)*
    conjunct  := "NOT" conjunct | "(" predicate ")" | operand CMP operand
    operand   := NAME | NUMBER | 'string' | TRUE | FALSE
    CMP       := "=" | "!=" | "<" | "<=" | ">" | ">="

``JOIN`` without ``ON`` is a natural join (the paper's ``./``).  Examples::

    parse_view("V1 = SELECT * FROM R JOIN S")
    parse_view("Hot = SELECT item, qty FROM Sales WHERE qty >= 10 AND region = 'west'")
"""

from __future__ import annotations

import re
from dataclasses import dataclass

from repro.errors import ParseError
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
    ViewDefinition,
)
from repro.relational.predicates import (
    And,
    Attr,
    Comparison,
    Const,
    Not,
    Or,
    Predicate,
)

_TOKEN_RE = re.compile(
    r"""
    (?P<ws>\s+)
  | (?P<number>-?\d+\.\d+|-?\d+)
  | (?P<string>'(?:[^'\\]|\\.)*')
  | (?P<cmp><=|>=|!=|=|<|>)
  | (?P<punct>[(),*])
  | (?P<name>[A-Za-z_][A-Za-z_0-9]*)
    """,
    re.VERBOSE,
)

_KEYWORDS = frozenset(
    {
        "select", "from", "where", "join", "on", "and", "or", "not",
        "true", "false", "group", "by", "as", "count", "sum", "having",
    }
)


@dataclass(frozen=True, slots=True)
class _Token:
    kind: str  # "number" | "string" | "cmp" | "punct" | "name" | "kw"
    text: str
    position: int


def _tokenize(text: str) -> list[_Token]:
    tokens: list[_Token] = []
    pos = 0
    while pos < len(text):
        match = _TOKEN_RE.match(text, pos)
        if match is None:
            raise ParseError(f"unexpected character {text[pos]!r} at offset {pos}")
        pos = match.end()
        kind = match.lastgroup or ""
        if kind == "ws":
            continue
        value = match.group()
        if kind == "name" and value.lower() in _KEYWORDS:
            tokens.append(_Token("kw", value.lower(), match.start()))
        else:
            tokens.append(_Token(kind, value, match.start()))
    return tokens


class _Parser:
    def __init__(self, text: str) -> None:
        self._text = text
        self._tokens = _tokenize(text)
        self._index = 0

    # -- token stream helpers ----------------------------------------------
    def _peek(self) -> _Token | None:
        if self._index < len(self._tokens):
            return self._tokens[self._index]
        return None

    def _next(self) -> _Token:
        token = self._peek()
        if token is None:
            raise ParseError(f"unexpected end of input in {self._text!r}")
        self._index += 1
        return token

    def _accept(self, kind: str, text: str | None = None) -> _Token | None:
        token = self._peek()
        if token and token.kind == kind and (text is None or token.text == text):
            self._index += 1
            return token
        return None

    def _expect(self, kind: str, text: str | None = None) -> _Token:
        token = self._accept(kind, text)
        if token is None:
            got = self._peek()
            want = text or kind
            where = f"at offset {got.position}" if got else "at end of input"
            raise ParseError(
                f"expected {want!r} {where} in {self._text!r}, "
                f"got {got.text if got else 'EOF'!r}"
            )
        return token

    # -- grammar ---------------------------------------------------------
    def view(self) -> ViewDefinition:
        name = self._expect("name").text
        self._expect("cmp", "=")
        expr = self.query()
        if self._peek() is not None:
            token = self._peek()
            raise ParseError(
                f"trailing input {token.text!r} at offset {token.position}"
            )
        return ViewDefinition(name, expr)

    def query(self) -> Expression:
        self._expect("kw", "select")
        items = self._select_list()
        self._expect("kw", "from")
        expr = self._source()
        if self._accept("kw", "where"):
            expr = Select(self._predicate(), expr)
        group_by: tuple[str, ...] | None = None
        if self._accept("kw", "group"):
            self._expect("kw", "by")
            names = [self._expect("name").text]
            while self._accept("punct", ","):
                names.append(self._expect("name").text)
            group_by = tuple(names)
        having: Predicate | None = None
        if self._accept("kw", "having"):
            if group_by is None:
                raise ParseError("HAVING requires a GROUP BY clause")
            having = self._predicate()
        shaped = self._shape_output(items, group_by, expr)
        if having is not None:
            # HAVING filters aggregate output rows; it sits above the
            # Aggregate but below any reordering projection.
            if isinstance(shaped, Project):
                shaped = Project(shaped.names, Select(having, shaped.child))
            else:
                shaped = Select(having, shaped)
        return shaped

    def _select_list(self) -> list["str | AggregateSpec"] | None:
        """The select list: None for ``*``, else names and aggregates."""
        if self._accept("punct", "*"):
            return None
        items: list[str | AggregateSpec] = [self._select_item()]
        while self._accept("punct", ","):
            items.append(self._select_item())
        return items

    def _select_item(self) -> "str | AggregateSpec":
        for fn in ("count", "sum"):
            if self._accept("kw", fn):
                self._expect("punct", "(")
                attr: str | None = None
                if self._accept("punct", "*"):
                    pass
                elif fn == "sum":
                    attr = self._expect("name").text
                self._expect("punct", ")")
                if self._accept("kw", "as"):
                    alias = self._expect("name").text
                elif fn == "count":
                    alias = "count"
                else:
                    alias = f"sum_{attr}"
                return AggregateSpec(fn, alias, attr)
        return self._expect("name").text

    def _shape_output(
        self,
        items: list["str | AggregateSpec"] | None,
        group_by: tuple[str, ...] | None,
        expr: Expression,
    ) -> Expression:
        """Wrap the FROM/WHERE tree per the select list and GROUP BY."""
        if items is None:
            if group_by is not None:
                raise ParseError("GROUP BY requires an explicit select list")
            return expr
        aggregates = tuple(i for i in items if isinstance(i, AggregateSpec))
        plain = tuple(i for i in items if isinstance(i, str))
        if not aggregates:
            if group_by is not None:
                raise ParseError("GROUP BY without aggregates is not supported")
            return Project(plain, expr)
        keys = group_by if group_by is not None else plain
        if set(plain) != set(keys):
            raise ParseError(
                f"non-aggregated columns {sorted(plain)} must match "
                f"GROUP BY {sorted(keys)}"
            )
        result: Expression = Aggregate(tuple(keys), aggregates, expr)
        # Reorder via projection if the select list interleaves columns.
        canonical = tuple(keys) + tuple(a.alias for a in aggregates)
        listed = tuple(
            i if isinstance(i, str) else i.alias for i in items
        )
        if listed != canonical:
            result = Project(listed, result)
        return result

    def _source(self) -> Expression:
        expr: Expression = BaseRelation(self._expect("name").text)
        while self._accept("kw", "join"):
            right = BaseRelation(self._expect("name").text)
            on: tuple[str, ...] | None = None
            if self._accept("kw", "on"):
                self._expect("punct", "(")
                names = [self._expect("name").text]
                while self._accept("punct", ","):
                    names.append(self._expect("name").text)
                self._expect("punct", ")")
                on = tuple(names)
            expr = Join(expr, right, on)
        return expr

    def _predicate(self) -> Predicate:
        pred = self._conjunction()
        while self._accept("kw", "or"):
            pred = Or(pred, self._conjunction())
        return pred

    def _conjunction(self) -> Predicate:
        pred = self._negation()
        while self._accept("kw", "and"):
            pred = And(pred, self._negation())
        return pred

    def _negation(self) -> Predicate:
        if self._accept("kw", "not"):
            return Not(self._negation())
        if self._accept("punct", "("):
            pred = self._predicate()
            self._expect("punct", ")")
            return pred
        return self._comparison()

    def _comparison(self) -> Predicate:
        lhs = self._operand()
        op = self._expect("cmp").text
        rhs = self._operand()
        return Comparison(lhs, op, rhs)

    def _operand(self):
        token = self._next()
        if token.kind == "name":
            return Attr(token.text)
        if token.kind == "number":
            text = token.text
            return Const(float(text) if "." in text else int(text))
        if token.kind == "string":
            body = token.text[1:-1]
            return Const(body.replace("\\'", "'").replace("\\\\", "\\"))
        if token.kind == "kw" and token.text in ("true", "false"):
            return Const(token.text == "true")
        raise ParseError(
            f"expected an operand at offset {token.position} in {self._text!r}, "
            f"got {token.text!r}"
        )


def parse_view(text: str) -> ViewDefinition:
    """Parse ``"Name = SELECT ... FROM ... [WHERE ...]"`` into a definition."""
    return _Parser(text).view()


def parse_query(text: str) -> Expression:
    """Parse a bare ``SELECT`` query (no ``name =`` prefix)."""
    parser = _Parser(text)
    expr = parser.query()
    if parser._peek() is not None:
        token = parser._peek()
        assert token is not None
        raise ParseError(f"trailing input {token.text!r} at offset {token.position}")
    return expr
