"""Relational expressions: the select-project-join view algebra.

Expressions form an immutable AST over named base relations.  A
:class:`ViewDefinition` names an expression — that pair is what the
integrator, view managers and consistency checkers all share.

The engine supports:

* ``BaseRelation(name)`` — a leaf referring to a source relation.
* ``Select(predicate, child)`` — bag selection.
* ``Project(names, child)`` — bag projection (duplicates preserved).
* ``Join(left, right, on=None)`` — natural join on shared attribute names
  (``on=None``) or an explicit equi-join attribute list.

Schema inference walks the AST given the base-relation schemas.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Mapping

from repro.errors import ExpressionError
from repro.relational.predicates import Predicate
from repro.relational.schema import Schema


class Expression:
    """Base class for relational expressions."""

    __slots__ = ()

    def base_relations(self) -> frozenset[str]:
        """Names of every base relation the expression reads."""
        raise NotImplementedError

    def infer_schema(self, base_schemas: Mapping[str, Schema]) -> Schema:
        """Compute the output schema given the base relations' schemas."""
        raise NotImplementedError

    def __str__(self) -> str:
        raise NotImplementedError


@dataclass(frozen=True, slots=True)
class BaseRelation(Expression):
    """A reference to a named base relation at some source."""

    name: str

    def base_relations(self) -> frozenset[str]:
        return frozenset((self.name,))

    def infer_schema(self, base_schemas: Mapping[str, Schema]) -> Schema:
        try:
            return base_schemas[self.name]
        except KeyError:
            raise ExpressionError(f"unknown base relation {self.name!r}") from None

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Select(Expression):
    """Bag selection ``sigma_predicate(child)``."""

    predicate: Predicate
    child: Expression

    def base_relations(self) -> frozenset[str]:
        return self.child.base_relations()

    def infer_schema(self, base_schemas: Mapping[str, Schema]) -> Schema:
        schema = self.child.infer_schema(base_schemas)
        unknown = self.predicate.attributes() - set(schema.names)
        if unknown:
            raise ExpressionError(
                f"selection predicate mentions {sorted(unknown)} "
                f"not produced by {self.child}"
            )
        return schema

    def __str__(self) -> str:
        return f"select[{self.predicate}]({self.child})"


@dataclass(frozen=True, slots=True)
class Project(Expression):
    """Bag projection onto ``names`` (duplicates preserved)."""

    names: tuple[str, ...]
    child: Expression

    def __post_init__(self) -> None:
        if not self.names:
            raise ExpressionError("projection needs at least one attribute")
        if len(set(self.names)) != len(self.names):
            raise ExpressionError(f"duplicate projection attributes: {self.names}")

    def base_relations(self) -> frozenset[str]:
        return self.child.base_relations()

    def infer_schema(self, base_schemas: Mapping[str, Schema]) -> Schema:
        schema = self.child.infer_schema(base_schemas)
        missing = [n for n in self.names if n not in schema]
        if missing:
            raise ExpressionError(
                f"projection attributes {missing} not produced by {self.child}"
            )
        return schema.project(self.names)

    def __str__(self) -> str:
        return f"project[{', '.join(self.names)}]({self.child})"


@dataclass(frozen=True, slots=True)
class Join(Expression):
    """Equi-join of two sub-expressions.

    With ``on=None`` this is a natural join over all shared attribute
    names (the paper's ``R ./ S``); with an explicit tuple it joins on
    exactly those attributes.  If the operands share no attributes the
    join degenerates to a cross product.
    """

    left: Expression
    right: Expression
    on: tuple[str, ...] | None = field(default=None)

    def base_relations(self) -> frozenset[str]:
        return self.left.base_relations() | self.right.base_relations()

    def join_attributes(self, base_schemas: Mapping[str, Schema]) -> tuple[str, ...]:
        """The attribute names the join matches on."""
        left = self.left.infer_schema(base_schemas)
        right = self.right.infer_schema(base_schemas)
        if self.on is None:
            return left.common_names(right)
        for name in self.on:
            if name not in left or name not in right:
                raise ExpressionError(
                    f"join attribute {name!r} missing from an operand of {self}"
                )
        return self.on

    def infer_schema(self, base_schemas: Mapping[str, Schema]) -> Schema:
        left = self.left.infer_schema(base_schemas)
        right = self.right.infer_schema(base_schemas)
        if self.on is not None:
            # Explicit join attributes must exist on both sides; any other
            # shared names would be ambiguous in the output.
            self.join_attributes(base_schemas)
            ambiguous = set(left.common_names(right)) - set(self.on)
            if ambiguous:
                raise ExpressionError(
                    f"attributes {sorted(ambiguous)} appear on both sides of "
                    f"{self} but are not join attributes"
                )
        return left.natural_join(right)

    def __str__(self) -> str:
        on = "" if self.on is None else f"[{', '.join(self.on)}]"
        return f"({self.left} join{on} {self.right})"


_AGG_FUNCTIONS = ("count", "sum")


@dataclass(frozen=True, slots=True)
class AggregateSpec:
    """One aggregate output column: ``fn(attr) AS alias``.

    ``count`` ignores ``attr`` (row count, multiplicities included);
    ``sum`` requires a numeric attribute.
    """

    fn: str
    alias: str
    attr: str | None = None

    def __post_init__(self) -> None:
        if self.fn not in _AGG_FUNCTIONS:
            raise ExpressionError(
                f"unknown aggregate function {self.fn!r}; "
                f"supported: {_AGG_FUNCTIONS}"
            )
        if not self.alias.isidentifier():
            raise ExpressionError(f"bad aggregate alias {self.alias!r}")
        if self.fn == "sum" and self.attr is None:
            raise ExpressionError("sum() needs an attribute")
        if self.fn == "count" and self.attr is not None:
            raise ExpressionError("count() takes no attribute (use count(*))")

    def __str__(self) -> str:
        inner = "*" if self.attr is None else self.attr
        return f"{self.fn}({inner}) AS {self.alias}"


@dataclass(frozen=True, slots=True)
class Aggregate(Expression):
    """Group-by aggregation with self-maintainable aggregates.

    Output schema: the ``group_by`` attributes followed by one column per
    :class:`AggregateSpec`.  Groups with no rows are absent (including the
    group of a group-by-less aggregate over an empty input) — that keeps
    incremental maintenance uniform: groups appear and disappear via
    ordinary insertions/deletions.

    Only *self-maintainable* aggregates (count, sum) are offered: they can
    be maintained under both insertions and deletions from the delta plus
    the old aggregate value alone.  MIN/MAX are deliberately absent —
    maintaining them under deletions needs auxiliary state, which is the
    paper's [12]/[8] auxiliary-view territory.
    """

    group_by: tuple[str, ...]
    aggregates: tuple[AggregateSpec, ...]
    child: Expression

    def __post_init__(self) -> None:
        if not self.aggregates:
            raise ExpressionError("an Aggregate needs at least one aggregate")
        names = list(self.group_by) + [a.alias for a in self.aggregates]
        if len(set(names)) != len(names):
            raise ExpressionError(f"duplicate output columns: {names}")

    def base_relations(self) -> frozenset[str]:
        return self.child.base_relations()

    def infer_schema(self, base_schemas: Mapping[str, Schema]) -> Schema:
        from repro.relational.schema import Attribute, AttrType

        child = self.child.infer_schema(base_schemas)
        missing = [n for n in self.group_by if n not in child]
        if missing:
            raise ExpressionError(
                f"group-by attributes {missing} not produced by {self.child}"
            )
        columns = [child[name] for name in self.group_by]
        for spec in self.aggregates:
            if spec.fn == "count":
                columns.append(Attribute(spec.alias, AttrType.INT))
            else:
                assert spec.attr is not None
                if spec.attr not in child:
                    raise ExpressionError(
                        f"sum attribute {spec.attr!r} not produced by "
                        f"{self.child}"
                    )
                attr_type = child[spec.attr].type
                if attr_type not in (AttrType.INT, AttrType.FLOAT):
                    raise ExpressionError(
                        f"sum({spec.attr}) needs a numeric attribute, "
                        f"got {attr_type.value}"
                    )
                columns.append(Attribute(spec.alias, attr_type))
        return Schema(columns)

    def __str__(self) -> str:
        aggs = ", ".join(str(a) for a in self.aggregates)
        by = ", ".join(self.group_by) or "()"
        return f"aggregate[{by}; {aggs}]({self.child})"


def join_all(*exprs: Expression) -> Expression:
    """Left-deep natural join of several expressions (``R ./ S ./ T``)."""
    if not exprs:
        raise ExpressionError("join_all needs at least one expression")
    result = exprs[0]
    for expr in exprs[1:]:
        result = Join(result, expr)
    return result


@dataclass(frozen=True, slots=True)
class ViewDefinition:
    """A named materialized-view definition: ``name = expression``."""

    name: str
    expression: Expression

    def __post_init__(self) -> None:
        if not self.name or not self.name.isidentifier():
            raise ExpressionError(f"view name {self.name!r} is not an identifier")

    def base_relations(self) -> frozenset[str]:
        return self.expression.base_relations()

    def __str__(self) -> str:
        return f"{self.name} = {self.expression}"
