"""Compiled incremental-maintenance plans (indexed self-maintenance).

``propagate_delta`` (:mod:`repro.relational.delta`) is correct but pays
O(|base|) per update: its join rule materializes the *entire* opposite
side of every join (``_eval_counts``) to match it against a delta, and its
aggregate rule rescans base relations to restrict them to affected
groups.  A :class:`MaintenancePlan` compiles a
:class:`~repro.relational.expressions.ViewDefinition`'s expression once
and keeps auxiliary structures so each update touches only rows matching
the delta:

* **Join inputs are probed, never rebuilt.**  A base-relation input
  probes the relation's lazily-built hash index
  (:meth:`Relation.index_on`) on the join attributes; a derived input
  (anything that is not a bare base relation) is materialized once at
  compile time as an auxiliary :class:`Relation` — the self-maintenance
  style of Aziz & Batool (arXiv:1406.7685) — and thereafter maintained
  incrementally and probed through its own index.
* **Aggregates are self-maintained.**  Count/sum group-bys keep a
  per-group state table (row count + running sums), so an update needs
  only the child delta and the touched groups' old states — the
  group-restricted re-evaluation of the unindexed path disappears
  entirely.
* **Schema inference and join attributes are computed once**, at compile
  time, instead of per update.

Per-update cost drops from O(|base|) to O(|delta| x matching rows).

Usage (the pattern :class:`~repro.relational.maintain.MaterializedView`
and the cached view managers follow)::

    plan = MaintenancePlan(definition.expression, db)
    view_delta = plan.propagate(base_deltas)   # pure, reads pre-state
    db.apply_deltas(base_deltas)               # advance the base data
    plan.advance()                             # advance the aux state

``propagate`` never mutates, so a failed batch leaves everything
untouched; ``advance`` consumes the deltas staged by the most recent
``propagate``.  Expressions containing node types the compiler does not
know raise :class:`PlanUnsupported` — callers fall back to the equivalent
unindexed ``propagate_delta``.

**Multi-query optimization** (:class:`PlanLibrary`): views that live in
the same merge shard usually share structure — the same join, the same
selected prefix — and compiling each plan in isolation repeats that work
per view per update.  A library compiles plans through a common-
subexpression cache, so equal subexpressions (same expression, same
probe role) become the *same* node object across plans: one delta probe
feeds every view that reads it.  Per-batch node results are memoized in
the shared staging dict and shared stateful nodes advance exactly once
(Mistry/Roy/Ramamritham/Sudarshan, "Materialized View Selection and
Maintenance Using Multi-Query Optimization", PODS/ICDE lineage — see
PAPERS.md).  Library-compiled plans must be driven through
:meth:`PlanLibrary.propagate_all` / :meth:`PlanLibrary.advance_all`; the
library's :meth:`~PlanLibrary.report` gives the compile-time shared-node
counts.
"""

from __future__ import annotations

from collections import defaultdict
from types import MappingProxyType
from typing import Mapping

from repro.errors import ExpressionError
from repro.relational.algebra import _eval_counts, join_counts
from repro.relational.delta import Delta
from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.relation import Relation
from repro.relational.rows import Row

_EMPTY: Mapping[Row, int] = MappingProxyType({})


class PlanUnsupported(ExpressionError):
    """The expression contains a node the plan compiler cannot handle."""


class _BaseNode:
    """A base-relation leaf: deltas come straight from the update batch.

    When the leaf feeds a join (``probe_key`` set), probes go through the
    live relation's hash index on the join attributes.  The relation
    object is resolved once at compile time; the index is re-fetched per
    probe so a ``clear``/``replace_all`` (which drops indexes) can never
    leave a stale probe structure behind.
    """

    __slots__ = ("name", "relation", "probe_key", "probes")

    def __init__(self, name: str, relation: Relation, probe_key=None) -> None:
        self.name = name
        self.relation = relation
        self.probe_key = probe_key
        self.probes = 0

    def delta(self, deltas: Mapping[str, Delta], staged: dict) -> Mapping[Row, int]:
        delta = deltas.get(self.name)
        return delta.counts() if delta else _EMPTY

    def probe(self, key: tuple) -> Mapping[Row, int]:
        self.probes += 1
        return self.relation.index_on(self.probe_key).bucket(key)

    def advance(self, staged: dict) -> None:
        pass  # the caller advances the base database itself

    def rebuild(self) -> None:
        pass

    def describe(self, depth: int) -> list[str]:
        probe = f" [indexed on {self.probe_key}]" if self.probe_key is not None else ""
        return ["  " * depth + f"base {self.name}{probe}"]


class _SelectNode:
    __slots__ = ("predicate", "child")

    def __init__(self, predicate, child) -> None:
        self.predicate = predicate
        self.child = child

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        child = self.child.delta(deltas, staged)
        out: Mapping[Row, int] = _EMPTY
        if child:
            out = {r: c for r, c in child.items() if self.predicate.evaluate(r)}
        staged[memo] = out
        return out

    def advance(self, staged) -> None:
        self.child.advance(staged)

    def rebuild(self) -> None:
        self.child.rebuild()

    def describe(self, depth: int) -> list[str]:
        return ["  " * depth + f"select[{self.predicate}]"] + self.child.describe(depth + 1)


class _ProjectNode:
    __slots__ = ("names", "child")

    def __init__(self, names, child) -> None:
        self.names = names
        self.child = child

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        child = self.child.delta(deltas, staged)
        result: Mapping[Row, int] = _EMPTY
        if child:
            out: dict[Row, int] = defaultdict(int)
            for row, count in child.items():
                out[row.project(self.names)] += count
            result = {r: c for r, c in out.items() if c}
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.child.advance(staged)

    def rebuild(self) -> None:
        self.child.rebuild()

    def describe(self, depth: int) -> list[str]:
        names = ", ".join(self.names)
        return ["  " * depth + f"project[{names}]"] + self.child.describe(depth + 1)


class _MatInput:
    """A join input materialized as an auxiliary relation.

    ``delta`` computes the wrapped subexpression's delta and stages it;
    ``advance`` folds the staged delta into the auxiliary relation, whose
    hash index on the join attributes is what ``probe`` reads.
    """

    __slots__ = ("expr", "node", "rel", "probe_key", "probes", "_db")

    def __init__(self, expr: Expression, node, db, probe_key) -> None:
        self.expr = expr
        self.node = node
        self._db = db
        self.probe_key = probe_key
        self.probes = 0
        self.rel = Relation.from_counts(_eval_counts(expr, db))

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        if id(self) in staged:
            return staged[id(self)]
        counts = self.node.delta(deltas, staged)
        staged[id(self)] = counts
        return counts

    def probe(self, key: tuple) -> Mapping[Row, int]:
        self.probes += 1
        return self.rel.index_on(self.probe_key).bucket(key)

    def advance(self, staged) -> None:
        self.node.advance(staged)
        # ``pop``: when plans share this node (PlanLibrary), the first
        # owner's advance consumes the staged delta and later owners'
        # advances are no-ops — never a double application.
        counts = staged.pop(id(self), None)
        if counts:
            # Delta.apply_to validates deletions — any underflow here means
            # the base data was mutated behind the plan's back.
            Delta(counts).apply_to(self.rel)

    def rebuild(self) -> None:
        self.node.rebuild()
        self.rel = Relation.from_counts(_eval_counts(self.expr, self._db))

    def describe(self, depth: int) -> list[str]:
        head = ("  " * depth
                + f"aux materialization [indexed on {self.probe_key}, "
                + f"{len(self.rel)} rows] of:")
        return [head] + self.node.describe(depth + 1)


class _JoinNode:
    """d(L |><| R) = dL |><| R_old + L_old |><| dR + dL |><| dR.

    The old sides are never rebuilt: each single-delta term probes the
    opposite input's index with only the delta rows' join keys.
    """

    __slots__ = ("left", "right", "on")

    def __init__(self, left, right, on) -> None:
        self.left = left
        self.right = right
        self.on = on

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        d_left = self.left.delta(deltas, staged)
        d_right = self.right.delta(deltas, staged)
        if not d_left and not d_right:
            staged[memo] = _EMPTY
            return _EMPTY
        on = self.on
        out: dict[Row, int] = defaultdict(int)
        if d_left:
            for row, count in d_left.items():
                key = tuple(row[a] for a in on)
                for other, other_count in self.right.probe(key).items():
                    out[row.merge(other)] += count * other_count
        if d_right:
            for row, count in d_right.items():
                key = tuple(row[a] for a in on)
                for other, other_count in self.left.probe(key).items():
                    out[other.merge(row)] += count * other_count
        if d_left and d_right:
            for row, count in join_counts(d_left, d_right, on).items():
                out[row] += count
        result = {r: c for r, c in out.items() if c}
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.left.advance(staged)
        self.right.advance(staged)

    def rebuild(self) -> None:
        self.left.rebuild()
        self.right.rebuild()

    def describe(self, depth: int) -> list[str]:
        head = "  " * depth + f"join[on={self.on}]"
        return ([head] + self.left.describe(depth + 1)
                + self.right.describe(depth + 1))


class _AggregateNode:
    """Self-maintained count/sum group-by.

    Keeps one state vector per live group: ``[row_count, agg_1, ...]``.
    An update folds the child delta's per-group contributions into the old
    states and emits old-row deletions / new-row insertions for exactly
    the touched groups — no re-evaluation of the child, restricted or
    otherwise.
    """

    __slots__ = ("expr", "child", "group_by", "aggregates", "_groups", "_db")

    def __init__(self, expr: Aggregate, child, db) -> None:
        self.expr = expr
        self.child = child
        self.group_by = expr.group_by
        self.aggregates = expr.aggregates
        self._db = db
        self._groups: dict[tuple, list] = {}
        self._accumulate(self._groups, _eval_counts(expr.child, db))

    def _accumulate(self, groups: dict[tuple, list], counts: Mapping[Row, int]) -> None:
        width = len(self.aggregates)
        for row, count in counts.items():
            key = tuple(row[a] for a in self.group_by)
            state = groups.setdefault(key, [0] * (width + 1))
            state[0] += count
            for index, spec in enumerate(self.aggregates, start=1):
                if spec.fn == "count":
                    state[index] += count
                else:
                    state[index] += count * row[spec.attr]

    def _row_of(self, key: tuple, state: list) -> Row:
        values = dict(zip(self.group_by, key))
        for index, spec in enumerate(self.aggregates, start=1):
            values[spec.alias] = state[index]
        return Row(values)

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        d_child = self.child.delta(deltas, staged)
        if not d_child:
            staged[memo] = _EMPTY
            return _EMPTY
        contributions: dict[tuple, list] = {}
        self._accumulate(contributions, d_child)
        out: dict[Row, int] = defaultdict(int)
        new_states: dict[tuple, list] = {}
        for key, d_state in contributions.items():
            old_state = self._groups.get(key)
            if old_state is None:
                new_state = d_state
            else:
                new_state = [o + d for o, d in zip(old_state, d_state)]
                out[self._row_of(key, old_state)] -= 1
            if new_state[0] != 0:
                out[self._row_of(key, new_state)] += 1
            new_states[key] = new_state
        staged[id(self)] = new_states
        result = {r: c for r, c in out.items() if c}
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.child.advance(staged)
        # ``pop`` for the same shared-node reason as _MatInput.advance.
        for key, state in staged.pop(id(self), {}).items():
            if state[0] != 0:
                self._groups[key] = state
            else:
                self._groups.pop(key, None)

    def rebuild(self) -> None:
        self.child.rebuild()
        self._groups = {}
        self._accumulate(self._groups, _eval_counts(self.expr.child, self._db))

    def describe(self, depth: int) -> list[str]:
        aggs = ", ".join(str(a) for a in self.aggregates)
        head = ("  " * depth
                + f"aggregate[by={self.group_by}; {aggs}] "
                + f"[{len(self._groups)} group states]")
        return [head] + self.child.describe(depth + 1)


class MaintenancePlan:
    """An expression compiled for indexed incremental maintenance.

    Compilation evaluates each auxiliary materialization once (O(|base|),
    amortized over the view's lifetime); every subsequent update costs
    O(|delta| x matching rows).  The plan assumes the database advances
    only through the coordinated ``propagate``/``apply_deltas``/
    ``advance`` sequence — after any out-of-band mutation call
    :meth:`rebuild`.
    """

    def __init__(
        self,
        expression: Expression,
        database,
        library: "PlanLibrary | None" = None,
    ) -> None:
        self.expression = expression
        self._db = database
        self._library = library
        #: every node this plan reads, interned or private (may contain
        #: duplicates when a subexpression occurs twice in the tree).
        self._nodes: list = []
        self._schemas = dict(database.schemas)
        self.schema = expression.infer_schema(self._schemas)
        self._root = self._compile(expression)
        self._staged: dict = {}
        self.propagations = 0

    # -- compilation -------------------------------------------------------
    def _intern(self, key: tuple, build):
        """One node per distinct (expression, probe role) across the library.

        Without a library every plan builds private nodes; with one,
        equal keys resolve to the same object so plans share delta
        evaluation, probes and auxiliary state.
        """
        if self._library is None:
            node = build()
        else:
            node = self._library._intern(key, build)
        self._nodes.append(node)
        return node

    def _compile(self, expr: Expression):
        return self._intern(("node", expr), lambda: self._build(expr))

    def _build(self, expr: Expression):
        if isinstance(expr, BaseRelation):
            return _BaseNode(expr.name, self._db.relation(expr.name))
        if isinstance(expr, Select):
            return _SelectNode(expr.predicate, self._compile(expr.child))
        if isinstance(expr, Project):
            return _ProjectNode(expr.names, self._compile(expr.child))
        if isinstance(expr, Join):
            on = expr.join_attributes(self._schemas)
            return _JoinNode(
                self._compile_input(expr.left, on),
                self._compile_input(expr.right, on),
                on,
            )
        if isinstance(expr, Aggregate):
            return _AggregateNode(expr, self._compile(expr.child), self._db)
        raise PlanUnsupported(
            f"no maintenance plan for {type(expr).__name__} nodes"
        )

    def _compile_input(self, expr: Expression, on: tuple[str, ...]):
        """Compile a join operand: indexed base probe or aux materialization."""
        if isinstance(expr, BaseRelation):
            return self._intern(
                ("input", expr, on),
                lambda: _BaseNode(
                    expr.name, self._db.relation(expr.name), probe_key=on
                ),
            )
        return self._intern(
            ("input", expr, on),
            lambda: _MatInput(expr, self._compile(expr), self._db, on),
        )

    # -- maintenance -------------------------------------------------------
    def propagate(self, base_deltas: Mapping[str, Delta]) -> Delta:
        """The view delta induced by ``base_deltas`` on the pre-state.

        Pure: neither the database nor the plan's auxiliary state is
        mutated.  Stages the per-subexpression deltas that a following
        :meth:`advance` will fold into the auxiliary structures.
        """
        self._staged = {}
        counts = self._root.delta(base_deltas, self._staged)
        self.propagations += 1
        return Delta(counts)

    def advance(self) -> None:
        """Fold the most recent :meth:`propagate`'s staged deltas in.

        Call exactly once per propagated batch, alongside applying the
        same base deltas to the database.  A propagate whose batch was
        abandoned is simply superseded by the next propagate.
        """
        self._root.advance(self._staged)
        self._staged = {}

    def rebuild(self) -> None:
        """Recompute all auxiliary state from the database (post-drift)."""
        self._staged = {}
        self._root.rebuild()

    # -- inspection ---------------------------------------------------------
    def describe(self) -> str:
        """A textual rendering of the compiled plan tree."""
        return "\n".join(self._root.describe(0))

    def node_count(self) -> int:
        """Distinct node objects this plan reads (shared ones count once)."""
        return len({id(node) for node in self._nodes})

    def probe_count(self) -> int:
        """Total index probes issued by this plan's nodes so far.

        Shared nodes report their library-wide probe totals — by design:
        under MQO one probe serves every plan reading the node.
        """
        seen: dict[int, int] = {}
        for node in self._nodes:
            seen[id(node)] = getattr(node, "probes", 0)
        return sum(seen.values())

    def __repr__(self) -> str:
        return (f"MaintenancePlan({self.expression}, "
                f"propagations={self.propagations})")


class PlanLibrary:
    """Multi-query optimization across the plans of one merge shard.

    Compiling through a library interns every (subexpression, probe role)
    once, so the compiled :class:`MaintenancePlan`s of same-shard views
    literally share node objects: the join both views read is evaluated
    once per batch, its auxiliary materialization is maintained once, and
    one index probe feeds every reader.

    The library owns the propagation round:

    * :meth:`propagate_all` runs every plan against one shared staging
      dict — per-batch node memoization means each shared node computes
      its delta exactly once per round;
    * :meth:`advance_all` advances every plan; stateful shared nodes
      (aux materializations, aggregate group states) consume their staged
      entry on first advance and no-op after, so shared state moves
      forward exactly once per batch.

    Do **not** drive a library-compiled plan's ``propagate``/``advance``
    individually against different batches: shared stateful nodes can
    only advance in lock-step.  (One batch, many views — that is the
    point of sharing.)
    """

    def __init__(self, database) -> None:
        self._db = database
        self._interned: dict[tuple, object] = {}
        self._uses: dict[tuple, int] = {}
        self.plans: dict[str, MaintenancePlan] = {}

    # -- compilation -------------------------------------------------------
    def _intern(self, key: tuple, build):
        node = self._interned.get(key)
        if node is None:
            node = build()
            self._interned[key] = node
            self._uses[key] = 1
        else:
            self._uses[key] += 1
        return node

    def compile(self, name: str, expression: Expression) -> MaintenancePlan:
        """Compile ``expression`` as view ``name``, sharing where possible."""
        if name in self.plans:
            raise ExpressionError(f"plan {name!r} already in the library")
        plan = MaintenancePlan(expression, self._db, library=self)
        self.plans[name] = plan
        return plan

    # -- maintenance -------------------------------------------------------
    def propagate_all(self, base_deltas: Mapping[str, Delta]) -> dict[str, Delta]:
        """Every view's delta for one batch, shared work computed once."""
        staged: dict = {}
        out: dict[str, Delta] = {}
        for name, plan in self.plans.items():
            plan._staged = staged
            out[name] = Delta(plan._root.delta(base_deltas, staged))
            plan.propagations += 1
        return out

    def advance_all(self) -> None:
        """Advance every plan's auxiliary state exactly once for the batch."""
        for plan in self.plans.values():
            plan.advance()

    # -- inspection ---------------------------------------------------------
    def probe_count(self) -> int:
        """Total index probes across all unique nodes in the library."""
        return sum(
            getattr(node, "probes", 0) for node in self._interned.values()
        )

    def report(self) -> dict:
        """Compile-time sharing summary (the MQO report).

        ``total_nodes`` counts node references across all plans (what N
        independent compilations would have built); ``unique_nodes`` is
        what the library actually holds; their difference is the work
        sharing removed.  ``shared`` lists every subexpression with more
        than one reader, heaviest first.
        """
        total = sum(len(plan._nodes) for plan in self.plans.values())
        shared = [
            {
                "key": self._describe_key(key),
                "readers": uses,
            }
            for key, uses in sorted(
                self._uses.items(),
                key=lambda item: (-item[1], self._describe_key(item[0])),
            )
            if uses > 1
        ]
        return {
            "plans": len(self.plans),
            "total_nodes": total,
            "unique_nodes": len(self._interned),
            "nodes_saved": total - len(self._interned),
            "shared_subexpressions": len(shared),
            "shared": shared,
        }

    @staticmethod
    def _describe_key(key: tuple) -> str:
        kind, expr = key[0], key[1]
        suffix = f" probe={key[2]}" if kind == "input" else ""
        return f"{expr}{suffix}"
