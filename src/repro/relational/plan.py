"""Compiled incremental-maintenance plans (indexed, columnar, vectorized).

``propagate_delta`` (:mod:`repro.relational.delta`) is correct but pays
O(|base|) per update: its join rule materializes the *entire* opposite
side of every join (``_eval_counts``) to match it against a delta, and its
aggregate rule folds group state from a full child re-evaluation.  A
:class:`MaintenancePlan` compiles a
:class:`~repro.relational.expressions.ViewDefinition`'s expression once
and keeps auxiliary structures so each update touches only rows matching
the delta:

* **Join inputs are probed, never rebuilt.**  A base-relation input
  probes a lazily-built index on the join attributes; a derived input
  (anything that is not a bare base relation) is materialized once at
  compile time — the self-maintenance style of Aziz & Batool
  (arXiv:1406.7685) — and thereafter maintained incrementally and probed
  through its own index.
* **Aggregates are self-maintained.**  Count/sum group-bys keep a
  per-group state table (row count + running sums), so an update needs
  only the child delta and the touched groups' old states.
* **Schema inference and join attributes are computed once**, at compile
  time, instead of per update.

Per-update cost drops from O(|base|) to O(|delta| x matching rows).

**Engines.**  Since the columnar core landed the plan compiles to one of
two node families (``engine=`` on :class:`MaintenancePlan` and
:class:`PlanLibrary`):

* ``"columnar"`` (the default) — deltas flow as layout-positioned
  **value tuples** with signed counts; predicates/projections/join
  merges/aggregate folds run as kernels compiled once per (operator,
  layout) by :mod:`repro.relational.columnar`; probes read
  :class:`~repro.relational.columnar.ColumnIndex` structures on each
  relation's lockstep columnar store.  Facade ``Row``/``Delta`` objects
  appear only at the batch boundary (base deltas in, view delta out).
* ``"rows"`` — the pre-columnar row-dict family, kept verbatim in
  :mod:`repro.relational.plan_reference` as the correctness reference
  and benchmark baseline (B22 measures columnar against it).

Both engines emit identical view deltas for every supported expression;
``docs/engine.md`` walks through why the columnar one is an order of
magnitude faster.

Usage (the pattern :class:`~repro.relational.maintain.MaterializedView`
and the cached view managers follow)::

    plan = MaintenancePlan(definition.expression, db)
    view_delta = plan.propagate(base_deltas)   # pure, reads pre-state
    db.apply_deltas(base_deltas)               # advance the base data
    plan.advance()                             # advance the aux state

``propagate`` never mutates, so a failed batch leaves everything
untouched; ``advance`` consumes the deltas staged by the most recent
``propagate``.  Expressions containing node types the compiler does not
know raise :class:`PlanUnsupported` — callers fall back to the equivalent
unindexed ``propagate_delta``.

**Multi-query optimization** (:class:`PlanLibrary`): views that live in
the same merge shard usually share structure — the same join, the same
selected prefix — and compiling each plan in isolation repeats that work
per view per update.  A library compiles plans through a common-
subexpression cache, so equal subexpressions (same expression, same
probe role) become the *same* node object across plans: one delta probe
feeds every view that reads it.  Per-batch node results are memoized in
the shared staging dict and shared stateful nodes advance exactly once
(Mistry/Roy/Ramamritham/Sudarshan, "Materialized View Selection and
Maintenance Using Multi-Query Optimization", PODS/ICDE lineage — see
PAPERS.md).  Library-compiled plans must be driven through
:meth:`PlanLibrary.propagate_all` / :meth:`PlanLibrary.advance_all`; the
library's :meth:`~PlanLibrary.report` gives the compile-time shared-node
counts.
"""

from __future__ import annotations

from collections import defaultdict
from time import perf_counter_ns
from typing import Mapping

from repro.errors import ExpressionError
from repro.obs.profiler import PROF_KEY
from repro.relational import plan_reference as _rows
from repro.relational.columnar import (
    EMPTY_COUNTS,
    AggregateKernel,
    ColumnarDelta,
    ColumnarRelation,
    _eval_columnar,
    compile_filter,
    compile_join_probe,
    compile_merge,
    compile_projection,
    counts_to_rows,
    join_counts_columnar,
    layout_of,
    make_key,
    rows_to_counts,
)
from repro.relational.delta import Delta
from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.relation import Relation

_ENGINES = ("columnar", "rows")


class PlanUnsupported(ExpressionError):
    """The expression contains a node the plan compiler cannot handle."""


# ---------------------------------------------------------------------------
# columnar node family (see plan_reference for the row-dict twin and the
# shared node protocol: delta / probe / advance / rebuild / describe)
# ---------------------------------------------------------------------------

class _CBaseNode:
    """A base-relation leaf over the relation's lockstep columnar store.

    ``delta`` converts the batch's facade :class:`Delta` to a tuple bag
    exactly once per batch per relation (memoized under
    ``("bd", name)`` in the staging dict — every node and plan in a
    library round reuses the conversion).  Probes re-fetch the columnar
    store and its :class:`ColumnIndex` per call, so a ``clear``/
    ``replace_all`` (which drops the store) can never leave a stale
    probe structure behind.
    """

    __slots__ = ("name", "relation", "layout", "probe_key", "probes")

    def __init__(self, name: str, relation: Relation, probe_key=None) -> None:
        if relation.schema is None:
            raise PlanUnsupported(
                f"columnar engine needs a schema on base relation {name!r}"
            )
        self.name = name
        self.relation = relation
        self.layout = layout_of(relation.schema.names)
        self.probe_key = probe_key
        self.probes = 0

    def delta(self, deltas: Mapping[str, Delta], staged: dict) -> Mapping[tuple, int]:
        memo = ("bd", self.name)
        if memo in staged:
            return staged[memo]
        delta = deltas.get(self.name)
        out = rows_to_counts(self.layout, delta.counts()) if delta else EMPTY_COUNTS
        staged[memo] = out
        return out

    def probe(self, key) -> Mapping[tuple, int]:
        self.probes += 1
        return self.relation.columnar().index_on(self.probe_key).bucket(key)

    def probe_table(self) -> Mapping[object, Mapping[tuple, int]]:
        """The probe index's raw bucket mapping, for fused probe loops.

        Callers account probes themselves (one per delta tuple driven
        through the loop, matching :meth:`probe`'s per-key counting).
        """
        return self.relation.columnar().index_on(self.probe_key).table()

    def advance(self, staged: dict) -> None:
        pass  # the caller advances the base database itself

    def rebuild(self) -> None:
        pass

    def describe(self, depth: int) -> list[str]:
        probe = f" [indexed on {self.probe_key}]" if self.probe_key is not None else ""
        return ["  " * depth + f"base {self.name}{probe}"]


class _CSelectNode:
    """Vectorized selection: one compiled batch filter, no per-row calls."""

    __slots__ = ("predicate", "child", "layout", "_filter")

    def __init__(self, predicate, child) -> None:
        self.predicate = predicate
        self.child = child
        self.layout = child.layout
        self._filter = compile_filter(predicate, child.layout)

    def delta(self, deltas, staged) -> Mapping[tuple, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        child = self.child.delta(deltas, staged)
        prof = staged.get(PROF_KEY)
        t0 = perf_counter_ns() if prof is not None else 0
        out: Mapping[tuple, int] = EMPTY_COUNTS
        if child:
            out = child if self._filter is None else self._filter(child)
        if prof is not None:
            prof.node(self, perf_counter_ns() - t0, len(child), len(out))
        staged[memo] = out
        return out

    def advance(self, staged) -> None:
        self.child.advance(staged)

    def rebuild(self) -> None:
        self.child.rebuild()

    def describe(self, depth: int) -> list[str]:
        return ["  " * depth + f"select[{self.predicate}]"] + self.child.describe(depth + 1)


class _CProjectNode:
    """Vectorized bag projection: positional re-keying, counts folded."""

    __slots__ = ("names", "child", "layout", "_project")

    def __init__(self, names, child) -> None:
        self.names = names
        self.child = child
        self.layout, self._project = compile_projection(child.layout, names)

    def delta(self, deltas, staged) -> Mapping[tuple, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        child = self.child.delta(deltas, staged)
        prof = staged.get(PROF_KEY)
        t0 = perf_counter_ns() if prof is not None else 0
        out: Mapping[tuple, int] = EMPTY_COUNTS
        if child:
            out = self._project(child)
        if prof is not None:
            prof.node(self, perf_counter_ns() - t0, len(child), len(out))
        staged[memo] = out
        return out

    def advance(self, staged) -> None:
        self.child.advance(staged)

    def rebuild(self) -> None:
        self.child.rebuild()

    def describe(self, depth: int) -> list[str]:
        names = ", ".join(self.names)
        return ["  " * depth + f"project[{names}]"] + self.child.describe(depth + 1)


class _CMatInput:
    """A join input materialized as an auxiliary columnar relation.

    ``delta`` computes the wrapped subexpression's delta and stages it;
    ``advance`` applies the staged tuple bag to the auxiliary store in
    one validated batch (:meth:`ColumnarRelation.apply_signed`), whose
    :class:`ColumnIndex` on the join attributes is what ``probe`` reads.
    """

    __slots__ = ("expr", "node", "store", "layout", "probe_key", "probes", "_db")

    def __init__(self, expr: Expression, node, db, probe_key, seed=None) -> None:
        self.expr = expr
        self.node = node
        self._db = db
        self.probe_key = probe_key
        self.probes = 0
        if seed is not None:
            # Warm start (repro.cache): adopt exported contents instead of
            # re-evaluating the subexpression — the dominant cold-compile
            # cost.  The seed's provenance is the caller's problem (cache
            # keys tie it to the same expression/engine/base state).
            layout, counts = tuple(seed[0]), dict(seed[1])
        else:
            layout, counts = _eval_columnar(expr, db)
        self.layout = layout
        self.store = ColumnarRelation(layout, counts)

    def delta(self, deltas, staged) -> Mapping[tuple, int]:
        if id(self) in staged:
            return staged[id(self)]
        counts = self.node.delta(deltas, staged)
        staged[id(self)] = counts
        return counts

    def probe(self, key) -> Mapping[tuple, int]:
        self.probes += 1
        return self.store.index_on(self.probe_key).bucket(key)

    def probe_table(self) -> Mapping[object, Mapping[tuple, int]]:
        """Raw bucket mapping (see :meth:`_CBaseNode.probe_table`)."""
        return self.store.index_on(self.probe_key).table()

    def advance(self, staged) -> None:
        self.node.advance(staged)
        # ``pop``: when plans share this node (PlanLibrary), the first
        # owner's advance consumes the staged delta and later owners'
        # advances are no-ops — never a double application.
        counts = staged.pop(id(self), None)
        if counts:
            # apply_signed validates deletions — any underflow here means
            # the base data was mutated behind the plan's back.
            self.store.apply_signed(counts)

    def rebuild(self) -> None:
        self.node.rebuild()
        _, counts = _eval_columnar(self.expr, self._db)
        self.store = ColumnarRelation(self.layout, counts)

    def describe(self, depth: int) -> list[str]:
        head = ("  " * depth
                + f"aux materialization [indexed on {self.probe_key}, "
                + f"{len(self.store)} rows] of:")
        return [head] + self.node.describe(depth + 1)


def _adopt_counts(root, counts, base_counts) -> ColumnarDelta:
    """Engine-native root counts -> a :class:`ColumnarDelta`, no copy.

    Operator nodes produce owned, zero-free dicts, which
    ``ColumnarDelta._adopt`` can alias directly.  A pass-through root (a
    bare base relation, or TRUE-selects over one) hands back one of the
    *caller's* batch mappings, so anything identical to a ``base_counts``
    value — or not a plain dict at all — pays the validating constructor
    instead of aliasing caller-owned state.
    """
    if not isinstance(counts, dict) or any(
        counts is batch for batch in base_counts.values()
    ):
        return ColumnarDelta(root.layout, counts)
    return ColumnarDelta._adopt(root.layout, counts)


class _CJoinNode:
    """d(L |><| R) = dL |><| R_old + L_old |><| dR + dL |><| dR.

    The old sides are never rebuilt: each single-delta term probes the
    opposite input's column index with only the delta tuples' join keys.
    Key extraction and the output-tuple merge are compiled positionally
    at plan-compile time — no attribute names, no ``Row.merge``.
    """

    __slots__ = ("left", "right", "on", "layout",
                 "_left_key", "_right_key", "_merge",
                 "_probe_left", "_probe_right")

    def __init__(self, left, right, on) -> None:
        self.left = left
        self.right = right
        self.on = on
        self.layout, self._merge = compile_merge(left.layout, right.layout)
        self._left_key = make_key(left.layout, on)
        self._right_key = make_key(right.layout, on)
        self._probe_left = compile_join_probe(left.layout, right.layout, on, True)
        self._probe_right = compile_join_probe(right.layout, left.layout, on, False)

    def delta(self, deltas, staged) -> Mapping[tuple, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        d_left = self.left.delta(deltas, staged)
        d_right = self.right.delta(deltas, staged)
        prof = staged.get(PROF_KEY)
        t0 = perf_counter_ns() if prof is not None else 0
        rows_in = len(d_left) + len(d_right)
        if not d_left and not d_right:
            if prof is not None:
                prof.node(self, perf_counter_ns() - t0, 0, 0)
            staged[memo] = EMPTY_COUNTS
            return EMPTY_COUNTS
        if not d_right:
            # single-sided batch (the common case): one fused probe loop,
            # plain stores, provably no zero counts to filter
            result: dict[tuple, int] = {}
            self._probe_left(d_left.items(), self.right.probe_table().get, result)
            self.right.probes += len(d_left)
            if prof is not None:
                prof.node(self, perf_counter_ns() - t0, rows_in, len(result))
            staged[memo] = result
            return result
        if not d_left:
            result = {}
            self._probe_right(d_right.items(), self.left.probe_table().get, result)
            self.left.probes += len(d_right)
            if prof is not None:
                prof.node(self, perf_counter_ns() - t0, rows_in, len(result))
            staged[memo] = result
            return result
        merge = self._merge
        out: dict[tuple, int] = defaultdict(int)
        key_of, probe = self._left_key, self.right.probe
        for t, count in d_left.items():
            for other, other_count in probe(key_of(t)).items():
                out[merge(t, other)] += count * other_count
        key_of, probe = self._right_key, self.left.probe
        for t, count in d_right.items():
            for other, other_count in probe(key_of(t)).items():
                out[merge(other, t)] += count * other_count
        cross = join_counts_columnar(
            d_left, d_right, self._left_key, self._right_key, merge
        )
        for t, count in cross.items():
            out[t] += count
        result = {t: c for t, c in out.items() if c}
        if prof is not None:
            prof.node(self, perf_counter_ns() - t0, rows_in, len(result))
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.left.advance(staged)
        self.right.advance(staged)

    def rebuild(self) -> None:
        self.left.rebuild()
        self.right.rebuild()

    def describe(self, depth: int) -> list[str]:
        head = "  " * depth + f"join[on={self.on}]"
        return ([head] + self.left.describe(depth + 1)
                + self.right.describe(depth + 1))


class _CAggregateNode:
    """Self-maintained count/sum group-by over the compiled fold kernel.

    Keeps one state vector per live group: ``[row_count, agg_1, ...]``.
    An update folds the child delta's per-group contributions into the
    old states (one synthesized loop — see
    :class:`~repro.relational.columnar.AggregateKernel`) and emits
    old-tuple deletions / new-tuple insertions for exactly the touched
    groups.
    """

    __slots__ = ("expr", "child", "layout", "_kernel", "_groups", "_db")

    def __init__(self, expr: Aggregate, child, db, seed_groups=None) -> None:
        self.expr = expr
        self.child = child
        self._db = db
        self._kernel = AggregateKernel(expr, child.layout)
        self.layout = self._kernel.layout
        self._groups: dict[tuple, list] = {}
        if seed_groups is not None:
            # Warm start: adopt exported group states (copied — the cache
            # payload must stay immutable) instead of evaluating the child.
            self._groups = {
                key: list(state) for key, state in seed_groups.items()
            }
        else:
            _, counts = _eval_columnar(expr.child, db)
            self._kernel.accumulate(self._groups, counts)

    def delta(self, deltas, staged) -> Mapping[tuple, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        d_child = self.child.delta(deltas, staged)
        prof = staged.get(PROF_KEY)
        t0 = perf_counter_ns() if prof is not None else 0
        if not d_child:
            if prof is not None:
                prof.node(self, perf_counter_ns() - t0, 0, 0)
            staged[memo] = EMPTY_COUNTS
            return EMPTY_COUNTS
        contributions: dict[tuple, list] = {}
        self._kernel.accumulate(contributions, d_child)
        out, new_states = self._kernel.delta_pass(self._groups, contributions)
        staged[id(self)] = new_states
        result = {t: c for t, c in out.items() if c}
        if prof is not None:
            prof.node(self, perf_counter_ns() - t0, len(d_child), len(result))
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.child.advance(staged)
        # ``pop`` for the same shared-node reason as _CMatInput.advance.
        for key, state in staged.pop(id(self), {}).items():
            if state[0] != 0:
                self._groups[key] = state
            else:
                self._groups.pop(key, None)

    def rebuild(self) -> None:
        self.child.rebuild()
        self._groups = {}
        _, counts = _eval_columnar(self.expr.child, self._db)
        self._kernel.accumulate(self._groups, counts)

    def describe(self, depth: int) -> list[str]:
        aggs = ", ".join(str(a) for a in self.expr.aggregates)
        head = ("  " * depth
                + f"aggregate[by={self.expr.group_by}; {aggs}] "
                + f"[{len(self._groups)} group states]")
        return [head] + self.child.describe(depth + 1)


class MaintenancePlan:
    """An expression compiled for indexed incremental maintenance.

    Compilation evaluates each auxiliary materialization once (O(|base|),
    amortized over the view's lifetime); every subsequent update costs
    O(|delta| x matching rows).  The plan assumes the database advances
    only through the coordinated ``propagate``/``apply_deltas``/
    ``advance`` sequence — after any out-of-band mutation call
    :meth:`rebuild`.

    ``engine`` selects the node family (see the module docstring):
    ``"columnar"`` (default) or ``"rows"`` (the reference path in
    :mod:`repro.relational.plan_reference`).  Both expose the same
    protocol and emit identical deltas.
    """

    def __init__(
        self,
        expression: Expression,
        database,
        library: "PlanLibrary | None" = None,
        engine: str | None = None,
        preload: Mapping[str, object] | None = None,
    ) -> None:
        if engine is None:
            engine = library.engine if library is not None else "columnar"
        if engine not in _ENGINES:
            raise ExpressionError(
                f"unknown plan engine {engine!r}; expected one of {_ENGINES}"
            )
        if library is not None and engine != library.engine:
            raise ExpressionError(
                f"plan engine {engine!r} conflicts with library engine "
                f"{library.engine!r}"
            )
        self.expression = expression
        self.engine = engine
        self._db = database
        self._library = library
        #: every node this plan reads, interned or private (may contain
        #: duplicates when a subexpression occurs twice in the tree).
        self._nodes: list = []
        self._schemas = dict(database.schemas)
        self.schema = expression.infer_schema(self._schemas)
        # Warm-start auxiliary state (see export_aux): only private
        # columnar compiles consume it — interned library nodes may be
        # shared with plans the seed knows nothing about, and the rows
        # engine is the reference path (always recomputed fresh).
        self._preload = (
            dict(preload)
            if preload and library is None and engine == "columnar"
            else None
        )
        self._root = self._compile(expression)
        self._preload = None
        self._staged: dict = {}
        self.propagations = 0
        #: opt-in per-node profiler (see :mod:`repro.obs.profiler`); when
        #: set, every propagate stages it under ``PROF_KEY`` so the
        #: operator nodes record exclusive timings and row volumes.
        self.profiler = None

    def enable_profiling(self, profiler=None):
        """Attach a :class:`~repro.obs.profiler.PlanProfiler` (made if None).

        Library-compiled plans should enable profiling on the
        :class:`PlanLibrary` instead — the library stages one profiler
        for the whole round.  Returns the active profiler.
        """
        if profiler is None:
            from repro.obs.profiler import PlanProfiler

            profiler = PlanProfiler()
        self.profiler = profiler
        return profiler

    # -- compilation -------------------------------------------------------
    def _intern(self, key: tuple, build):
        """One node per distinct (expression, probe role) across the library.

        Without a library every plan builds private nodes; with one,
        equal keys resolve to the same object so plans share delta
        evaluation, probes and auxiliary state.
        """
        if self._library is None:
            node = build()
        else:
            node = self._library._intern(key, build)
        self._nodes.append(node)
        return node

    def _compile(self, expr: Expression):
        return self._intern(("node", expr), lambda: self._build(expr))

    def _build(self, expr: Expression):
        rows = self.engine == "rows"
        if isinstance(expr, BaseRelation):
            relation = self._db.relation(expr.name)
            if rows:
                return _rows.BaseNode(expr.name, relation)
            return _CBaseNode(expr.name, relation)
        if isinstance(expr, Select):
            child = self._compile(expr.child)
            if rows:
                return _rows.SelectNode(expr.predicate, child)
            return _CSelectNode(expr.predicate, child)
        if isinstance(expr, Project):
            child = self._compile(expr.child)
            if rows:
                return _rows.ProjectNode(expr.names, child)
            return _CProjectNode(expr.names, child)
        if isinstance(expr, Join):
            on = expr.join_attributes(self._schemas)
            left = self._compile_input(expr.left, on)
            right = self._compile_input(expr.right, on)
            if rows:
                return _rows.JoinNode(left, right, on)
            return _CJoinNode(left, right, on)
        if isinstance(expr, Aggregate):
            child = self._compile(expr.child)
            if rows:
                return _rows.AggregateNode(expr, child, self._db)
            seed_groups = (
                self._preload.get(f"agg|{expr}")
                if self._preload is not None
                else None
            )
            return _CAggregateNode(expr, child, self._db, seed_groups)
        raise PlanUnsupported(
            f"no maintenance plan for {type(expr).__name__} nodes"
        )

    def _compile_input(self, expr: Expression, on: tuple[str, ...]):
        """Compile a join operand: indexed base probe or aux materialization."""
        rows = self.engine == "rows"
        if isinstance(expr, BaseRelation):
            if rows:
                build = lambda: _rows.BaseNode(
                    expr.name, self._db.relation(expr.name), probe_key=on
                )
            else:
                build = lambda: _CBaseNode(
                    expr.name, self._db.relation(expr.name), probe_key=on
                )
            return self._intern(("input", expr, on), build)
        if rows:
            build = lambda: _rows.MatInput(expr, self._compile(expr), self._db, on)
        else:
            seed = (
                self._preload.get(f"input|{','.join(on)}|{expr}")
                if self._preload is not None
                else None
            )
            build = lambda: _CMatInput(
                expr, self._compile(expr), self._db, on, seed
            )
        return self._intern(("input", expr, on), build)

    # -- maintenance -------------------------------------------------------
    def _to_delta(self, counts) -> Delta:
        """The facade boundary: engine-native counts -> a facade Delta."""
        if self.engine == "rows":
            return Delta(counts)
        return Delta(counts_to_rows(self._root.layout, counts))

    def propagate(self, base_deltas: Mapping[str, Delta]) -> Delta:
        """The view delta induced by ``base_deltas`` on the pre-state.

        Pure: neither the database nor the plan's auxiliary state is
        mutated.  Stages the per-subexpression deltas that a following
        :meth:`advance` will fold into the auxiliary structures.
        """
        self._staged = {}
        if self.profiler is not None:
            self._staged[PROF_KEY] = self.profiler
        counts = self._root.delta(base_deltas, self._staged)
        self.propagations += 1
        return self._to_delta(counts)

    def propagate_counts(
        self, base_counts: Mapping[str, Mapping[tuple, int]]
    ) -> ColumnarDelta:
        """Fully-columnar :meth:`propagate`: tuple bags in, tuple bag out.

        ``base_counts`` maps relation names to signed non-zero counts
        keyed by layout-positioned value tuples (attribute names sorted —
        the same order :func:`~repro.relational.columnar.layout_of`
        produces).
        The batch never crosses the facade: no ``Row`` objects are built
        on either side, which is where a batch pipeline's constant factor
        lives (see docs/engine.md).  Staging/advance semantics are
        identical to :meth:`propagate`.
        """
        if self.engine != "columnar":
            raise ExpressionError(
                "propagate_counts needs the columnar engine; this plan "
                f"runs engine={self.engine!r}"
            )
        self._staged = {}
        if self.profiler is not None:
            self._staged[PROF_KEY] = self.profiler
        for name, counts in base_counts.items():
            self._staged[("bd", name)] = counts
        counts = self._root.delta({}, self._staged)
        self.propagations += 1
        return _adopt_counts(self._root, counts, base_counts)

    def advance(self) -> None:
        """Fold the most recent :meth:`propagate`'s staged deltas in.

        Call exactly once per propagated batch, alongside applying the
        same base deltas to the database.  A propagate whose batch was
        abandoned is simply superseded by the next propagate.
        """
        self._root.advance(self._staged)
        self._staged = {}

    def rebuild(self) -> None:
        """Recompute all auxiliary state from the database (post-drift)."""
        self._staged = {}
        self._root.rebuild()

    def export_aux(self) -> dict[str, object]:
        """The plan's auxiliary state as plain data (for ``repro.cache``).

        Covers the two expensive-to-rebuild node kinds: auxiliary join
        materializations (``input|<on>|<expr>`` → ``(layout, counts)``)
        and aggregate group states (``agg|<expr>`` → ``{key: state}``).
        Feeding the result back as ``preload=`` to a fresh compile of the
        same expression over the same base state skips their evaluation.
        The rows engine exports nothing (it always recompiles fresh).
        """
        if self.engine != "columnar":
            return {}
        out: dict[str, object] = {}
        for node in self._nodes:
            if isinstance(node, _CMatInput):
                key = f"input|{','.join(node.probe_key)}|{node.expr}"
                out[key] = (
                    tuple(node.layout),
                    dict(node.store.counts_view()),
                )
            elif isinstance(node, _CAggregateNode):
                out[f"agg|{node.expr}"] = {
                    key: list(state)
                    for key, state in node._groups.items()
                }
        return out

    # -- inspection ---------------------------------------------------------
    def describe(self) -> str:
        """A textual rendering of the compiled plan tree."""
        return "\n".join(self._root.describe(0))

    def node_count(self) -> int:
        """Distinct node objects this plan reads (shared ones count once)."""
        return len({id(node) for node in self._nodes})

    def probe_count(self) -> int:
        """Total index probes issued by this plan's nodes so far.

        Shared nodes report their library-wide probe totals — by design:
        under MQO one probe serves every plan reading the node.
        """
        seen: dict[int, int] = {}
        for node in self._nodes:
            seen[id(node)] = getattr(node, "probes", 0)
        return sum(seen.values())

    def __repr__(self) -> str:
        return (f"MaintenancePlan({self.expression}, engine={self.engine!r}, "
                f"propagations={self.propagations})")


class PlanLibrary:
    """Multi-query optimization across the plans of one merge shard.

    Compiling through a library interns every (subexpression, probe role)
    once, so the compiled :class:`MaintenancePlan`s of same-shard views
    literally share node objects: the join both views read is evaluated
    once per batch, its auxiliary materialization is maintained once, and
    one index probe feeds every reader.  All plans in a library run the
    same ``engine`` — sharing a node between engines would make its
    native delta format ambiguous.

    The library owns the propagation round:

    * :meth:`propagate_all` runs every plan against one shared staging
      dict — per-batch node memoization means each shared node computes
      its delta exactly once per round (under the columnar engine even
      the batch's Row->tuple base-delta conversion is shared);
    * :meth:`advance_all` advances every plan; stateful shared nodes
      (aux materializations, aggregate group states) consume their staged
      entry on first advance and no-op after, so shared state moves
      forward exactly once per batch.

    Do **not** drive a library-compiled plan's ``propagate``/``advance``
    individually against different batches: shared stateful nodes can
    only advance in lock-step.  (One batch, many views — that is the
    point of sharing.)
    """

    def __init__(self, database, engine: str = "columnar") -> None:
        if engine not in _ENGINES:
            raise ExpressionError(
                f"unknown plan engine {engine!r}; expected one of {_ENGINES}"
            )
        self._db = database
        self.engine = engine
        self._interned: dict[tuple, object] = {}
        self._uses: dict[tuple, int] = {}
        self.plans: dict[str, MaintenancePlan] = {}
        self.profiler = None

    def enable_profiling(self, profiler=None):
        """Profile every library round (one profiler, shared nodes once)."""
        if profiler is None:
            from repro.obs.profiler import PlanProfiler

            profiler = PlanProfiler()
        self.profiler = profiler
        return profiler

    # -- compilation -------------------------------------------------------
    def _intern(self, key: tuple, build):
        node = self._interned.get(key)
        if node is None:
            node = build()
            self._interned[key] = node
            self._uses[key] = 1
        else:
            self._uses[key] += 1
        return node

    def compile(self, name: str, expression: Expression) -> MaintenancePlan:
        """Compile ``expression`` as view ``name``, sharing where possible."""
        if name in self.plans:
            raise ExpressionError(f"plan {name!r} already in the library")
        plan = MaintenancePlan(expression, self._db, library=self)
        self.plans[name] = plan
        return plan

    # -- maintenance -------------------------------------------------------
    def propagate_all(self, base_deltas: Mapping[str, Delta]) -> dict[str, Delta]:
        """Every view's delta for one batch, shared work computed once."""
        staged: dict = {}
        if self.profiler is not None:
            staged[PROF_KEY] = self.profiler
        out: dict[str, Delta] = {}
        for name, plan in self.plans.items():
            plan._staged = staged
            out[name] = plan._to_delta(plan._root.delta(base_deltas, staged))
            plan.propagations += 1
        return out

    def propagate_all_counts(
        self, base_counts: Mapping[str, Mapping[tuple, int]]
    ) -> dict[str, ColumnarDelta]:
        """Fully-columnar :meth:`propagate_all`: one raw batch, every view.

        The library twin of :meth:`MaintenancePlan.propagate_counts`:
        ``base_counts`` holds signed counts keyed by layout-positioned
        tuples, the shared staging dict carries them straight into every
        plan's base nodes, and each view's delta comes back as a
        :class:`~repro.relational.columnar.ColumnarDelta` — no ``Row``
        is built anywhere in the round.
        """
        if self.engine != "columnar":
            raise ExpressionError(
                "propagate_all_counts needs the columnar engine; this "
                f"library runs engine={self.engine!r}"
            )
        staged: dict = {}
        if self.profiler is not None:
            staged[PROF_KEY] = self.profiler
        for name, counts in base_counts.items():
            staged[("bd", name)] = counts
        out: dict[str, ColumnarDelta] = {}
        for name, plan in self.plans.items():
            plan._staged = staged
            out[name] = _adopt_counts(
                plan._root, plan._root.delta({}, staged), base_counts
            )
            plan.propagations += 1
        return out

    def advance_all(self) -> None:
        """Advance every plan's auxiliary state exactly once for the batch."""
        for plan in self.plans.values():
            plan.advance()

    # -- inspection ---------------------------------------------------------
    def probe_count(self) -> int:
        """Total index probes across all unique nodes in the library."""
        return sum(
            getattr(node, "probes", 0) for node in self._interned.values()
        )

    def report(self) -> dict:
        """Compile-time sharing summary (the MQO report).

        ``total_nodes`` counts node references across all plans (what N
        independent compilations would have built); ``unique_nodes`` is
        what the library actually holds; their difference is the work
        sharing removed.  ``shared`` lists every subexpression with more
        than one reader, heaviest first.
        """
        total = sum(len(plan._nodes) for plan in self.plans.values())
        shared = [
            {
                "key": self._describe_key(key),
                "readers": uses,
            }
            for key, uses in sorted(
                self._uses.items(),
                key=lambda item: (-item[1], self._describe_key(item[0])),
            )
            if uses > 1
        ]
        return {
            "plans": len(self.plans),
            "total_nodes": total,
            "unique_nodes": len(self._interned),
            "nodes_saved": total - len(self._interned),
            "shared_subexpressions": len(shared),
            "shared": shared,
        }

    @staticmethod
    def _describe_key(key: tuple) -> str:
        kind, expr = key[0], key[1]
        suffix = f" probe={key[2]}" if kind == "input" else ""
        return f"{expr}{suffix}"
