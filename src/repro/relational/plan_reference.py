"""The row-dict maintenance engine (``engine="rows"``) — the reference.

These are the node classes :class:`~repro.relational.plan.MaintenancePlan`
compiled to before the columnar engine landed: every delta is a
``Row -> signed count`` bag, predicates are interpreted per row, join
merges go through :meth:`Row.merge`, and probes read the facade
:class:`~repro.relational.indexes.HashIndex`.  The family is kept for two
jobs:

* **correctness reference** — the hypothesis properties in
  ``tests/relational/test_columnar_properties.py`` pin the columnar
  engine bag-for-bag against this one over random expressions and
  deltas;
* **benchmark baseline** — ``benchmarks/test_b22_columnar.py`` measures
  the columnar engine's speedup against exactly this pre-change path.

The node protocol (shared with the columnar family in ``plan.py``):
``delta(deltas, staged)`` computes a node's signed delta purely,
memoizing per batch under ``("delta", id(self))`` in the shared staging
dict; probe-role nodes expose ``probe(key)`` and a ``probes`` counter;
``advance(staged)`` folds staged state forward, with stateful nodes using
``staged.pop`` so a node shared across plans (PlanLibrary) advances
exactly once; ``rebuild()`` re-derives state from the database;
``describe(depth)`` renders the plan tree.
"""

from __future__ import annotations

from collections import defaultdict
from types import MappingProxyType
from typing import Mapping

from repro.relational.algebra import _eval_counts, join_counts
from repro.relational.delta import Delta
from repro.relational.expressions import Aggregate, Expression
from repro.relational.relation import Relation
from repro.relational.rows import Row

_EMPTY: Mapping[Row, int] = MappingProxyType({})


class BaseNode:
    """A base-relation leaf: deltas come straight from the update batch.

    When the leaf feeds a join (``probe_key`` set), probes go through the
    live relation's hash index on the join attributes.  The relation
    object is resolved once at compile time; the index is re-fetched per
    probe so a ``clear``/``replace_all`` (which drops indexes) can never
    leave a stale probe structure behind.
    """

    __slots__ = ("name", "relation", "probe_key", "probes")

    def __init__(self, name: str, relation: Relation, probe_key=None) -> None:
        self.name = name
        self.relation = relation
        self.probe_key = probe_key
        self.probes = 0

    def delta(self, deltas: Mapping[str, Delta], staged: dict) -> Mapping[Row, int]:
        delta = deltas.get(self.name)
        return delta.counts() if delta else _EMPTY

    def probe(self, key: tuple) -> Mapping[Row, int]:
        self.probes += 1
        return self.relation.index_on(self.probe_key).bucket(key)

    def advance(self, staged: dict) -> None:
        pass  # the caller advances the base database itself

    def rebuild(self) -> None:
        pass

    def describe(self, depth: int) -> list[str]:
        probe = f" [indexed on {self.probe_key}]" if self.probe_key is not None else ""
        return ["  " * depth + f"base {self.name}{probe}"]


class SelectNode:
    __slots__ = ("predicate", "child")

    def __init__(self, predicate, child) -> None:
        self.predicate = predicate
        self.child = child

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        child = self.child.delta(deltas, staged)
        out: Mapping[Row, int] = _EMPTY
        if child:
            out = {r: c for r, c in child.items() if self.predicate.evaluate(r)}
        staged[memo] = out
        return out

    def advance(self, staged) -> None:
        self.child.advance(staged)

    def rebuild(self) -> None:
        self.child.rebuild()

    def describe(self, depth: int) -> list[str]:
        return ["  " * depth + f"select[{self.predicate}]"] + self.child.describe(depth + 1)


class ProjectNode:
    __slots__ = ("names", "child")

    def __init__(self, names, child) -> None:
        self.names = names
        self.child = child

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        child = self.child.delta(deltas, staged)
        result: Mapping[Row, int] = _EMPTY
        if child:
            out: dict[Row, int] = defaultdict(int)
            for row, count in child.items():
                out[row.project(self.names)] += count
            result = {r: c for r, c in out.items() if c}
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.child.advance(staged)

    def rebuild(self) -> None:
        self.child.rebuild()

    def describe(self, depth: int) -> list[str]:
        names = ", ".join(self.names)
        return ["  " * depth + f"project[{names}]"] + self.child.describe(depth + 1)


class MatInput:
    """A join input materialized as an auxiliary relation.

    ``delta`` computes the wrapped subexpression's delta and stages it;
    ``advance`` folds the staged delta into the auxiliary relation, whose
    hash index on the join attributes is what ``probe`` reads.
    """

    __slots__ = ("expr", "node", "rel", "probe_key", "probes", "_db")

    def __init__(self, expr: Expression, node, db, probe_key) -> None:
        self.expr = expr
        self.node = node
        self._db = db
        self.probe_key = probe_key
        self.probes = 0
        self.rel = Relation.from_counts(_eval_counts(expr, db))

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        if id(self) in staged:
            return staged[id(self)]
        counts = self.node.delta(deltas, staged)
        staged[id(self)] = counts
        return counts

    def probe(self, key: tuple) -> Mapping[Row, int]:
        self.probes += 1
        return self.rel.index_on(self.probe_key).bucket(key)

    def advance(self, staged) -> None:
        self.node.advance(staged)
        # ``pop``: when plans share this node (PlanLibrary), the first
        # owner's advance consumes the staged delta and later owners'
        # advances are no-ops — never a double application.
        counts = staged.pop(id(self), None)
        if counts:
            # Delta.apply_to validates deletions — any underflow here means
            # the base data was mutated behind the plan's back.
            Delta(counts).apply_to(self.rel)

    def rebuild(self) -> None:
        self.node.rebuild()
        self.rel = Relation.from_counts(_eval_counts(self.expr, self._db))

    def describe(self, depth: int) -> list[str]:
        head = ("  " * depth
                + f"aux materialization [indexed on {self.probe_key}, "
                + f"{len(self.rel)} rows] of:")
        return [head] + self.node.describe(depth + 1)


class JoinNode:
    """d(L |><| R) = dL |><| R_old + L_old |><| dR + dL |><| dR.

    The old sides are never rebuilt: each single-delta term probes the
    opposite input's index with only the delta rows' join keys.
    """

    __slots__ = ("left", "right", "on")

    def __init__(self, left, right, on) -> None:
        self.left = left
        self.right = right
        self.on = on

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        d_left = self.left.delta(deltas, staged)
        d_right = self.right.delta(deltas, staged)
        if not d_left and not d_right:
            staged[memo] = _EMPTY
            return _EMPTY
        on = self.on
        out: dict[Row, int] = defaultdict(int)
        if d_left:
            for row, count in d_left.items():
                key = tuple(row[a] for a in on)
                for other, other_count in self.right.probe(key).items():
                    out[row.merge(other)] += count * other_count
        if d_right:
            for row, count in d_right.items():
                key = tuple(row[a] for a in on)
                for other, other_count in self.left.probe(key).items():
                    out[other.merge(row)] += count * other_count
        if d_left and d_right:
            for row, count in join_counts(d_left, d_right, on).items():
                out[row] += count
        result = {r: c for r, c in out.items() if c}
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.left.advance(staged)
        self.right.advance(staged)

    def rebuild(self) -> None:
        self.left.rebuild()
        self.right.rebuild()

    def describe(self, depth: int) -> list[str]:
        head = "  " * depth + f"join[on={self.on}]"
        return ([head] + self.left.describe(depth + 1)
                + self.right.describe(depth + 1))


class AggregateNode:
    """Self-maintained count/sum group-by.

    Keeps one state vector per live group: ``[row_count, agg_1, ...]``.
    An update folds the child delta's per-group contributions into the old
    states and emits old-row deletions / new-row insertions for exactly
    the touched groups — no re-evaluation of the child (the columnar
    engine's :class:`~repro.relational.columnar.AggregateKernel` is the
    compiled form of the same fold).
    """

    __slots__ = ("expr", "child", "group_by", "aggregates", "_groups", "_db")

    def __init__(self, expr: Aggregate, child, db) -> None:
        self.expr = expr
        self.child = child
        self.group_by = expr.group_by
        self.aggregates = expr.aggregates
        self._db = db
        self._groups: dict[tuple, list] = {}
        self._accumulate(self._groups, _eval_counts(expr.child, db))

    def _accumulate(self, groups: dict[tuple, list], counts: Mapping[Row, int]) -> None:
        width = len(self.aggregates)
        for row, count in counts.items():
            key = tuple(row[a] for a in self.group_by)
            state = groups.setdefault(key, [0] * (width + 1))
            state[0] += count
            for index, spec in enumerate(self.aggregates, start=1):
                if spec.fn == "count":
                    state[index] += count
                else:
                    state[index] += count * row[spec.attr]

    def _row_of(self, key: tuple, state: list) -> Row:
        values = dict(zip(self.group_by, key))
        for index, spec in enumerate(self.aggregates, start=1):
            values[spec.alias] = state[index]
        return Row(values)

    def delta(self, deltas, staged) -> Mapping[Row, int]:
        memo = ("delta", id(self))
        if memo in staged:
            return staged[memo]
        d_child = self.child.delta(deltas, staged)
        if not d_child:
            staged[memo] = _EMPTY
            return _EMPTY
        contributions: dict[tuple, list] = {}
        self._accumulate(contributions, d_child)
        out: dict[Row, int] = defaultdict(int)
        new_states: dict[tuple, list] = {}
        for key, d_state in contributions.items():
            old_state = self._groups.get(key)
            if old_state is None:
                new_state = d_state
            else:
                new_state = [o + d for o, d in zip(old_state, d_state)]
                out[self._row_of(key, old_state)] -= 1
            if new_state[0] != 0:
                out[self._row_of(key, new_state)] += 1
            new_states[key] = new_state
        staged[id(self)] = new_states
        result = {r: c for r, c in out.items() if c}
        staged[memo] = result
        return result

    def advance(self, staged) -> None:
        self.child.advance(staged)
        # ``pop`` for the same shared-node reason as MatInput.advance.
        for key, state in staged.pop(id(self), {}).items():
            if state[0] != 0:
                self._groups[key] = state
            else:
                self._groups.pop(key, None)

    def rebuild(self) -> None:
        self.child.rebuild()
        self._groups = {}
        self._accumulate(self._groups, _eval_counts(self.expr.child, self._db))

    def describe(self, depth: int) -> list[str]:
        aggs = ", ".join(str(a) for a in self.aggregates)
        head = ("  " * depth
                + f"aggregate[by={self.group_by}; {aggs}] "
                + f"[{len(self._groups)} group states]")
        return [head] + self.child.describe(depth + 1)
