"""Incremental (counting-style) delta propagation for SPJ expressions.

A :class:`Delta` is a signed-count bag of rows: positive counts are
insertions, negative counts are deletions.  ``propagate_delta`` pushes base
relation deltas through an expression using the classic counting rules
(Gupta & Mumick; Griffin & Libkin for bags):

* ``d(sigma_p(E))   = sigma_p(d(E))``
* ``d(pi_A(E))      = pi_A(d(E))``          (counts add)
* ``d(L join R)     = dL join R_old  +  L_old join dR  +  dL join dR``

The join rule is exact for arbitrary mixes of insertions and deletions
thanks to signed multiplicities.

``propagate_delta`` here is the *unindexed reference* implementation: it
re-derives each join's old sides and re-evaluates aggregate inputs
(``_eval_counts_group_restricted``) against the pre-state on every call,
so it costs O(|base|) per update.  The hot path is the compiled
:class:`~repro.relational.plan.MaintenancePlan` (columnar kernels,
indexed probes, self-maintained aggregate state — see
``docs/engine.md``); view managers and :class:`MaterializedView` fall
back to this module only when plan compilation raises
:class:`~repro.relational.plan.PlanUnsupported`, and the test suite uses
it as the equivalence oracle for both plan engines.
"""

from __future__ import annotations

from collections import defaultdict
from types import MappingProxyType
from typing import Iterable, Mapping

from repro.errors import ExpressionError, RelationError
from repro.relational.algebra import _eval_counts, aggregate_counts, join_counts
from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
)
from repro.relational.relation import Relation
from repro.relational.rows import Row


class Delta:
    """A signed multiset of rows (insertions > 0, deletions < 0)."""

    __slots__ = ("_counts",)

    def __init__(self, counts: Mapping[Row, int] | None = None) -> None:
        self._counts: dict[Row, int] = {}
        if counts:
            for row, count in counts.items():
                if count:
                    self._counts[row] = count

    # -- constructors ------------------------------------------------------
    @classmethod
    def insert(cls, row: Row, count: int = 1) -> "Delta":
        return cls({row: count})

    @classmethod
    def delete(cls, row: Row, count: int = 1) -> "Delta":
        return cls({row: -count})

    @classmethod
    def modify(cls, old: Row, new: Row) -> "Delta":
        if old == new:
            return cls()
        return cls({old: -1, new: 1})

    @classmethod
    def between(cls, old: Relation, new: Relation) -> "Delta":
        """The delta that transforms ``old`` into ``new``."""
        counts: dict[Row, int] = defaultdict(int)
        for row, count in new.counts():
            counts[row] += count
        for row, count in old.counts():
            counts[row] -= count
        return cls(counts)

    # -- inspection ----------------------------------------------------------
    def counts(self) -> Mapping[Row, int]:
        """Zero-copy read-only view of the signed row->count mapping.

        Deltas are immutable after construction, so the view is stable;
        callers that need an independent ``dict`` must copy explicitly.
        """
        return MappingProxyType(self._counts)

    def count(self, row: Row) -> int:
        return self._counts.get(row, 0)

    def insertions(self) -> list[tuple[Row, int]]:
        """(row, count) pairs with positive counts, deterministic order."""
        return [(r, c) for r, c in sorted(self._counts.items()) if c > 0]

    def deletions(self) -> list[tuple[Row, int]]:
        """(row, count) pairs as positive deletion counts, deterministic order."""
        return [(r, -c) for r, c in sorted(self._counts.items()) if c < 0]

    def is_empty(self) -> bool:
        return not self._counts

    def __bool__(self) -> bool:
        return bool(self._counts)

    def __len__(self) -> int:
        """Total magnitude: rows inserted plus rows deleted."""
        return sum(abs(c) for c in self._counts.values())

    def __eq__(self, other: object) -> bool:
        if not isinstance(other, Delta):
            return NotImplemented
        return self._counts == other._counts

    def __hash__(self) -> int:
        return hash(frozenset(self._counts.items()))

    def __repr__(self) -> str:
        parts = [
            f"{'+' if c > 0 else ''}{c}*{row!r}"
            for row, c in sorted(self._counts.items())
        ]
        return f"Delta({', '.join(parts)})"

    # -- algebra ---------------------------------------------------------------
    def combined(self, other: "Delta") -> "Delta":
        """The delta equivalent to applying self then ``other``."""
        counts = defaultdict(int, self._counts)
        for row, count in other._counts.items():
            counts[row] += count
        return Delta(counts)

    def negated(self) -> "Delta":
        return Delta({row: -c for row, c in self._counts.items()})

    def check_applicable(self, relation: Relation) -> None:
        """Raise :class:`RelationError` if applying would underflow.

        Split out from :meth:`apply_to` so multi-relation appliers (e.g.
        ``Database.apply_deltas``) can validate every delta before
        mutating anything, instead of dry-running on a full copy.
        """
        for row, count in self._counts.items():
            if count < 0 and relation.multiplicity(row) < -count:
                raise RelationError(
                    f"delta deletes {-count} copies of {row} but relation "
                    f"holds {relation.multiplicity(row)}"
                )

    def apply_to(self, relation: Relation) -> None:
        """Mutate ``relation`` by this delta.

        Deletions are applied first so a modify (delete+insert of rows that
        may collide) never spuriously underflows.  Raises
        :class:`RelationError` if a deletion exceeds the multiplicity
        present — that always indicates a maintenance bug upstream.
        """
        self.check_applicable(relation)
        self._apply_unchecked(relation)

    def _apply_unchecked(self, relation: Relation) -> None:
        """Apply without re-validating — caller ran ``check_applicable``."""
        for row, count in self._counts.items():
            if count < 0:
                relation.delete(row, -count)
        for row, count in self._counts.items():
            if count > 0:
                relation.insert(row, count)


def empty_delta() -> Delta:
    return Delta()


def propagate_delta(
    expr: Expression,
    pre_state: "DatabaseLike",
    base_deltas: Mapping[str, Delta],
) -> Delta:
    """Compute the view delta induced by ``base_deltas`` on ``expr``.

    ``pre_state`` must expose the base relations *before* the deltas were
    applied.  Relations not mentioned in ``base_deltas`` are unchanged.
    """
    counts = _propagate(expr, pre_state, base_deltas)
    return Delta(counts)


class DatabaseLike:
    """Protocol sketch (see :mod:`repro.relational.algebra`)."""


def _propagate(
    expr: Expression,
    pre: "DatabaseLike",
    deltas: Mapping[str, Delta],
) -> Mapping[Row, int]:
    if isinstance(expr, BaseRelation):
        delta = deltas.get(expr.name)
        # The view is read-only downstream, so no defensive copy is needed.
        return delta.counts() if delta else {}
    if isinstance(expr, Select):
        child = _propagate(expr.child, pre, deltas)
        return {r: c for r, c in child.items() if expr.predicate.evaluate(r)}
    if isinstance(expr, Project):
        child = _propagate(expr.child, pre, deltas)
        out: dict[Row, int] = defaultdict(int)
        for row, count in child.items():
            out[row.project(expr.names)] += count
        return {r: c for r, c in out.items() if c}
    if isinstance(expr, Join):
        on = expr.join_attributes(pre.schemas)
        d_left = _propagate(expr.left, pre, deltas)
        d_right = _propagate(expr.right, pre, deltas)
        # Skip evaluating an old side entirely when the opposite delta is
        # empty — the common case when an update touches one relation.
        out: dict[Row, int] = defaultdict(int)
        if d_left:
            right_old = _eval_counts(expr.right, pre)
            for row, count in join_counts(d_left, right_old, on).items():
                out[row] += count
        if d_right:
            left_old = _eval_counts(expr.left, pre)
            for row, count in join_counts(left_old, d_right, on).items():
                out[row] += count
        if d_left and d_right:
            for row, count in join_counts(d_left, d_right, on).items():
                out[row] += count
        return {r: c for r, c in out.items() if c}
    if isinstance(expr, Aggregate):
        return _propagate_aggregate(expr, pre, deltas)
    raise ExpressionError(f"cannot propagate through {type(expr).__name__}")


def _propagate_aggregate(
    expr: Aggregate,
    pre: "DatabaseLike",
    deltas: Mapping[str, Delta],
) -> dict[Row, int]:
    """Delta rule for count/sum group-bys.

    Only the groups touched by the child delta can change.  For those
    groups, re-derive the old and new aggregate rows (the new ones from
    the old child restricted to affected groups plus the child delta —
    count/sum are self-maintainable, so no other rows are needed) and emit
    ``new - old``.  This handles group birth, death, and value-only
    changes (e.g. a modify that leaves the group's row count intact).
    """
    d_child = _propagate(expr.child, pre, deltas)
    if not d_child:
        return {}
    def key(row: Row) -> tuple:
        return tuple(row[a] for a in expr.group_by)

    affected = {key(row) for row in d_child}
    old_child = _eval_counts_group_restricted(
        expr.child, pre, expr.group_by, affected
    )
    old_affected = {
        row: count for row, count in old_child.items() if key(row) in affected
    }
    new_affected = dict(old_affected)
    for row, count in d_child.items():
        new_affected[row] = new_affected.get(row, 0) + count

    old_agg = aggregate_counts(expr, old_affected)
    new_agg = aggregate_counts(expr, new_affected)
    out: dict[Row, int] = defaultdict(int)
    for row, count in new_agg.items():
        out[row] += count
    for row, count in old_agg.items():
        out[row] -= count
    return {r: c for r, c in out.items() if c}


def _eval_counts_group_restricted(
    expr: Expression,
    pre: "DatabaseLike",
    group_by: tuple[str, ...],
    affected: set[tuple],
) -> Mapping[Row, int]:
    """Evaluate ``expr`` keeping only rows whose group key is ``affected``.

    The group-key restriction is pushed down as far as possible so the
    aggregate delta rule does not pay for re-joining and re-scanning
    unaffected groups: any sub-expression whose output carries *all* the
    group-by attributes gets filtered eagerly (sound because a dropped row
    can only produce output rows with the same group key — group-by
    attributes pass through selection, projection and join unchanged).
    Sub-expressions missing some group attribute are evaluated in full.
    """
    if not group_by:
        return _eval_counts(expr, pre)

    def keep(row: Row) -> bool:
        return tuple(row[a] for a in group_by) in affected

    def walk(node: Expression, can_filter: bool) -> Mapping[Row, int]:
        if isinstance(node, BaseRelation):
            counts = pre.relation(node.name).counts_view()
            if can_filter and all(
                a in pre.schemas[node.name] for a in group_by
            ):
                counts = {r: c for r, c in counts.items() if keep(r)}
            return counts
        if isinstance(node, Select):
            child = walk(node.child, can_filter)
            return {r: c for r, c in child.items() if node.predicate.evaluate(r)}
        if isinstance(node, Project):
            # Group attributes survive the projection (they are in the
            # aggregate's input schema), so filtering below is sound.
            child = walk(node.child, can_filter)
            out: dict[Row, int] = defaultdict(int)
            for row, count in child.items():
                out[row.project(node.names)] += count
            return dict(out)
        if isinstance(node, Join):
            on = node.join_attributes(pre.schemas)
            left = walk(node.left, can_filter)
            right = walk(node.right, can_filter)
            return join_counts(left, right, on)
        # Nested aggregates (or anything exotic): no pushdown below here.
        return _eval_counts(node, pre)

    counts = walk(expr, True)
    return {r: c for r, c in counts.items() if keep(r)}


def updates_to_deltas(updates: Iterable["UpdateLike"]) -> dict[str, Delta]:
    """Fold a sequence of base-table updates into per-relation deltas.

    ``updates`` are objects with ``relation`` (str) and ``as_delta()``
    (:class:`Delta`) — see :class:`repro.sources.update.Update`.
    """
    merged: dict[str, Delta] = {}
    for update in updates:
        existing = merged.get(update.relation, Delta())
        merged[update.relation] = existing.combined(update.as_delta())
    return merged


class UpdateLike:
    """Protocol sketch for :func:`updates_to_deltas`."""
