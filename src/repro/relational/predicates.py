"""Selection predicates over rows.

A small boolean AST: comparisons between attributes and constants, combined
with AND / OR / NOT.  Besides evaluation, predicates support
``restrict_to(attrs)`` — a sound weakening used for the irrelevant-update
filtering of Blakeley et al. that the paper cites ([7]): an update to
relation R cannot affect a view ``select p (... R ...)`` if the part of
``p`` that mentions only R's attributes already rejects the updated row.
"""

from __future__ import annotations

import operator
from dataclasses import dataclass
from typing import Callable, Mapping

from repro.errors import ExpressionError
from repro.relational.rows import Row


# ---------------------------------------------------------------------------
# operands
# ---------------------------------------------------------------------------

@dataclass(frozen=True, slots=True)
class Attr:
    """A reference to a named attribute of the input row."""

    name: str

    def value(self, row: Mapping[str, object]) -> object:
        if self.name not in row:
            raise ExpressionError(f"row {dict(row)!r} has no attribute {self.name!r}")
        return row[self.name]

    def attributes(self) -> frozenset[str]:
        return frozenset((self.name,))

    def __str__(self) -> str:
        return self.name


@dataclass(frozen=True, slots=True)
class Const:
    """A literal constant."""

    literal: object

    def value(self, row: Mapping[str, object]) -> object:
        return self.literal

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def __str__(self) -> str:
        return repr(self.literal)


Operand = Attr | Const

_OPS: dict[str, Callable[[object, object], bool]] = {
    "=": operator.eq,
    "!=": operator.ne,
    "<": operator.lt,
    "<=": operator.le,
    ">": operator.gt,
    ">=": operator.ge,
}


# ---------------------------------------------------------------------------
# predicate AST
# ---------------------------------------------------------------------------

class Predicate:
    """Base class for boolean conditions on rows."""

    __slots__ = ()

    def evaluate(self, row: Mapping[str, object]) -> bool:
        raise NotImplementedError

    def attributes(self) -> frozenset[str]:
        """All attribute names the predicate mentions."""
        raise NotImplementedError

    def restrict_to(self, attrs: frozenset[str]) -> "Predicate":
        """Weaken the predicate to one testable on ``attrs`` alone.

        The result is implied by the original predicate for any row
        extension, so ``restrict_to(attrs).evaluate(partial_row) == False``
        soundly proves no extension of ``partial_row`` satisfies the
        original.  Comparisons mentioning other attributes weaken to TRUE.
        """
        raise NotImplementedError

    # boolean combinators, for a fluent construction style
    def __and__(self, other: "Predicate") -> "Predicate":
        return And(self, other)

    def __or__(self, other: "Predicate") -> "Predicate":
        return Or(self, other)

    def __invert__(self) -> "Predicate":
        return Not(self)


@dataclass(frozen=True, slots=True)
class TruePredicate(Predicate):
    """The always-true predicate (selection with no condition)."""

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return True

    def attributes(self) -> frozenset[str]:
        return frozenset()

    def restrict_to(self, attrs: frozenset[str]) -> Predicate:
        return self

    def __str__(self) -> str:
        return "true"


TRUE = TruePredicate()


@dataclass(frozen=True, slots=True)
class Comparison(Predicate):
    """``lhs op rhs`` where operands are attributes or constants."""

    lhs: Operand
    op: str
    rhs: Operand

    def __post_init__(self) -> None:
        if self.op not in _OPS:
            raise ExpressionError(f"unknown comparison operator {self.op!r}")

    def evaluate(self, row: Mapping[str, object]) -> bool:
        left = self.lhs.value(row)
        right = self.rhs.value(row)
        try:
            return _OPS[self.op](left, right)
        except TypeError as exc:
            raise ExpressionError(
                f"cannot compare {left!r} {self.op} {right!r}"
            ) from exc

    def attributes(self) -> frozenset[str]:
        return self.lhs.attributes() | self.rhs.attributes()

    def restrict_to(self, attrs: frozenset[str]) -> Predicate:
        if self.attributes() <= attrs:
            return self
        return TRUE

    def __str__(self) -> str:
        return f"{self.lhs} {self.op} {self.rhs}"


@dataclass(frozen=True, slots=True)
class And(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return self.left.evaluate(row) and self.right.evaluate(row)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def restrict_to(self, attrs: frozenset[str]) -> Predicate:
        left = self.left.restrict_to(attrs)
        right = self.right.restrict_to(attrs)
        if isinstance(left, TruePredicate):
            return right
        if isinstance(right, TruePredicate):
            return left
        return And(left, right)

    def __str__(self) -> str:
        return f"({self.left} and {self.right})"


@dataclass(frozen=True, slots=True)
class Or(Predicate):
    left: Predicate
    right: Predicate

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return self.left.evaluate(row) or self.right.evaluate(row)

    def attributes(self) -> frozenset[str]:
        return self.left.attributes() | self.right.attributes()

    def restrict_to(self, attrs: frozenset[str]) -> Predicate:
        left = self.left.restrict_to(attrs)
        right = self.right.restrict_to(attrs)
        # A disjunction is only a sound restriction if *both* branches
        # remained informative; otherwise the whole OR weakens to TRUE.
        if isinstance(left, TruePredicate) or isinstance(right, TruePredicate):
            return TRUE
        return Or(left, right)

    def __str__(self) -> str:
        return f"({self.left} or {self.right})"


@dataclass(frozen=True, slots=True)
class Not(Predicate):
    child: Predicate

    def evaluate(self, row: Mapping[str, object]) -> bool:
        return not self.child.evaluate(row)

    def attributes(self) -> frozenset[str]:
        return self.child.attributes()

    def restrict_to(self, attrs: frozenset[str]) -> Predicate:
        # NOT cannot be weakened piecewise; keep it only if fully covered.
        if self.attributes() <= attrs:
            return self
        return TRUE

    def __str__(self) -> str:
        return f"(not {self.child})"


# ---------------------------------------------------------------------------
# convenience constructors
# ---------------------------------------------------------------------------

def _operand(value: object) -> Operand:
    if isinstance(value, (Attr, Const)):
        return value
    if isinstance(value, str) and value.isidentifier():
        # Bare identifiers in the fluent API are attribute references; use
        # Const("text") explicitly for string literals.
        return Attr(value)
    return Const(value)


def compare(lhs: object, op: str, rhs: object) -> Comparison:
    """Build a comparison, coercing bare names to ``Attr`` and values to ``Const``."""
    return Comparison(_operand(lhs), op, _operand(rhs))


def eq(lhs: object, rhs: object) -> Comparison:
    return compare(lhs, "=", rhs)


def satisfiable_on(predicate: Predicate, row: Row, attrs: frozenset[str]) -> bool:
    """Could some extension of ``row`` (defined on ``attrs``) satisfy ``predicate``?

    This is the irrelevance test of [7]: for an update touching only the
    attributes in ``attrs``, a ``False`` answer proves the update cannot
    contribute any row to the selection, so the view is irrelevant to it.
    """
    return predicate.restrict_to(attrs).evaluate(row)
