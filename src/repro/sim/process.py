"""Simulated processes: single-threaded servers with mailboxes.

A :class:`Process` models one box of Figure 1.  Messages delivered by
channels queue in the mailbox; the process serves them one at a time,
spending ``service_time(message)`` of virtual time on each.  That serial
service discipline is what creates the bottleneck phenomena the paper's
Section 7 wants to study (a merge process saturates when work arrives
faster than it can serve it), and the per-process utilisation and queue
statistics recorded here are what the benchmarks report.

Instrumentation: every process registers its load statistics as typed
instruments in the simulator's :class:`~repro.obs.registry.MetricsRegistry`
(counters for messages/busy time/losses/crashes, a queue-length gauge, and
queue-wait / service-time histograms), and emits one ``proc_msg`` trace
event per handled message carrying the message's causal identifiers (see
:func:`repro.messages.lineage_keys`) plus its queue-wait and service-time
split.  ``proc_msg`` is what lets :class:`repro.obs.lineage.Lineage`
reconstruct where each update spent its time; filter it out with
``Trace.kinds`` when a high-rate run doesn't need per-hop attribution.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING, Callable

from repro.errors import SimulationError
from repro.messages import lineage_keys
from repro.sim.network import Channel, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Process:
    """Base class for all simulated components.

    Subclasses implement :meth:`handle`; they may override
    :meth:`service_time` to model per-message processing cost (default 0,
    i.e. infinitely fast).  Outgoing channels are registered with
    :meth:`connect` and used via :meth:`send`.
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        # inbox entries: (message, sender, on_processed, enqueued_at)
        self._inbox: deque[
            tuple[object, "Process", Callable[[], None] | None, float]
        ] = deque()
        self._busy = False
        self._outgoing: dict[str, Channel] = {}
        # crash/restart state: the epoch invalidates in-flight service events
        # scheduled before a crash (the kernel has no cancel API).
        self._crashed = False
        self._epoch = 0
        self._incoming: list[Channel] = []
        # statistics — registry-backed instruments; the classic attribute
        # names (messages_handled, busy_time, ...) remain as read-only
        # properties so existing callers and tests keep working.
        metrics = sim.metrics
        self._m_handled = metrics.counter("proc_messages_handled", process=name)
        self._m_busy = metrics.counter("proc_busy_time", process=name)
        self._m_lost = metrics.counter("proc_messages_lost", process=name)
        self._m_crashes = metrics.counter("proc_crashes", process=name)
        self._g_queue = metrics.gauge("proc_queue_length", process=name)
        self._h_wait = metrics.histogram("proc_queue_wait", process=name)
        self._h_service = metrics.histogram("proc_service_time", process=name)
        self._queue_area = 0.0  # integral of queue length over time
        self._last_stat_time = 0.0

    # -- wiring ------------------------------------------------------------
    def connect(
        self, destination: "Process", latency: LatencyModel | float = 0.0
    ) -> Channel:
        """Create (or replace) the outgoing channel to ``destination``."""
        channel = Channel(self.sim, self, destination, latency)
        self._outgoing[destination.name] = channel
        return channel

    def attach(self, channel: Channel) -> Channel:
        """Register a pre-built channel (e.g. a :class:`ReliableChannel`)."""
        if channel.source is not self:
            raise SimulationError(
                f"cannot attach a channel sourced at {channel.source.name!r} "
                f"to {self.name!r}"
            )
        self._outgoing[channel.destination.name] = channel
        return channel

    def register_incoming(self, channel: Channel) -> None:
        """Channels that need crash notifications register themselves here."""
        self._incoming.append(channel)

    def channel_to(self, name: str) -> Channel:
        try:
            return self._outgoing[name]
        except KeyError:
            raise SimulationError(
                f"{self.name} has no channel to {name!r} "
                f"(connected to: {sorted(self._outgoing)})"
            ) from None

    def peers(self) -> tuple[str, ...]:
        return tuple(sorted(self._outgoing))

    def send(self, destination: "Process | str", message: object) -> float:
        """Send ``message`` over the pre-connected channel; returns delivery time."""
        name = destination if isinstance(destination, str) else destination.name
        return self.channel_to(name).send(message)

    # -- mailbox / service loop ------------------------------------------------
    def deliver(
        self,
        message: object,
        sender: "Process",
        on_processed: Callable[[], None] | None = None,
    ) -> None:
        """Called by channels when a message arrives.

        ``on_processed`` (used by :class:`~repro.sim.network.ReliableChannel`)
        is invoked after :meth:`handle` completes — i.e. once the message has
        actually been *processed*, not merely enqueued — so delivery
        acknowledgements survive a crash that wipes the mailbox.
        """
        if self._crashed:
            self.count_lost()
            self.trace(
                "msg_lost", sender=sender.name, message=type(message).__name__
            )
            return
        self._account_queue()
        now = self.sim.now
        self._inbox.append((message, sender, on_processed, now))
        self._g_queue.set(len(self._inbox), at=now)
        if not self._busy:
            self._start_next()

    def count_lost(self, n: int = 1) -> None:
        """Record ``n`` messages lost to a crash (volatile-state discard)."""
        self._m_lost.inc(n)

    def _account_queue(self) -> None:
        now = self.sim.now
        self._queue_area += len(self._inbox) * (now - self._last_stat_time)
        self._last_stat_time = now

    def _start_next(self) -> None:
        if not self._inbox:
            return
        self._busy = True
        message, sender, _on_processed, _enqueued = self._inbox[0]
        service = self.service_time(message)
        if service < 0:
            raise SimulationError(
                f"{self.name}.service_time returned negative {service}"
            )
        self.sim.schedule(service, self._finish, message, sender, service, self._epoch)

    def _finish(
        self, message: object, sender: "Process", service: float, epoch: int
    ) -> None:
        if epoch != self._epoch:
            return  # the process crashed while this message was in service
        self._account_queue()
        now = self.sim.now
        _message, _sender, on_processed, enqueued = self._inbox.popleft()
        self._g_queue.set(len(self._inbox), at=now)
        self._busy = False
        self._m_busy.inc(service)
        self._m_handled.inc()
        # Queue wait: arrival to service start.  Service start is finish
        # minus service; clamp the float round-trip to non-negative.
        wait = max(0.0, (now - service) - enqueued)
        self._h_wait.observe(wait)
        self._h_service.observe(service)
        trace = self.sim.trace
        if trace.wants("proc_msg"):
            trace.record(
                now,
                "proc_msg",
                self.name,
                message=type(message).__name__,
                sender=sender.name,
                wait=wait,
                service=service,
                **lineage_keys(message),
            )
        self.handle(message, sender)
        # Checkpoint hooks run after handle() so the saved state covers this
        # message; only then is the sender's channel told it was processed.
        self.on_handled(message, sender)
        if on_processed is not None:
            on_processed()
        # handle() may have sent messages but cannot have consumed the inbox.
        if self._inbox and not self._busy:
            self._start_next()

    # -- crash / restart ---------------------------------------------------------
    @property
    def crashed(self) -> bool:
        return self._crashed

    def crash(self) -> None:
        """Fail-stop: lose the mailbox and all volatile in-service work.

        Durable state is whatever the subclass restores in
        :meth:`on_restart` (see :class:`~repro.merge.process.MergeProcess`
        checkpoints).  Reliable channels into this process are notified so
        unacknowledged messages are retransmitted after the restart.
        """
        if self._crashed:
            raise SimulationError(f"{self.name} is already crashed")
        self._account_queue()
        lost = len(self._inbox)
        self._inbox.clear()
        self._g_queue.set(0, at=self.sim.now)
        self._busy = False
        self._crashed = True
        self._epoch += 1
        self._m_crashes.inc()
        self.count_lost(lost)
        self.trace("crash", lost_messages=lost)
        for channel in self._incoming:
            on_crash = getattr(channel, "on_destination_crash", None)
            if on_crash is not None:
                on_crash()
        self.on_crash()

    def restart(self) -> None:
        """Recover from a crash; subclasses restore durable state first."""
        if not self._crashed:
            raise SimulationError(f"{self.name} is not crashed")
        self._crashed = False
        self.trace("restart")
        self.on_restart()

    def on_crash(self) -> None:
        """Subclass hook: called after volatile state is discarded."""

    def on_restart(self) -> None:
        """Subclass hook: restore durable state (checkpoints) here."""

    def on_handled(self, message: object, sender: "Process") -> None:
        """Subclass hook: called after each handled message (checkpointing)."""

    # -- behaviour (subclass API) -------------------------------------------
    def service_time(self, message: object) -> float:
        """Virtual time spent serving ``message`` (default: instantaneous)."""
        return 0.0

    def handle(self, message: object, sender: "Process") -> None:
        """React to ``message``; subclasses must implement."""
        raise NotImplementedError(f"{type(self).__name__} does not handle messages")

    # -- statistics --------------------------------------------------------------
    @property
    def messages_handled(self) -> int:
        return int(self._m_handled.value)

    @property
    def busy_time(self) -> float:
        return self._m_busy.value

    @property
    def max_queue_length(self) -> int:
        return int(self._g_queue.max)

    @property
    def crashes(self) -> int:
        return int(self._m_crashes.value)

    @property
    def messages_lost(self) -> int:
        return int(self._m_lost.value)

    @property
    def queue_length(self) -> int:
        return len(self._inbox)

    def utilisation(self, elapsed: float | None = None) -> float:
        """Fraction of virtual time spent serving messages."""
        total = elapsed if elapsed is not None else self.sim.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / total)

    def mean_queue_length(self) -> float:
        """Time-averaged mailbox length so far."""
        self._account_queue()
        if self.sim.now <= 0:
            return 0.0
        return self._queue_area / self.sim.now

    def queue_wait_stats(self) -> tuple[int, float, float]:
        """Queue-wait distribution so far: ``(count, mean, p95)``."""
        return (
            self._h_wait.count,
            self._h_wait.mean,
            self._h_wait.quantile(0.95),
        )

    def trace(self, kind: str, **detail: object) -> None:
        """Record a trace event attributed to this process."""
        self.sim.trace.record(self.sim.now, kind, self.name, **detail)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
