"""Simulated processes: single-threaded servers with mailboxes.

A :class:`Process` models one box of Figure 1.  Messages delivered by
channels queue in the mailbox; the process serves them one at a time,
spending ``service_time(message)`` of virtual time on each.  That serial
service discipline is what creates the bottleneck phenomena the paper's
Section 7 wants to study (a merge process saturates when work arrives
faster than it can serve it), and the per-process utilisation and queue
statistics recorded here are what the benchmarks report.
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.sim.network import Channel, LatencyModel

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator


class Process:
    """Base class for all simulated components.

    Subclasses implement :meth:`handle`; they may override
    :meth:`service_time` to model per-message processing cost (default 0,
    i.e. infinitely fast).  Outgoing channels are registered with
    :meth:`connect` and used via :meth:`send`.
    """

    def __init__(self, sim: "Simulator", name: str) -> None:
        self.sim = sim
        self.name = name
        self._inbox: deque[tuple[object, "Process"]] = deque()
        self._busy = False
        self._outgoing: dict[str, Channel] = {}
        # statistics
        self.messages_handled = 0
        self.busy_time = 0.0
        self.max_queue_length = 0
        self._queue_area = 0.0  # integral of queue length over time
        self._last_stat_time = 0.0

    # -- wiring ------------------------------------------------------------
    def connect(
        self, destination: "Process", latency: LatencyModel | float = 0.0
    ) -> Channel:
        """Create (or replace) the outgoing channel to ``destination``."""
        channel = Channel(self.sim, self, destination, latency)
        self._outgoing[destination.name] = channel
        return channel

    def channel_to(self, name: str) -> Channel:
        try:
            return self._outgoing[name]
        except KeyError:
            raise SimulationError(
                f"{self.name} has no channel to {name!r} "
                f"(connected to: {sorted(self._outgoing)})"
            ) from None

    def peers(self) -> tuple[str, ...]:
        return tuple(sorted(self._outgoing))

    def send(self, destination: "Process | str", message: object) -> float:
        """Send ``message`` over the pre-connected channel; returns delivery time."""
        name = destination if isinstance(destination, str) else destination.name
        return self.channel_to(name).send(message)

    # -- mailbox / service loop ------------------------------------------------
    def deliver(self, message: object, sender: "Process") -> None:
        """Called by channels when a message arrives."""
        self._account_queue()
        self._inbox.append((message, sender))
        self.max_queue_length = max(self.max_queue_length, len(self._inbox))
        if not self._busy:
            self._start_next()

    def _account_queue(self) -> None:
        now = self.sim.now
        self._queue_area += len(self._inbox) * (now - self._last_stat_time)
        self._last_stat_time = now

    def _start_next(self) -> None:
        if not self._inbox:
            return
        self._busy = True
        message, sender = self._inbox[0]
        service = self.service_time(message)
        if service < 0:
            raise SimulationError(
                f"{self.name}.service_time returned negative {service}"
            )
        self.sim.schedule(service, self._finish, message, sender, service)

    def _finish(self, message: object, sender: "Process", service: float) -> None:
        self._account_queue()
        self._inbox.popleft()
        self._busy = False
        self.busy_time += service
        self.messages_handled += 1
        self.handle(message, sender)
        # handle() may have sent messages but cannot have consumed the inbox.
        if self._inbox and not self._busy:
            self._start_next()

    # -- behaviour (subclass API) -------------------------------------------
    def service_time(self, message: object) -> float:
        """Virtual time spent serving ``message`` (default: instantaneous)."""
        return 0.0

    def handle(self, message: object, sender: "Process") -> None:
        """React to ``message``; subclasses must implement."""
        raise NotImplementedError(f"{type(self).__name__} does not handle messages")

    # -- statistics --------------------------------------------------------------
    @property
    def queue_length(self) -> int:
        return len(self._inbox)

    def utilisation(self, elapsed: float | None = None) -> float:
        """Fraction of virtual time spent serving messages."""
        total = elapsed if elapsed is not None else self.sim.now
        if total <= 0:
            return 0.0
        return min(1.0, self.busy_time / total)

    def mean_queue_length(self) -> float:
        """Time-averaged mailbox length so far."""
        self._account_queue()
        if self.sim.now <= 0:
            return 0.0
        return self._queue_area / self.sim.now

    def trace(self, kind: str, **detail: object) -> None:
        """Record a trace event attributed to this process."""
        self.sim.trace.record(self.sim.now, kind, self.name, **detail)

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.name!r})"
