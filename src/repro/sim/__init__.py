"""Deterministic discrete-event simulation kernel.

The paper's architecture (Figure 1) is a set of concurrent processes —
sources, integrator, view managers, merge process(es), warehouse —
exchanging messages over channels that preserve per-sender order but have
arbitrary relative latencies.  This package provides exactly that
substrate: a deterministic event queue, processes with message handlers,
and FIFO channels with pluggable latency models.

Determinism matters twice: it makes every experiment reproducible from a
seed, and it lets property-based tests explore adversarial message
interleavings (e.g. an action list arriving before its REL set, which SPA
must tolerate — paper §4).
"""

from repro.sim.kernel import Simulator
from repro.sim.process import Process
from repro.sim.network import (
    Channel,
    ExponentialLatency,
    FixedLatency,
    LossyChannel,
    ReliableChannel,
    Transmission,
    UniformLatency,
)
from repro.sim.scheduler import (
    DelayInjectingScheduler,
    FifoScheduler,
    Perturbation,
    RandomScheduler,
    Scheduler,
)
from repro.sim.tracing import Trace, TraceEvent

__all__ = [
    "Simulator",
    "Process",
    "Channel",
    "LossyChannel",
    "ReliableChannel",
    "Transmission",
    "FixedLatency",
    "UniformLatency",
    "ExponentialLatency",
    "Scheduler",
    "FifoScheduler",
    "RandomScheduler",
    "DelayInjectingScheduler",
    "Perturbation",
    "Trace",
    "TraceEvent",
]
