"""Structured trace recording for simulation runs.

Every interesting occurrence — a message send/delivery, a warehouse
commit, a VUT transition — can be appended to the simulator's
:class:`Trace`.  Benchmarks and the consistency checkers read traces back
to compute metrics (freshness, throughput) and to reconstruct state
sequences; the observability layer (:mod:`repro.obs`) reconstructs causal
lineage and exports traces to external viewers.

Recording can be restricted to a set of event kinds (:attr:`Trace.kinds`)
so high-rate runs only pay for the events they keep.  The filter is
checked *before* any allocation, and callers that must build expensive
``detail`` payloads should guard with :meth:`Trace.wants` first::

    if sim.trace.wants("proc_msg"):
        sim.trace.record(now, "proc_msg", name, ids=expensive_ids(msg))
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Collection, Iterable, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped occurrence in a run."""

    time: float
    kind: str
    process: str
    detail: dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.process:<16} {self.kind} {inner}"


class Trace:
    """An append-only list of :class:`TraceEvent` with query helpers.

    :meth:`record` sits on the simulator's hot path, so it appends raw
    tuples and defers :class:`TraceEvent` construction to the first read
    — simulation time pays only for the append, queries pay the (one-off)
    materialisation.
    """

    __slots__ = ("_events", "_pending", "enabled", "_kinds")

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self._pending: list[tuple[float, str, str, dict]] = []
        self.enabled = True
        self._kinds: frozenset[str] | None = None

    # -- filtering ---------------------------------------------------------
    @property
    def kinds(self) -> frozenset[str] | None:
        """The recorded event kinds, or ``None`` for "record everything"."""
        return self._kinds

    @kinds.setter
    def kinds(self, kinds: Iterable[str] | None) -> None:
        self._kinds = None if kinds is None else frozenset(kinds)

    def wants(self, kind: str) -> bool:
        """Would :meth:`record` keep an event of this kind right now?"""
        return self.enabled and (self._kinds is None or kind in self._kinds)

    def record(self, time: float, kind: str, process: str, **detail: object) -> None:
        # Filter before any allocation: a rejected event must cost nothing
        # beyond this check (the **detail dict is built by the call itself).
        if not self.enabled:
            return
        if self._kinds is not None and kind not in self._kinds:
            return
        self._pending.append((time, kind, process, detail))

    def _materialise(self) -> list[TraceEvent]:
        if self._pending:
            self._events.extend(
                TraceEvent(*raw) for raw in self._pending
            )
            self._pending.clear()
        return self._events

    def __len__(self) -> int:
        return len(self._events) + len(self._pending)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._materialise())

    def __getitem__(self, index: int) -> TraceEvent:
        return self._materialise()[index]

    def events_since(self, start: int) -> tuple[int, list[TraceEvent]]:
        """Events recorded at index ``start`` onward, plus the new cursor.

        Incremental-consumer protocol: call with the cursor from the
        previous call and process only what is new.
        """
        events = self._materialise()
        fresh = events[start:]
        return start + len(fresh), fresh

    def raw_events_since(
        self, start: int, kinds: Collection[str] | None = None
    ) -> tuple[int, list[tuple[float, str, str, dict]]]:
        """``(time, kind, process, detail)`` tuples at ``start`` onward.

        The zero-materialisation twin of :meth:`events_since` for
        consumers inside the simulation hot loop (the freshness
        monitor): pending raw tuples pass through as-is and no
        :class:`TraceEvent` is constructed, so sampling mid-run does not
        force the materialisation that :meth:`record` deliberately
        defers.  Cursors are interchangeable with :meth:`events_since`
        — materialisation moves entries from pending to built without
        renumbering them.  ``kinds`` drops non-matching events *after*
        the cursor advances past them, so a filtered consumer never
        revisits what it skipped.
        """
        built = self._events
        cursor = len(built) + len(self._pending)
        fresh: list[tuple[float, str, str, dict]] = [
            (e.time, e.kind, e.process, e.detail)
            for e in built[start:]
        ]
        fresh.extend(self._pending[max(start - len(built), 0):])
        if kinds is not None:
            fresh = [event for event in fresh if event[1] in kinds]
        return cursor, fresh

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._materialise() if e.kind == kind]

    def by_process(self, process: str) -> list[TraceEvent]:
        return [e for e in self._materialise() if e.process == process]

    def where(self, condition: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self._materialise() if condition(e)]

    def first(self, kind: str) -> TraceEvent | None:
        for event in self._materialise():
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> TraceEvent | None:
        for event in reversed(self._materialise()):
            if event.kind == kind:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()
        self._pending.clear()

    def digest(self) -> str:
        """A stable SHA-256 over every recorded event.

        Two runs are "byte-for-byte identical" for our purposes iff their
        digests match: the hash covers each event's time, kind, process
        and (sorted) detail payload.  The conformance engine uses this to
        pin determinism regressions and to verify that a shrunk
        reproducer replays to exactly the run that was shrunk.
        """
        import hashlib

        h = hashlib.sha256()
        for event in self._materialise():
            h.update(
                repr(
                    (event.time, event.kind, event.process,
                     sorted(event.detail.items()))
                ).encode("utf-8")
            )
        return h.hexdigest()

    def to_records(self, *kinds: str) -> list[dict]:
        """JSON-serialisable event records (optionally filtered by kind)."""
        wanted = set(kinds)
        return [
            {
                "time": event.time,
                "kind": event.kind,
                "process": event.process,
                **event.detail,
            }
            for event in self._materialise()
            if not wanted or event.kind in wanted
        ]

    def format(self, *kinds: str) -> str:
        """Pretty-print the trace (optionally filtered to some kinds)."""
        wanted = set(kinds)
        lines = [
            str(e) for e in self._materialise() if not wanted or e.kind in wanted
        ]
        return "\n".join(lines)


class ThreadSafeTrace(Trace):
    """A :class:`Trace` whose mutators are serialised by a lock.

    The wall-clock runtimes (:mod:`repro.runtime`) record events from
    many worker threads at once; ``list.append`` alone would keep the
    pending list intact under the GIL, but materialisation racing a
    recording worker could observe a half-drained pending list.  The DES
    kernel keeps the lock-free base class — its hot loop is
    single-threaded by construction.
    """

    __slots__ = ("_lock",)

    def __init__(self) -> None:
        super().__init__()
        import threading

        self._lock = threading.RLock()

    def record(self, time: float, kind: str, process: str, **detail: object) -> None:
        with self._lock:
            super().record(time, kind, process, **detail)

    def _materialise(self) -> list[TraceEvent]:
        with self._lock:
            return super()._materialise()

    def events_since(self, start: int) -> tuple[int, list[TraceEvent]]:
        # Hold the lock across materialise + slice: a recording worker
        # could otherwise extend the list between the two reads and the
        # cursor would skip its events.
        with self._lock:
            return super().events_since(start)

    def raw_events_since(
        self, start: int, kinds: Collection[str] | None = None
    ) -> tuple[int, list[tuple[float, str, str, dict]]]:
        with self._lock:
            return super().raw_events_since(start, kinds)

    def clear(self) -> None:
        with self._lock:
            super().clear()
