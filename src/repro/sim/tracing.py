"""Structured trace recording for simulation runs.

Every interesting occurrence — a message send/delivery, a warehouse
commit, a VUT transition — can be appended to the simulator's
:class:`Trace`.  Benchmarks and the consistency checkers read traces back
to compute metrics (freshness, throughput) and to reconstruct state
sequences.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Callable, Iterator


@dataclass(frozen=True, slots=True)
class TraceEvent:
    """One timestamped occurrence in a run."""

    time: float
    kind: str
    process: str
    detail: dict = field(default_factory=dict, compare=False)

    def __str__(self) -> str:
        inner = ", ".join(f"{k}={v}" for k, v in self.detail.items())
        return f"[{self.time:10.3f}] {self.process:<16} {self.kind} {inner}"


class Trace:
    """An append-only list of :class:`TraceEvent` with query helpers."""

    __slots__ = ("_events", "enabled")

    def __init__(self) -> None:
        self._events: list[TraceEvent] = []
        self.enabled = True

    def record(self, time: float, kind: str, process: str, **detail: object) -> None:
        if self.enabled:
            self._events.append(TraceEvent(time, kind, process, dict(detail)))

    def __len__(self) -> int:
        return len(self._events)

    def __iter__(self) -> Iterator[TraceEvent]:
        return iter(self._events)

    def __getitem__(self, index: int) -> TraceEvent:
        return self._events[index]

    def of_kind(self, kind: str) -> list[TraceEvent]:
        return [e for e in self._events if e.kind == kind]

    def by_process(self, process: str) -> list[TraceEvent]:
        return [e for e in self._events if e.process == process]

    def where(self, condition: Callable[[TraceEvent], bool]) -> list[TraceEvent]:
        return [e for e in self._events if condition(e)]

    def first(self, kind: str) -> TraceEvent | None:
        for event in self._events:
            if event.kind == kind:
                return event
        return None

    def last(self, kind: str) -> TraceEvent | None:
        for event in reversed(self._events):
            if event.kind == kind:
                return event
        return None

    def clear(self) -> None:
        self._events.clear()

    def to_records(self, *kinds: str) -> list[dict]:
        """JSON-serialisable event records (optionally filtered by kind)."""
        wanted = set(kinds)
        return [
            {
                "time": event.time,
                "kind": event.kind,
                "process": event.process,
                **event.detail,
            }
            for event in self._events
            if not wanted or event.kind in wanted
        ]

    def format(self, *kinds: str) -> str:
        """Pretty-print the trace (optionally filtered to some kinds)."""
        wanted = set(kinds)
        lines = [
            str(e) for e in self._events if not wanted or e.kind in wanted
        ]
        return "\n".join(lines)
