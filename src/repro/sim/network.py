"""FIFO message channels with pluggable latency models.

The paper's only ordering assumption is that "messages from the same
process must arrive in the order sent" (§4).  :class:`Channel` enforces
exactly that: each channel is a point-to-point FIFO pipe whose delivery
times are drawn from a latency model but clamped to be non-decreasing, so
reordering can happen *between* channels but never *within* one.

The paper *assumes* reliable FIFO delivery; this module also provides the
machinery to drop that assumption and win it back:

* :class:`LossyChannel` — a channel subject to a fault model: messages may
  be dropped, duplicated or hit by delay spikes, and there is **no** FIFO
  clamp (a delayed message arrives late, after its successors).
* :class:`ReliableChannel` — layers sequence numbers, cumulative
  acknowledgements, timeout/retransmit with capped exponential backoff and
  duplicate suppression over that lossy transport, so FIFO-exactly-once
  processing is *recovered* rather than assumed.  Acknowledgements are
  only sent once the destination has **processed** a frame (not merely
  received it), which together with receiver-side checkpoints makes the
  protocol survive destination crashes (see
  :mod:`repro.sim.process` and :class:`repro.merge.process.MergeProcess`).
"""

from __future__ import annotations

import random
from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import SimulationError
from repro.messages import AckFrame, SequencedFrame

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class LatencyModel:
    """Base class: produce a per-message delay."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay``."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"latency must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise SimulationError(f"bad uniform latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponentially distributed delay with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise SimulationError(f"mean latency must be positive, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency({self.mean})"


class Channel:
    """A point-to-point FIFO channel between two processes."""

    def __init__(
        self,
        sim: "Simulator",
        source: "Process",
        destination: "Process",
        latency: LatencyModel | float = 0.0,
    ) -> None:
        if isinstance(latency, (int, float)):
            latency = FixedLatency(float(latency))
        self._sim = sim
        self.source = source
        self.destination = destination
        self.latency = latency
        # FIFO lane identity: schedulers may perturb deliveries per lane,
        # and the kernel clamps ordered lanes so same-channel messages
        # can never overtake each other (see repro.sim.scheduler).
        self.lane = (source.name, destination.name)
        self._last_delivery = 0.0
        self.messages_sent = 0
        # Registry mirror: per-(src, dst) traffic counters.  The plain
        # attributes above stay the per-channel exact counts; the registry
        # aggregates across channels sharing an endpoint pair.
        self._m_sent = sim.metrics.counter(
            "chan_messages_sent", src=source.name, dst=destination.name
        )

    def send(self, message: object) -> float:
        """Queue ``message`` for delivery; returns the delivery time.

        Delivery time is ``now + latency`` but never earlier than the
        previous delivery on this channel (FIFO clamp).
        """
        now = self._sim.now
        delay = self.latency.sample(self._sim.rng)
        deliver_at = max(now + delay, self._last_delivery)
        self._last_delivery = deliver_at
        self.messages_sent += 1
        self._m_sent.inc()
        self._sim.trace.record(
            now,
            "msg_send",
            self.source.name,
            to=self.destination.name,
            message=type(message).__name__,
        )
        self._sim.schedule_at(deliver_at, self._deliver, message, lane=self.lane)
        return deliver_at

    def _deliver(self, message: object) -> None:
        self._sim.trace.record(
            self._sim.now,
            "msg_recv",
            self.destination.name,
            sender=self.source.name,
            message=type(message).__name__,
        )
        self.destination.deliver(message, self.source)

    def __repr__(self) -> str:
        return (
            f"Channel({self.source.name} -> {self.destination.name}, "
            f"{self.latency!r})"
        )


@dataclass(frozen=True, slots=True)
class Transmission:
    """One fault decision: what the network does to a single transmission.

    Produced by a fault model (see :class:`repro.faults.ChannelFaultModel`);
    consumed by :class:`LossyChannel`.  ``duplicates`` is the number of
    *extra* copies injected; ``extra_delay`` is added on top of the sampled
    latency (a delay spike).
    """

    drop: bool = False
    duplicates: int = 0
    extra_delay: float = 0.0


#: the decision a perfect network makes for every transmission
CLEAN_TRANSMISSION = Transmission()


class LossyChannel(Channel):
    """A point-to-point channel over a faulty network.

    Each transmission consults the fault model: the message may be dropped,
    duplicated, or delayed by a spike.  Crucially there is **no** FIFO
    clamp — each surviving copy is delivered at its own sampled time, so a
    delay spike reorders messages within the channel.  This is the raw
    transport :class:`ReliableChannel` recovers FIFO-exactly-once over.
    """

    def __init__(
        self,
        sim: "Simulator",
        source: "Process",
        destination: "Process",
        latency: LatencyModel | float = 0.0,
        faults: object | None = None,
    ) -> None:
        super().__init__(sim, source, destination, latency)
        self.faults = faults
        self.messages_dropped = 0
        self.messages_duplicated = 0
        self._m_dropped = sim.metrics.counter(
            "chan_messages_dropped", src=source.name, dst=destination.name
        )
        self._m_duplicated = sim.metrics.counter(
            "chan_messages_duplicated", src=source.name, dst=destination.name
        )

    def _next_transmission(self, faults: object | None) -> Transmission:
        if faults is None:
            return CLEAN_TRANSMISSION
        return faults.next_transmission()

    def _transmit(self, message: object, deliver, faults: object | None):
        """Schedule the arrivals of one logical transmission.

        Returns the primary copy's arrival time, or ``None`` if the network
        dropped it (injected duplicates may still arrive).
        """
        decision = self._next_transmission(faults)
        now = self._sim.now
        arrival = None
        if decision.drop:
            self.messages_dropped += 1
            self._m_dropped.inc()
            self._sim.trace.record(
                now,
                "msg_drop",
                self.source.name,
                to=self.destination.name,
                message=type(message).__name__,
            )
        else:
            delay = self.latency.sample(self._sim.rng) + decision.extra_delay
            arrival = now + delay
            # ordered=False: a lossy transport has no FIFO guarantee, so
            # the kernel must not clamp scheduler perturbations here —
            # reordering is precisely the fault this channel models.
            self._sim.schedule_at(
                arrival, deliver, message, lane=self.lane, ordered=False
            )
        for _ in range(decision.duplicates):
            self.messages_duplicated += 1
            self._m_duplicated.inc()
            delay = self.latency.sample(self._sim.rng) + decision.extra_delay
            self._sim.schedule(delay, deliver, message, lane=self.lane, ordered=False)
        return arrival

    def send(self, message: object) -> float:
        """Transmit once; returns the primary arrival time (``now`` if dropped)."""
        self.messages_sent += 1
        self._m_sent.inc()
        self._sim.trace.record(
            self._sim.now,
            "msg_send",
            self.source.name,
            to=self.destination.name,
            message=type(message).__name__,
        )
        arrival = self._transmit(message, self._deliver, self.faults)
        return arrival if arrival is not None else self._sim.now


class ReliableChannel(LossyChannel):
    """FIFO-exactly-once processing recovered over a lossy transport.

    Sender side: every payload is wrapped in a :class:`SequencedFrame`,
    kept in an unacknowledged buffer, and retransmitted on timeout with
    capped exponential backoff until a cumulative :class:`AckFrame` covers
    it.  Receiver side: frames are re-ordered into sequence, duplicates are
    suppressed, and each frame is delivered to the destination's mailbox in
    order.  An ack is only sent once the destination has *processed* the
    frame (the mailbox ``on_processed`` callback), so a destination crash —
    which wipes the mailbox — simply leaves those frames unacknowledged and
    they are retransmitted after the restart.

    The sender's volatile state (next sequence number + unacked buffer) can
    be checkpointed with :meth:`sender_state` and reinstated with
    :meth:`restore_sender_state`, which is how a crashed *sender* process
    resumes without losing in-flight messages (see
    :class:`repro.merge.process.MergeProcess`).
    """

    def __init__(
        self,
        sim: "Simulator",
        source: "Process",
        destination: "Process",
        latency: LatencyModel | float = 0.0,
        faults: object | None = None,
        ack_faults: object | None = None,
        timeout: float = 4.0,
        backoff_factor: float = 2.0,
        timeout_cap: float = 32.0,
    ) -> None:
        super().__init__(sim, source, destination, latency, faults)
        if timeout <= 0:
            raise SimulationError(f"retransmit timeout must be positive: {timeout}")
        if backoff_factor < 1:
            raise SimulationError(f"backoff factor must be >= 1: {backoff_factor}")
        if timeout_cap < timeout:
            raise SimulationError(
                f"timeout cap {timeout_cap} below base timeout {timeout}"
            )
        self.ack_faults = ack_faults
        self.timeout = timeout
        self.backoff_factor = backoff_factor
        self.timeout_cap = timeout_cap
        # sender state
        self._next_seq = 1
        self._unacked: dict[int, object] = {}
        self._attempts: dict[int, int] = {}
        self._timer_token: dict[int, int] = {}
        self._tokens = 0
        # receiver state
        self._expected = 1
        self._last_processed = 0
        self._reorder: dict[int, object] = {}
        self._in_mailbox: set[int] = set()
        # statistics
        self.retransmissions = 0
        self.duplicates_suppressed = 0
        self.acks_sent = 0
        self._m_retransmissions = sim.metrics.counter(
            "chan_retransmissions", src=source.name, dst=destination.name
        )
        self._m_suppressed = sim.metrics.counter(
            "chan_duplicates_suppressed", src=source.name, dst=destination.name
        )
        self._m_acks = sim.metrics.counter(
            "chan_acks_sent", src=source.name, dst=destination.name
        )
        destination.register_incoming(self)

    # -- sender ------------------------------------------------------------
    def send(self, message: object) -> float:
        """Queue ``message`` for reliable, in-order, exactly-once processing."""
        seq = self._next_seq
        self._next_seq += 1
        self._unacked[seq] = message
        self._attempts[seq] = 0
        self.messages_sent += 1
        self._m_sent.inc()
        self._sim.trace.record(
            self._sim.now,
            "msg_send",
            self.source.name,
            to=self.destination.name,
            message=type(message).__name__,
            seq=seq,
        )
        arrival = self._transmit_frame(seq)
        self._arm_timer(seq)
        return arrival if arrival is not None else self._sim.now

    def _transmit_frame(self, seq: int):
        frame = SequencedFrame(seq, self._unacked[seq])
        return self._transmit(frame, self._on_frame, self.faults)

    def _arm_timer(self, seq: int) -> None:
        self._tokens += 1
        token = self._tokens
        self._timer_token[seq] = token
        attempt = self._attempts[seq]
        delay = min(
            self.timeout * self.backoff_factor**attempt, self.timeout_cap
        )
        self._sim.schedule(delay, self._on_timeout, seq, token)

    def _on_timeout(self, seq: int, token: int) -> None:
        if seq not in self._unacked or self._timer_token.get(seq) != token:
            return  # acked meanwhile, or superseded by a restored checkpoint
        self._attempts[seq] += 1
        self.retransmissions += 1
        self._m_retransmissions.inc()
        self._sim.trace.record(
            self._sim.now,
            "msg_retransmit",
            self.source.name,
            to=self.destination.name,
            seq=seq,
            attempt=self._attempts[seq],
        )
        self._transmit_frame(seq)
        self._arm_timer(seq)

    def _on_ack(self, frame: AckFrame) -> None:
        for seq in [s for s in self._unacked if s <= frame.ack]:
            del self._unacked[seq]
            self._attempts.pop(seq, None)
            self._timer_token.pop(seq, None)

    def sender_state(self) -> tuple[int, dict[int, object]]:
        """Checkpointable sender state: ``(next_seq, unacked buffer)``."""
        return (self._next_seq, dict(self._unacked))

    def restore_sender_state(self, state: tuple[int, dict[int, object]]) -> None:
        """Reinstate a checkpointed sender state and retransmit the backlog.

        Resurrecting frames that were acknowledged after the checkpoint is
        harmless: the receiver's duplicate suppression re-acks them.
        """
        next_seq, unacked = state
        self._next_seq = next_seq
        self._unacked = dict(unacked)
        self._attempts = {seq: 0 for seq in self._unacked}
        self._timer_token.clear()
        for seq in sorted(self._unacked):
            self.retransmissions += 1
            self._m_retransmissions.inc()
            self._transmit_frame(seq)
            self._arm_timer(seq)

    # -- receiver ----------------------------------------------------------
    def _on_frame(self, frame: SequencedFrame) -> None:
        if self.destination.crashed:
            # Arrived at a dead process: lost with the rest of its volatile
            # state.  No ack, so the sender will retransmit after restart.
            self.destination.count_lost()
            return
        seq = frame.seq
        if seq <= self._last_processed:
            # Stale duplicate (retransmit raced the ack): re-ack so the
            # sender can clear its buffer.
            self.duplicates_suppressed += 1
            self._m_suppressed.inc()
            self._send_ack()
            return
        if seq in self._reorder or seq in self._in_mailbox:
            self.duplicates_suppressed += 1
            self._m_suppressed.inc()
            return
        self._reorder[seq] = frame.payload
        while self._expected in self._reorder:
            ready = self._expected
            payload = self._reorder.pop(ready)
            self._in_mailbox.add(ready)
            self._expected += 1
            self._sim.trace.record(
                self._sim.now,
                "msg_recv",
                self.destination.name,
                sender=self.source.name,
                message=type(payload).__name__,
                seq=ready,
            )
            self.destination.deliver(
                payload, self.source, on_processed=lambda s=ready: self._on_processed(s)
            )

    def _on_processed(self, seq: int) -> None:
        self._in_mailbox.discard(seq)
        self._last_processed = max(self._last_processed, seq)
        self._send_ack()

    def _send_ack(self) -> None:
        self.acks_sent += 1
        self._m_acks.inc()
        self._transmit(AckFrame(self._last_processed), self._on_ack, self.ack_faults)

    def on_destination_crash(self) -> None:
        """The destination lost its mailbox: rewind to the processed prefix."""
        self._reorder.clear()
        self._in_mailbox.clear()
        self._expected = self._last_processed + 1

    # -- inspection --------------------------------------------------------
    @property
    def unacked(self) -> int:
        return len(self._unacked)

    def __repr__(self) -> str:
        return (
            f"ReliableChannel({self.source.name} -> {self.destination.name}, "
            f"{self.latency!r}, unacked={len(self._unacked)})"
        )
