"""FIFO message channels with pluggable latency models.

The paper's only ordering assumption is that "messages from the same
process must arrive in the order sent" (§4).  :class:`Channel` enforces
exactly that: each channel is a point-to-point FIFO pipe whose delivery
times are drawn from a latency model but clamped to be non-decreasing, so
reordering can happen *between* channels but never *within* one.
"""

from __future__ import annotations

import random
from typing import TYPE_CHECKING

from repro.errors import SimulationError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.sim.kernel import Simulator
    from repro.sim.process import Process


class LatencyModel:
    """Base class: produce a per-message delay."""

    def sample(self, rng: random.Random) -> float:
        raise NotImplementedError


class FixedLatency(LatencyModel):
    """Every message takes exactly ``delay``."""

    def __init__(self, delay: float) -> None:
        if delay < 0:
            raise SimulationError(f"latency must be non-negative, got {delay}")
        self.delay = delay

    def sample(self, rng: random.Random) -> float:
        return self.delay

    def __repr__(self) -> str:
        return f"FixedLatency({self.delay})"


class UniformLatency(LatencyModel):
    """Delay drawn uniformly from [low, high]."""

    def __init__(self, low: float, high: float) -> None:
        if not 0 <= low <= high:
            raise SimulationError(f"bad uniform latency range [{low}, {high}]")
        self.low = low
        self.high = high

    def sample(self, rng: random.Random) -> float:
        return rng.uniform(self.low, self.high)

    def __repr__(self) -> str:
        return f"UniformLatency({self.low}, {self.high})"


class ExponentialLatency(LatencyModel):
    """Exponentially distributed delay with the given mean."""

    def __init__(self, mean: float) -> None:
        if mean <= 0:
            raise SimulationError(f"mean latency must be positive, got {mean}")
        self.mean = mean

    def sample(self, rng: random.Random) -> float:
        return rng.expovariate(1.0 / self.mean)

    def __repr__(self) -> str:
        return f"ExponentialLatency({self.mean})"


class Channel:
    """A point-to-point FIFO channel between two processes."""

    def __init__(
        self,
        sim: "Simulator",
        source: "Process",
        destination: "Process",
        latency: LatencyModel | float = 0.0,
    ) -> None:
        if isinstance(latency, (int, float)):
            latency = FixedLatency(float(latency))
        self._sim = sim
        self.source = source
        self.destination = destination
        self.latency = latency
        self._last_delivery = 0.0
        self.messages_sent = 0

    def send(self, message: object) -> float:
        """Queue ``message`` for delivery; returns the delivery time.

        Delivery time is ``now + latency`` but never earlier than the
        previous delivery on this channel (FIFO clamp).
        """
        now = self._sim.now
        delay = self.latency.sample(self._sim.rng)
        deliver_at = max(now + delay, self._last_delivery)
        self._last_delivery = deliver_at
        self.messages_sent += 1
        self._sim.trace.record(
            now,
            "msg_send",
            self.source.name,
            to=self.destination.name,
            message=type(message).__name__,
        )
        self._sim.schedule_at(deliver_at, self._deliver, message)
        return deliver_at

    def _deliver(self, message: object) -> None:
        self._sim.trace.record(
            self._sim.now,
            "msg_recv",
            self.destination.name,
            sender=self.source.name,
            message=type(message).__name__,
        )
        self.destination.deliver(message, self.source)

    def __repr__(self) -> str:
        return (
            f"Channel({self.source.name} -> {self.destination.name}, "
            f"{self.latency!r})"
        )
