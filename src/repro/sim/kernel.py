"""The event queue at the heart of the simulator.

A :class:`Simulator` owns virtual time and a priority queue of scheduled
callbacks.  Ties in time are broken by insertion order, which makes runs
bit-for-bit deterministic for a given seed and schedule.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable

from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry
from repro.sim.tracing import Trace


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator(seed=42)
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run()          # drain the queue
        sim.run(until=10)  # or stop at a virtual-time horizon

    Besides the event queue, a simulator owns the run's two observability
    substrates: the event :class:`Trace` and the :class:`MetricsRegistry`
    every process/channel instrument registers against (see
    :mod:`repro.obs`).
    """

    def __init__(self, seed: int = 0) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_executed = 0
        self.rng = random.Random(seed)
        self.trace = Trace()
        self.metrics = MetricsRegistry()

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(
        self, delay: float, callback: Callable[..., None], *args: object
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        bound = (lambda: callback(*args)) if args else callback
        heapq.heappush(self._queue, (self._now + delay, next(self._sequence), bound))

    def schedule_at(
        self, time: float, callback: Callable[..., None], *args: object
    ) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``time``.

        Pushes the absolute time directly — round-tripping through a
        relative delay would perturb the low float bits and could reorder
        events meant to fire at exactly the same instant (breaking the
        FIFO guarantee channels rely on).
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, now is {self._now}"
            )
        bound = (lambda: callback(*args)) if args else callback
        heapq.heappush(self._queue, (time, next(self._sequence), bound))

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Execute events until the queue drains (or a bound is hit).

        Returns the number of events executed by this call.  ``until`` is a
        virtual-time horizon (events at exactly ``until`` still run);
        ``max_events`` bounds work for runaway-loop protection in tests.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from an event handler")
        self._running = True
        executed = 0
        hit_event_cap = False
        try:
            while self._queue:
                time, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    hit_event_cap = True
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
                executed += 1
                self._events_executed += 1
            # The horizon was reached (queue drained or next event beyond
            # ``until``): advance the clock to ``until`` so two runs with the
            # same horizon always agree on ``now``.  Stopping on the event cap
            # must NOT jump the clock — the horizon was not actually reached.
            if until is not None and not hit_event_cap and self._now < until:
                self._now = until
        finally:
            self._running = False
        return executed

    def step(self) -> bool:
        """Execute exactly one event; returns False if the queue is empty."""
        return self.run(max_events=1) == 1
