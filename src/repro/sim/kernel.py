"""The event queue at the heart of the simulator.

A :class:`Simulator` owns virtual time and a priority queue of scheduled
callbacks.  By default, ties in time are broken by insertion order, which
makes runs bit-for-bit deterministic for a given seed and schedule.  A
pluggable :class:`~repro.sim.scheduler.Scheduler` may perturb that policy
(random tie-breaks, adversarial channel delays) for schedule exploration;
the kernel itself guarantees the perturbations stay *causally sound*:

Events may be tagged with a FIFO ``lane`` (channels tag their deliveries
with their endpoint pair).  Whatever ``(time, tie_break)`` priority the
scheduler assigns, the kernel clamps each ordered lane's priorities to be
non-decreasing in scheduling order — so events from the same sender on
the same channel can never be reordered, only delayed.  Tie-breaking
otherwise still falls back to :mod:`itertools`.count insertion order, so
the default scheduler reproduces the historical behaviour exactly.
"""

from __future__ import annotations

import heapq
import itertools
import random
from typing import Callable

from repro.errors import SimulationError
from repro.obs.registry import MetricsRegistry
from repro.sim.scheduler import Scheduler
from repro.sim.tracing import Trace


class Simulator:
    """A deterministic discrete-event simulator.

    Usage::

        sim = Simulator(seed=42)
        sim.schedule(1.5, callback, arg1, arg2)
        sim.run()          # drain the queue
        sim.run(until=10)  # or stop at a virtual-time horizon

    Besides the event queue, a simulator owns the run's two observability
    substrates: the event :class:`Trace` and the :class:`MetricsRegistry`
    every process/channel instrument registers against (see
    :mod:`repro.obs`).
    """

    def __init__(self, seed: int = 0, scheduler: Scheduler | None = None) -> None:
        self._now = 0.0
        self._queue: list[tuple[float, float, int, Callable[[], None]]] = []
        self._sequence = itertools.count()
        self._running = False
        self._events_executed = 0
        self.rng = random.Random(seed)
        self.scheduler = scheduler if scheduler is not None else Scheduler()
        self.scheduler.reset()
        # Hot-loop fast path: the default scheduler maps every event to
        # ``(time, 0.0)`` and laneless events never touch the lane marks,
        # so both the adjust() call and the clamp bookkeeping can be
        # skipped for them.  Only the exact default class qualifies — any
        # subclass may carry per-event state (e.g. RandomScheduler's
        # internal counter) and must see every event.
        self._default_scheduler = type(self.scheduler) is Scheduler
        # Per-lane high-water marks enforcing causal order under any
        # scheduler: an ordered lane's (time, tie_break) keys never
        # decrease, so same-channel deliveries keep their send order.
        self._lane_marks: dict[object, tuple[float, float]] = {}
        self.trace = Trace()
        self.metrics = MetricsRegistry(origin="des")
        # Post-event probes (the freshness monitor): called after every
        # executed event.  Kept in a list checked by truthiness so a
        # probe-free run pays one falsy test per event and nothing else.
        self._probes: list[Callable[[], None]] = []

    @property
    def now(self) -> float:
        """Current virtual time."""
        return self._now

    @property
    def events_executed(self) -> int:
        return self._events_executed

    @property
    def pending_events(self) -> int:
        return len(self._queue)

    def schedule(
        self,
        delay: float,
        callback: Callable[..., None],
        *args: object,
        lane: object = None,
        ordered: bool = True,
    ) -> None:
        """Run ``callback(*args)`` after ``delay`` units of virtual time."""
        if delay < 0:
            raise SimulationError(f"cannot schedule in the past (delay={delay})")
        self._push(self._now + delay, callback, args, lane, ordered)

    def schedule_at(
        self,
        time: float,
        callback: Callable[..., None],
        *args: object,
        lane: object = None,
        ordered: bool = True,
    ) -> None:
        """Run ``callback(*args)`` at absolute virtual time ``time``.

        Pushes the absolute time directly — round-tripping through a
        relative delay would perturb the low float bits and could reorder
        events meant to fire at exactly the same instant (breaking the
        FIFO guarantee channels rely on).

        ``lane`` names the FIFO stream the event belongs to (channels
        pass their endpoint pair); the active scheduler may stretch or
        re-key lane events, but for ``ordered`` lanes the kernel clamps
        the adjusted priorities so same-lane events can never overtake
        one another.  ``ordered=False`` (lossy channels) opts out of the
        clamp while keeping the lane identity for perturbation targeting.
        """
        if time < self._now:
            raise SimulationError(
                f"cannot schedule at {time}, now is {self._now}"
            )
        self._push(time, callback, args, lane, ordered)

    def _push(
        self,
        time: float,
        callback: Callable[..., None],
        args: tuple,
        lane: object,
        ordered: bool,
    ) -> None:
        bound = (lambda: callback(*args)) if args else callback
        if lane is None and self._default_scheduler:
            heapq.heappush(self._queue, (time, 0.0, next(self._sequence), bound))
            return
        when, tie_break = self.scheduler.adjust(time, lane)
        if when < time:
            raise SimulationError(
                f"{type(self.scheduler).__name__} moved an event earlier "
                f"({time} -> {when}); schedulers may only delay"
            )
        if lane is not None and ordered:
            mark = self._lane_marks.get(lane)
            if mark is not None and (when, tie_break) < mark:
                when, tie_break = mark
            self._lane_marks[lane] = (when, tie_break)
        heapq.heappush(self._queue, (when, tie_break, next(self._sequence), bound))

    def run(self, until: float | None = None, max_events: int | None = None) -> int:
        """Execute events until the queue drains (or a bound is hit).

        Returns the number of events executed by this call.  ``until`` is a
        virtual-time horizon (events at exactly ``until`` still run);
        ``max_events`` bounds work for runaway-loop protection in tests.
        """
        if self._running:
            raise SimulationError("run() called re-entrantly from an event handler")
        self._running = True
        executed = 0
        hit_event_cap = False
        try:
            while self._queue:
                time, _tie, _seq, callback = self._queue[0]
                if until is not None and time > until:
                    break
                if max_events is not None and executed >= max_events:
                    hit_event_cap = True
                    break
                heapq.heappop(self._queue)
                self._now = time
                callback()
                executed += 1
                self._events_executed += 1
                if self._probes:
                    for probe in self._probes:
                        probe()
            # The horizon was reached (queue drained or next event beyond
            # ``until``): advance the clock to ``until`` so two runs with the
            # same horizon always agree on ``now``.  Stopping on the event cap
            # must NOT jump the clock — the horizon was not actually reached.
            if until is not None and not hit_event_cap and self._now < until:
                self._now = until
        finally:
            self._running = False
        return executed

    def add_probe(self, probe: Callable[[], None]) -> None:
        """Invoke ``probe()`` after every executed event (observers only).

        Probes must not schedule events or mutate simulation state — they
        exist for samplers like the freshness monitor.
        """
        self._probes.append(probe)

    def step(self) -> bool:
        """Execute exactly one event; returns False if the queue is empty."""
        return self.run(max_events=1) == 1
