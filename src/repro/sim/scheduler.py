"""Pluggable event schedulers: adversarial interleaving exploration.

The kernel breaks ties in virtual time by insertion order (FIFO), which
makes every run deterministic — but it also means the simulator only ever
exercises *one* interleaving per workload.  The paper's guarantees are
quantified over **all** interleavings ("for any message interleaving"),
so the conformance engine (:mod:`repro.conformance`) needs to search the
schedule space.  A :class:`Scheduler` is the hook that makes the search
possible without giving up determinism:

* :class:`Scheduler` (the default) reproduces the legacy FIFO tie-break
  bit-for-bit;
* :class:`RandomScheduler` shuffles same-time events with seed-derived,
  **stateless** tie-break keys, so a run is reproducible from its seed
  alone;
* :class:`DelayInjectingScheduler` adversarially stretches channel
  latencies and reorders same-time deliveries.  Every decision it takes
  is recorded as a discrete :class:`Perturbation`, and the same class
  replays an explicit perturbation list exactly — which is what lets the
  explorer delta-debug a failing schedule down to a minimal reproducer.

Causal-order safety
-------------------

A scheduler may only *permute* the schedule, never break causality.  The
kernel enforces this (see :meth:`repro.sim.kernel.Simulator.schedule_at`):
events tagged with the same FIFO ``lane`` (one lane per point-to-point
:class:`~repro.sim.network.Channel`) are clamped so their adjusted
``(time, tie-break)`` keys are non-decreasing in send order.  "Messages
from the same process must arrive in the order sent" (§4) therefore
survives **any** scheduler, including a buggy one.  Lossy channels opt
out of the clamp (``ordered=False``) because reordering is exactly the
fault they model.

Randomness is *stateless*: each decision is a pure hash of
``(seed, lane, event index)``, never a shared RNG stream.  Removing one
perturbation during shrinking therefore does not shift the randomness of
the surviving ones — the same trick :class:`repro.faults.FaultPlan` uses
for per-channel fault streams.
"""

from __future__ import annotations

import zlib
from dataclasses import dataclass

from repro.errors import SimulationError

#: lanes are tuples of channel endpoint names; keep the alias readable
Lane = tuple


def _unit(seed: int, *key: object) -> float:
    """A stateless pseudo-random draw in [0, 1) from ``(seed, *key)``."""
    digest = zlib.crc32(repr((seed,) + key).encode("utf-8"))
    return digest / 2**32


@dataclass(frozen=True, slots=True)
class Perturbation:
    """One discrete scheduling decision, addressable for replay.

    ``kind`` is ``"delay"`` (add ``amount`` of virtual time to the event)
    or ``"reorder"`` (use ``amount`` as the same-time tie-break key
    instead of the FIFO default ``0.0``).  The target event is the
    ``index``-th event ever adjusted on ``lane``.
    """

    kind: str
    lane: tuple
    index: int
    amount: float

    def __post_init__(self) -> None:
        if self.kind not in ("delay", "reorder"):
            raise SimulationError(f"unknown perturbation kind {self.kind!r}")
        if self.index < 0:
            raise SimulationError(f"perturbation index must be >= 0: {self.index}")
        if self.amount < 0:
            raise SimulationError(f"perturbation amount must be >= 0: {self.amount}")
        if not isinstance(self.lane, tuple):
            object.__setattr__(self, "lane", tuple(self.lane))

    def to_dict(self) -> dict:
        return {
            "kind": self.kind,
            "lane": list(self.lane),
            "index": self.index,
            "amount": self.amount,
        }

    @classmethod
    def from_dict(cls, data: dict) -> "Perturbation":
        return cls(
            kind=data["kind"],
            lane=tuple(data["lane"]),
            index=int(data["index"]),
            amount=float(data["amount"]),
        )


class Scheduler:
    """The default policy: FIFO tie-breaks, no injected latency.

    ``adjust`` maps every scheduled event to its effective
    ``(time, tie_break)`` priority; the kernel appends the insertion
    sequence number after the tie-break, so returning a constant key
    reproduces the legacy insertion-order behaviour bit-for-bit.
    """

    def reset(self) -> None:
        """Forget per-run state; called by the simulator that adopts us."""

    def adjust(self, time: float, lane: Lane | None) -> tuple[float, float]:
        """Effective ``(time, tie_break)`` for an event requested at ``time``.

        ``lane`` identifies the FIFO stream the event belongs to (a
        point-to-point channel), or ``None`` for internal events.
        Implementations must never return a time earlier than requested.
        """
        return (time, 0.0)


#: alias that names the default explicitly where it aids readability
FifoScheduler = Scheduler


class RandomScheduler(Scheduler):
    """Shuffle same-time events with stateless seed-derived tie-breaks.

    Events on the same lane at the same time share one key (preserving
    their FIFO order via the kernel's sequence numbers); events on
    different lanes — or internal, lane-less events — get independent
    keys and so execute in a seed-dependent order whenever they collide
    in virtual time.  No state beyond a lane-less event counter is kept,
    so a run is reproducible from the seed alone.
    """

    def __init__(self, seed: int = 0) -> None:
        self.seed = seed
        self._internal = 0

    def reset(self) -> None:
        self._internal = 0

    def adjust(self, time: float, lane: Lane | None) -> tuple[float, float]:
        if lane is None:
            self._internal += 1
            return (time, _unit(self.seed, "internal", self._internal))
        return (time, _unit(self.seed, "lane", lane, time))

    def __repr__(self) -> str:
        return f"RandomScheduler(seed={self.seed})"


class DelayInjectingScheduler(Scheduler):
    """Adversarially stretch channel latencies and reorder deliveries.

    In *exploration* mode (the default), each channel event is hit with a
    seed-derived delay of up to ``max_delay`` with probability
    ``delay_rate``, and with a random same-time tie-break key with
    probability ``reorder_rate``; every injected decision is appended to
    :attr:`decisions`.  In *replay* mode (:meth:`replay`), exactly the
    given perturbations are applied and nothing else — the contract the
    shrinker and the ``conformance replay`` CLI rely on.

    Only lane-tagged (channel) events are perturbed: internal events have
    no stable identity across runs, so perturbing them would not be
    replayable.  Intra-lane causal order is restored by the kernel clamp
    regardless of what this class returns.
    """

    def __init__(
        self,
        seed: int = 0,
        delay_rate: float = 0.15,
        max_delay: float = 3.0,
        reorder_rate: float = 0.15,
        perturbations: list[Perturbation] | None = None,
    ) -> None:
        for name, rate in (("delay_rate", delay_rate), ("reorder_rate", reorder_rate)):
            if not 0.0 <= rate <= 1.0:
                raise SimulationError(f"{name} must be in [0, 1], got {rate}")
        if max_delay < 0:
            raise SimulationError(f"max_delay must be >= 0, got {max_delay}")
        self.seed = seed
        self.delay_rate = delay_rate
        self.max_delay = max_delay
        self.reorder_rate = reorder_rate
        self.replaying = perturbations is not None
        self._explicit: dict[tuple[str, tuple, int], Perturbation] = {
            (p.kind, p.lane, p.index): p for p in perturbations or ()
        }
        #: perturbations injected (exploration) or applied (replay) so far
        self.decisions: list[Perturbation] = []
        self._lane_counts: dict[tuple, int] = {}

    @classmethod
    def replay(cls, perturbations: list[Perturbation]) -> "DelayInjectingScheduler":
        """A scheduler that applies exactly ``perturbations``, nothing else."""
        return cls(perturbations=list(perturbations))

    def reset(self) -> None:
        self.decisions = []
        self._lane_counts = {}

    def adjust(self, time: float, lane: Lane | None) -> tuple[float, float]:
        if lane is None:
            return (time, 0.0)
        index = self._lane_counts.get(lane, 0)
        self._lane_counts[lane] = index + 1
        delay = 0.0
        key = 0.0
        if self.replaying:
            hit = self._explicit.get(("delay", lane, index))
            if hit is not None:
                delay = hit.amount
                self.decisions.append(hit)
            hit = self._explicit.get(("reorder", lane, index))
            if hit is not None:
                key = hit.amount
                self.decisions.append(hit)
        else:
            if _unit(self.seed, "delay?", lane, index) < self.delay_rate:
                delay = self.max_delay * _unit(self.seed, "delay", lane, index)
                self.decisions.append(Perturbation("delay", lane, index, delay))
            if _unit(self.seed, "reorder?", lane, index) < self.reorder_rate:
                key = _unit(self.seed, "reorder", lane, index)
                self.decisions.append(Perturbation("reorder", lane, index, key))
        return (time + delay, key)

    def __repr__(self) -> str:
        mode = "replay" if self.replaying else f"seed={self.seed}"
        return (
            f"DelayInjectingScheduler({mode}, delay_rate={self.delay_rate}, "
            f"max_delay={self.max_delay}, reorder_rate={self.reorder_rate})"
        )
