"""Deterministic, seedable fault plans.

A :class:`FaultPlan` describes everything the environment is allowed to do
to a run: per-transmission message faults (drop, duplication, delay
spikes) and scheduled process crash/restart pairs.  Determinism is the
design constraint — two runs with the same plan must inject *identical*
faults — so every channel gets its **own** random stream, derived stably
from ``(plan seed, source name, destination name)``.  Fault decisions on
one channel therefore never shift because unrelated traffic elsewhere
consumed randomness, which keeps fault scenarios bit-for-bit reproducible
and lets benchmarks compare fault rates apples-to-apples.

The plan is pure data; the wiring lives in
:class:`repro.system.builder.WarehouseSystem`, which builds a
:class:`~repro.sim.network.ReliableChannel` (or, with ``reliable=False``,
a bare :class:`~repro.sim.network.LossyChannel`) per connection and
schedules the crashes.
"""

from __future__ import annotations

import random
import zlib
from dataclasses import dataclass

from repro.errors import FaultError
from repro.sim.network import Transmission


class ChannelFaultModel:
    """Per-channel fault source with its own deterministic RNG.

    Exactly three random draws are consumed per transmission regardless of
    the outcome, so raising one rate never perturbs the *pattern* of the
    other fault kinds for the same seed.
    """

    def __init__(
        self,
        drop_rate: float = 0.0,
        duplicate_rate: float = 0.0,
        delay_spike_rate: float = 0.0,
        delay_spike: float = 10.0,
        seed: int = 0,
    ) -> None:
        for name, rate in (
            ("drop_rate", drop_rate),
            ("duplicate_rate", duplicate_rate),
            ("delay_spike_rate", delay_spike_rate),
        ):
            if not 0.0 <= rate <= 1.0:
                raise FaultError(f"{name} must be in [0, 1], got {rate}")
        if delay_spike < 0:
            raise FaultError(f"delay_spike must be non-negative, got {delay_spike}")
        self.drop_rate = drop_rate
        self.duplicate_rate = duplicate_rate
        self.delay_spike_rate = delay_spike_rate
        self.delay_spike = delay_spike
        self._rng = random.Random(seed)
        self.decisions = 0

    def next_transmission(self) -> Transmission:
        rng = self._rng
        drop = rng.random() < self.drop_rate
        duplicates = 1 if rng.random() < self.duplicate_rate else 0
        extra = self.delay_spike if rng.random() < self.delay_spike_rate else 0.0
        self.decisions += 1
        return Transmission(drop=drop, duplicates=duplicates, extra_delay=extra)

    def __repr__(self) -> str:
        return (
            f"ChannelFaultModel(drop={self.drop_rate}, "
            f"dup={self.duplicate_rate}, spike={self.delay_spike_rate})"
        )


@dataclass(frozen=True, slots=True)
class CrashSpec:
    """Crash ``process`` at virtual time ``at``; restart ``restart_after`` later."""

    process: str
    at: float
    restart_after: float = 5.0

    def __post_init__(self) -> None:
        if not self.process:
            raise FaultError("a crash needs a process name")
        if self.at < 0:
            raise FaultError(f"crash time must be non-negative, got {self.at}")
        if self.restart_after <= 0:
            raise FaultError(
                f"restart_after must be positive, got {self.restart_after}"
            )


@dataclass(frozen=True, slots=True)
class FaultPlan:
    """Everything the environment does to a run, reproducible from a seed.

    ``reliable=True`` (the default) wires every system channel as a
    :class:`~repro.sim.network.ReliableChannel`, so the injected faults are
    *recovered* and MVC is preserved; ``reliable=False`` wires bare
    :class:`~repro.sim.network.LossyChannel` s, demonstrating how the
    paper's guarantees fail when its delivery assumptions are simply
    violated.  ``retransmit_timeout`` / ``backoff_factor`` /
    ``timeout_cap`` parameterise the recovery protocol.
    """

    seed: int = 0
    drop_rate: float = 0.0
    duplicate_rate: float = 0.0
    delay_spike_rate: float = 0.0
    delay_spike: float = 10.0
    crashes: tuple[CrashSpec, ...] = ()
    reliable: bool = True
    retransmit_timeout: float = 4.0
    backoff_factor: float = 2.0
    timeout_cap: float = 32.0

    def __post_init__(self) -> None:
        # Rate/spike validation is shared with the per-channel model.
        ChannelFaultModel(
            self.drop_rate,
            self.duplicate_rate,
            self.delay_spike_rate,
            self.delay_spike,
        )
        if self.retransmit_timeout <= 0:
            raise FaultError(
                f"retransmit_timeout must be positive, got {self.retransmit_timeout}"
            )
        if self.backoff_factor < 1:
            raise FaultError(
                f"backoff_factor must be >= 1, got {self.backoff_factor}"
            )
        if self.timeout_cap < self.retransmit_timeout:
            raise FaultError(
                f"timeout_cap {self.timeout_cap} below retransmit_timeout "
                f"{self.retransmit_timeout}"
            )
        if not isinstance(self.crashes, tuple):
            object.__setattr__(self, "crashes", tuple(self.crashes))

    # -- derived fault sources ------------------------------------------------
    def channel_seed(self, source: str, destination: str, salt: str = "") -> int:
        """A stable per-channel seed: independent of wiring or event order."""
        key = f"{self.seed}:{source}->{destination}:{salt}"
        return zlib.crc32(key.encode("utf-8"))

    def faults_for(self, source: str, destination: str) -> ChannelFaultModel:
        """The data-path fault model for the ``source -> destination`` channel."""
        return ChannelFaultModel(
            self.drop_rate,
            self.duplicate_rate,
            self.delay_spike_rate,
            self.delay_spike,
            seed=self.channel_seed(source, destination),
        )

    def ack_faults_for(self, source: str, destination: str) -> ChannelFaultModel:
        """The ack-path fault model (acks are as unreliable as data)."""
        return ChannelFaultModel(
            self.drop_rate,
            self.duplicate_rate,
            self.delay_spike_rate,
            self.delay_spike,
            seed=self.channel_seed(source, destination, salt="ack"),
        )

    # -- inspection ------------------------------------------------------------
    @property
    def faulty_network(self) -> bool:
        """True when any per-message fault can actually occur."""
        return (
            self.drop_rate > 0
            or self.duplicate_rate > 0
            or self.delay_spike_rate > 0
        )

    def describe(self) -> str:
        parts = [
            f"drop={self.drop_rate:g}",
            f"dup={self.duplicate_rate:g}",
            f"spike={self.delay_spike_rate:g}x{self.delay_spike:g}",
            "reliable" if self.reliable else "UNRELIABLE",
        ]
        parts.extend(
            f"crash {c.process}@{c.at:g}+{c.restart_after:g}" for c in self.crashes
        )
        return f"FaultPlan(seed={self.seed}, " + ", ".join(parts) + ")"
