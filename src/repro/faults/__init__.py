"""Fault injection: the environment the paper assumes away.

The paper's correctness results (§4–§5) stand on two environmental
assumptions — messages are never lost, and each channel is FIFO.  This
package makes those assumptions *violable*: a :class:`FaultPlan` injects
deterministic, seed-reproducible message drops, duplications, delay
spikes and process crash/restarts into a run, and the recovery layer
(:class:`~repro.sim.network.ReliableChannel` + merge-process checkpoints)
wins the assumptions back, so MVC can be demonstrated to hold — or shown
to fail — under a misbehaving environment.

See ``docs/faults.md`` for the fault model and the recovery protocol.
"""

from repro.faults.plan import ChannelFaultModel, CrashSpec, FaultPlan

__all__ = ["ChannelFaultModel", "CrashSpec", "FaultPlan"]
