"""Relevant-view computation, §3.2.

"A view is relevant to U_i if it needs to be modified because of U_i.
For example, ... the integrator can determine the source relation R that
was modified by U_i.  Then it can include in REL_i all views that use R in
their definition.  We could be more discerning by using selection
conditions in the view definitions to rule out irrelevant updates [7]."

Both levels are implemented:

* the **base-relation test** — view reads the updated relation;
* the **selection-condition test** of Blakeley et al. [7] — additionally
  require that some touched row could satisfy the view's selection
  predicates restricted to the updated relation's attributes.  A modify
  whose old and new rows both fail the restricted predicate, or an
  insert/delete whose row fails it, provably cannot change the view.
"""

from __future__ import annotations

from typing import Iterable, Mapping, Sequence

from repro.relational.expressions import (
    Aggregate,
    BaseRelation,
    Expression,
    Join,
    Project,
    Select,
    ViewDefinition,
)
from repro.relational.predicates import And, Predicate, TRUE
from repro.relational.schema import Schema
from repro.sources.update import Update


def _contains_aggregate(expr: Expression) -> bool:
    if isinstance(expr, Aggregate):
        return True
    if isinstance(expr, Select):
        return _contains_aggregate(expr.child)
    if isinstance(expr, Project):
        return _contains_aggregate(expr.child)
    if isinstance(expr, Join):
        return _contains_aggregate(expr.left) or _contains_aggregate(expr.right)
    return False


def _collect_selections(expr: Expression) -> Predicate:
    """Conjunction of the selection predicates that apply to *base rows*.

    A predicate sitting above an :class:`Aggregate` constrains aggregate
    outputs, not base rows — and an aggregate alias may shadow a base
    attribute name — so collection stops at aggregates (only predicates
    *below* them are gathered).
    """
    if isinstance(expr, Select):
        inner = _collect_selections(expr.child)
        if _contains_aggregate(expr.child):
            return inner
        return expr.predicate if inner is TRUE else And(expr.predicate, inner)
    if isinstance(expr, Project):
        return _collect_selections(expr.child)
    if isinstance(expr, Aggregate):
        return _collect_selections(expr.child)
    if isinstance(expr, Join):
        left = _collect_selections(expr.left)
        right = _collect_selections(expr.right)
        if left is TRUE:
            return right
        if right is TRUE:
            return left
        return And(left, right)
    if isinstance(expr, BaseRelation):
        return TRUE
    return TRUE


class RelevanceFilter:
    """Decides which views each update is relevant to."""

    def __init__(
        self,
        definitions: Sequence[ViewDefinition],
        base_schemas: Mapping[str, Schema],
        use_selections: bool = False,
    ) -> None:
        self.definitions = tuple(definitions)
        self.use_selections = use_selections
        self._base_schemas = dict(base_schemas)
        self._by_relation: dict[str, list[ViewDefinition]] = {}
        self._selections: dict[str, Predicate] = {}
        for definition in self.definitions:
            self._selections[definition.name] = _collect_selections(
                definition.expression
            )
            for relation in definition.base_relations():
                self._by_relation.setdefault(relation, []).append(definition)

    def restricted_predicate(self, view: str, relation: str) -> Predicate:
        """The view's selection conjunction, restricted to ``relation``.

        This is both the routing test for updates on ``relation`` and the
        invariant a cached-mode manager's replica of ``relation`` must
        satisfy (``replica = sigma_restricted(relation)``): a row the
        predicate rejects can never contribute to the view, so dropping it
        from routing *and* from the replica keeps deltas exact — including
        modifies that move a row across the selection boundary.
        """
        schema = self._base_schemas[relation]
        return self._selections[view].restrict_to(frozenset(schema.names))

    def views_reading(self, relation: str) -> tuple[str, ...]:
        """Views whose definition mentions ``relation`` (base-relation test)."""
        return tuple(d.name for d in self._by_relation.get(relation, ()))

    def is_relevant(self, definition: ViewDefinition, update: Update) -> bool:
        """Could ``update`` change ``definition``'s contents (now or later)?"""
        if update.relation not in definition.base_relations():
            return False
        if not self.use_selections:
            return True
        predicate = self.restricted_predicate(definition.name, update.relation)
        return any(predicate.evaluate(row) for row in update.touched_rows())

    def relevant_views(self, updates: Iterable[Update]) -> frozenset[str]:
        """``REL_i`` for a (possibly multi-update, §6.2) transaction."""
        relevant: set[str] = set()
        for update in updates:
            for definition in self._by_relation.get(update.relation, ()):
                if definition.name in relevant:
                    continue
                if self.is_relevant(definition, update):
                    relevant.add(definition.name)
        return frozenset(relevant)

    def relevant_updates_for_view(
        self, view: str, updates: Iterable[Update]
    ) -> tuple[Update, ...]:
        """The subset of a transaction's updates that ``view`` must see."""
        definition = next(d for d in self.definitions if d.name == view)
        return tuple(
            u for u in updates if self.is_relevant(definition, u)
        )


def relevant_views(
    definitions: Sequence[ViewDefinition],
    base_schemas: Mapping[str, Schema],
    updates: Iterable[Update],
    use_selections: bool = False,
) -> frozenset[str]:
    """One-shot convenience wrapper around :class:`RelevanceFilter`."""
    filt = RelevanceFilter(definitions, base_schemas, use_selections)
    return filt.relevant_views(updates)
