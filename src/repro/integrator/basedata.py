"""The base-data service: versioned base relations for view managers.

The paper notes delta computation "may involve queries back to the
sources if base data is not cached at the warehouse" (§1.1).  This service
is that cache, co-located with the integrator: it replays the numbered
update stream into a :class:`VersionedDatabase` whose version ``i`` is the
base state after update ``U_i``, and answers view-manager queries:

* ``version=i``    — the multiversion snapshot as of ``U_i`` (complete
  and snapshot-mode managers);
* ``version=None`` — the current state, optionally with the undo
  information (``undo_from``) a compensating manager needs to roll the
  state back (Strobe-flavoured autonomous-source mode);
* a query for a version that has not been reached yet is *deferred* and
  answered as soon as the stream catches up.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import SourceError
from repro.messages import NumberedUpdate, SnapshotQuery, SnapshotResponse
from repro.relational.database import Database, VersionedDatabase
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.sim.process import Process
from repro.sources.update import Update

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class BaseDataService(Process):
    """Versioned replica of the base data, keyed by integrator numbering."""

    def __init__(
        self,
        sim: "Simulator",
        name: str = "basedata",
        per_query_cost: float = 0.0,
        retain_window: int | None = None,
    ) -> None:
        super().__init__(sim, name)
        self._db = VersionedDatabase()
        self._log: list[tuple[int, Update]] = []
        self._deferred: list[SnapshotQuery] = []
        self.per_query_cost = per_query_cost
        self.retain_window = retain_window
        self.queries_answered = 0
        self.queries_deferred = 0

    # -- setup ------------------------------------------------------------
    def seed(self, initial: Database, schemas: Mapping[str, Schema]) -> None:
        """Copy the initial base state (``ss_0``) into the replica."""
        for relation in sorted(schemas):
            self._db.create_relation(
                relation, schemas[relation], iter(initial.relation(relation))
            )

    @property
    def version(self) -> int:
        return self._db.version

    # -- message handling --------------------------------------------------------
    def service_time(self, message: object) -> float:
        if isinstance(message, SnapshotQuery):
            return self.per_query_cost
        return 0.0

    def handle(self, message: object, sender: Process) -> None:
        if isinstance(message, NumberedUpdate):
            self._apply(message)
        elif isinstance(message, SnapshotQuery):
            self._answer_or_defer(message)
        else:
            raise SourceError(
                f"base-data service cannot handle {type(message).__name__}"
            )

    def _apply(self, message: NumberedUpdate) -> None:
        expected = self._db.version + 1
        if message.update_id != expected:
            raise SourceError(
                f"numbered update {message.update_id} arrived out of order "
                f"(expected {expected})"
            )
        deltas: dict[str, Delta] = {}
        for update in message.updates:
            existing = deltas.get(update.relation, Delta())
            deltas[update.relation] = existing.combined(update.as_delta())
            self._log.append((message.update_id, update))
        self._db.commit(deltas)
        if self.retain_window is not None:
            self._db.prune_below(self._db.version - self.retain_window)
        # The new version may satisfy deferred snapshot queries.
        still_waiting: list[SnapshotQuery] = []
        for query in self._deferred:
            if query.version is not None and query.version <= self._db.version:
                self._respond(query)
            else:
                still_waiting.append(query)
        self._deferred = still_waiting

    def _answer_or_defer(self, query: SnapshotQuery) -> None:
        if query.version is not None and query.version > self._db.version:
            self._deferred.append(query)
            self.queries_deferred += 1
            return
        self._respond(query)

    def _respond(self, query: SnapshotQuery) -> None:
        version = self._db.version if query.version is None else query.version
        state = self._db.as_of(version)
        # Zero-copy: ``state`` is a frozen snapshot, so its count mappings
        # can be shipped as read-only views instead of per-query copies.
        contents: dict[str, Mapping[Row, int]] = {
            relation: state.relation(relation).counts_view()
            for relation in sorted(query.relations)
        }
        undo: tuple[tuple[int, Update], ...] = ()
        if query.undo_from is not None:
            undo = self._undo_since(query.undo_from, version, query.relations)
        self.queries_answered += 1
        self.send(
            query.requester,
            SnapshotResponse(query.query_id, version, contents, undo),
        )

    def _undo_since(
        self, after: int, through: int, relations: Iterable[str]
    ) -> tuple[tuple[int, Update], ...]:
        wanted = frozenset(relations)
        return tuple(
            (update_id, update)
            for update_id, update in self._log
            if after < update_id <= through and update.relation in wanted
        )
