"""The integrator process, §3.2.

On each committed-transaction report the integrator

1. numbers the update by arrival order (``U_5`` is the fifth received);
2. determines the relevant view set ``REL_i``;
3. sends ``REL_i`` to the merge process(es) responsible for those views;
4. sends a copy of ``U_i`` to each relevant view manager;

plus, in this implementation, feeds the numbered stream to the base-data
service (so snapshot/compensate-mode view managers have something to
query) and, for complete-N systems, broadcasts end-of-block markers.
"""

from __future__ import annotations

from typing import TYPE_CHECKING, Mapping, Sequence

from repro.errors import IntegratorError
from repro.integrator.relevance import RelevanceFilter
from repro.messages import NumberedUpdate, RelMessage, UpdateForView, UpdateNotification
from repro.relational.expressions import ViewDefinition
from repro.relational.schema import Schema
from repro.sim.process import Process
from repro.viewmgr.complete_n import EndOfBlock

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator
    from repro.sources.transactions import SourceTransaction


class Integrator(Process):
    """Numbers updates and routes them to merges and view managers."""

    def __init__(
        self,
        sim: "Simulator",
        definitions: Sequence[ViewDefinition],
        base_schemas: Mapping[str, Schema],
        name: str = "integrator",
        merge_groups: Mapping[str, tuple[str, ...]] | None = None,
        view_manager_names: Mapping[str, str] | None = None,
        service_name: str | None = "basedata",
        use_selection_filtering: bool = False,
        send_empty_rels: bool = False,
        block_size: int | None = None,
        per_update_cost: float = 0.0,
    ) -> None:
        super().__init__(sim, name)
        self.definitions = tuple(definitions)
        self.filter = RelevanceFilter(
            self.definitions, base_schemas, use_selections=use_selection_filtering
        )
        view_names = tuple(d.name for d in self.definitions)
        self.merge_groups: dict[str, frozenset[str]] = {
            merge: frozenset(views)
            for merge, views in (merge_groups or {"merge": view_names}).items()
        }
        self._check_groups(view_names)
        self.view_manager_names = dict(
            view_manager_names or {v: f"vm:{v}" for v in view_names}
        )
        self.service_name = service_name
        self.send_empty_rels = send_empty_rels
        self.block_size = block_size
        self.per_update_cost = per_update_cost
        self.updates_numbered = 0
        self.rel_messages_sent = 0
        self.update_copies_sent = 0
        self.filtered_out = 0  # view routings suppressed by selection filtering
        #: (update_id, transaction, source commit time) in numbering order —
        #: the reference schedule the consistency checkers replay.
        self.numbered: list[tuple[int, "SourceTransaction", float]] = []

    def _check_groups(self, view_names: tuple[str, ...]) -> None:
        covered: set[str] = set()
        for merge, views in self.merge_groups.items():
            overlap = covered & views
            if overlap:
                raise IntegratorError(
                    f"views {sorted(overlap)} assigned to several merges"
                )
            covered |= views
        missing = set(view_names) - covered
        if missing:
            raise IntegratorError(f"views {sorted(missing)} have no merge process")

    # -- message handling ------------------------------------------------------
    def service_time(self, message: object) -> float:
        return self.per_update_cost

    def handle(self, message: object, sender: Process) -> None:
        if not isinstance(message, UpdateNotification):
            raise IntegratorError(
                f"integrator cannot handle {type(message).__name__}"
            )
        transaction = message.transaction
        self.updates_numbered += 1
        update_id = self.updates_numbered
        self.numbered.append((update_id, transaction, message.commit_time))

        # Keep the base-data service's versions aligned with our numbering.
        if self.service_name is not None:
            self.send(
                self.service_name,
                NumberedUpdate(update_id, transaction.updates),
            )

        relevant = self.filter.relevant_views(transaction.updates)
        base_level = frozenset(
            view
            for update in transaction.updates
            for view in self.filter.views_reading(update.relation)
        )
        self.filtered_out += len(base_level - relevant)
        # ``lineage`` links our numbering back to the source world's commit
        # sequence, completing the source->warehouse causal chain
        # (see repro.obs.lineage).
        self.trace(
            "int_number",
            update_id=update_id,
            rel=tuple(sorted(relevant)),
            lineage=message.lineage_id,
            commit_time=message.commit_time,
        )

        # Step 3: REL_i to each merge owning some relevant view.  A single
        # transaction must stay within one merge group: groups share no
        # base relations (§6.1), so only a multi-update transaction could
        # span groups — and then no single merge could apply it atomically.
        touched_groups = [
            merge
            for merge, group in self.merge_groups.items()
            if relevant & group
        ]
        if len(touched_groups) > 1:
            raise IntegratorError(
                f"transaction U{update_id} is relevant to views in several "
                f"merge groups ({sorted(touched_groups)}); §6.1 partitioning "
                f"cannot apply it atomically — use fewer merge groups or "
                f"keep transactions within one group"
            )
        for merge, group in sorted(self.merge_groups.items()):
            subset = relevant & group
            if subset or self.send_empty_rels:
                self.send(merge, RelMessage(update_id, subset))
                self.rel_messages_sent += 1

        # Step 4: a copy of U_i to each relevant view manager, restricted
        # to the updates that view actually reads (matters for §6.2
        # multi-update transactions).
        for view in sorted(relevant):
            updates = self.filter.relevant_updates_for_view(
                view, transaction.updates
            )
            self.send(
                self.view_manager_names[view],
                UpdateForView(update_id, view, updates),
            )
            self.update_copies_sent += 1

        # Complete-N support: close blocks as numbering crosses boundaries.
        if self.block_size and update_id % self.block_size == 0:
            marker = EndOfBlock(update_id // self.block_size, update_id)
            for vm_name in sorted(set(self.view_manager_names.values())):
                self.send(vm_name, marker)
