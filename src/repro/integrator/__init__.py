"""The integrator and its base-data service.

The integrator (§3.2) numbers incoming source updates by arrival order,
computes the relevant-view set ``REL_i`` for each, forwards ``REL_i`` to
the merge process(es) and a copy of the update to every relevant view
manager.

The :class:`BaseDataService` plays the role of "base data cached at the
warehouse" that §1.1 mentions: it replays the numbered update stream into
a versioned database so view managers can read consistent pre-states
(multiversion snapshots) or current state plus undo information
(compensation mode) without re-contacting autonomous sources.
"""

from repro.integrator.relevance import RelevanceFilter, relevant_views
from repro.integrator.integrator import Integrator
from repro.integrator.basedata import BaseDataService

__all__ = [
    "RelevanceFilter",
    "relevant_views",
    "Integrator",
    "BaseDataService",
]
