"""Multiple View Consistency for Data Warehousing — a full reproduction.

This library reimplements the system and algorithms of

    Yue Zhuge, Janet L. Wiener, Hector Garcia-Molina.
    "Multiple View Consistency for Data Warehousing." ICDE 1997.

Quick start::

    from repro import (
        SystemConfig, WarehouseSystem, Update,
        paper_world, paper_views_example1,
    )

    world = paper_world()
    system = WarehouseSystem(world, paper_views_example1(),
                             SystemConfig(manager_kind="complete"))
    system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
    system.run()
    assert system.check_mvc("complete").ok

Packages:

* :mod:`repro.relational`  — multiset relational engine + delta rules
* :mod:`repro.sim`         — deterministic discrete-event kernel
* :mod:`repro.sources`     — autonomous sources, transactions, world
* :mod:`repro.integrator`  — update numbering, REL computation, base cache
* :mod:`repro.viewmgr`     — complete / strong / complete-N / periodic /
  convergent (and deliberately broken) view managers
* :mod:`repro.merge`       — the VUT, SPA, PA, submission policies,
  distributed merging
* :mod:`repro.warehouse`   — view store + transactional applier
* :mod:`repro.consistency` — executable §2 definitions (test oracles)
* :mod:`repro.system`      — Figure-1 assembly, metrics
* :mod:`repro.workloads`   — schemas and seeded update streams
* :mod:`repro.obs`         — observability: causal lineage, metrics
  registry, trace exporters (Perfetto / JSONL / timeline)
* :mod:`repro.conformance` — schedule-exploration conformance engine:
  seeded violation hunts, delta-debugged minimal reproducers, the
  guarantee matrix
* :mod:`repro.cache`       — content-addressed materialization cache:
  blake2b artifact keys, the atomic integrity-verified store, and warm
  crash-restart for view managers and merge processes
"""

from repro.errors import (
    ConsistencyViolation,
    FaultError,
    MergeError,
    ReproError,
    SchemaError,
    SourceError,
    ViewManagerError,
    WarehouseError,
)
from repro.faults import ChannelFaultModel, CrashSpec, FaultPlan
from repro.relational import (
    Aggregate,
    AggregateSpec,
    Attribute,
    AttrType,
    Database,
    Delta,
    MaintenancePlan,
    MaterializedView,
    PlanLibrary,
    Relation,
    Row,
    Schema,
    ViewDefinition,
    evaluate,
    parse_view,
    propagate_delta,
    to_sql,
)
from repro.relational.catalog import dump_views, load_views, parse_catalog
from repro.sources import (
    GlobalTransactionCoordinator,
    SilentSource,
    SnapshotDiffMonitor,
    Source,
    SourceTransaction,
    SourceWorld,
    Update,
    UpdateKind,
)
from repro.merge import (
    PaintingAlgorithm,
    ShardRouter,
    SimplePaintingAlgorithm,
    ViewUpdateTable,
    partition_views,
    shard_view_groups,
)
from repro.consistency import (
    check_mvc_complete,
    check_mvc_convergent,
    check_mvc_strong,
    classify_mvc,
    replay_source_states,
)
from repro.obs import (
    Lineage,
    LineageHop,
    MetricsRegistry,
    UpdateLineage,
    write_chrome_trace,
    write_jsonl,
    write_timeline,
    write_trace,
)
from repro.cache import ArtifactStore, CacheConfig, CacheServer, artifact_key
from repro.conformance import (
    Explorer,
    Reproducer,
    ScenarioSpec,
    run_matrix,
)
from repro.system import (
    RunMetrics,
    SweepRow,
    SystemConfig,
    WarehouseSystem,
    format_sweep,
    sweep,
)
from repro.workloads import (
    UpdateStreamGenerator,
    WorkloadSpec,
    bank_views,
    bank_world,
    paper_views_example1,
    paper_views_example2,
    paper_views_example3,
    paper_views_example5,
    paper_world,
    star_views,
    star_world,
)

__version__ = "1.0.0"

__all__ = [
    "__version__",
    # errors
    "ReproError",
    "SchemaError",
    "SourceError",
    "ViewManagerError",
    "MergeError",
    "WarehouseError",
    "ConsistencyViolation",
    "FaultError",
    # faults
    "FaultPlan",
    "CrashSpec",
    "ChannelFaultModel",
    # relational
    "Attribute",
    "AttrType",
    "Schema",
    "Row",
    "Relation",
    "Delta",
    "Database",
    "ViewDefinition",
    "Aggregate",
    "AggregateSpec",
    "MaintenancePlan",
    "PlanLibrary",
    "MaterializedView",
    "evaluate",
    "propagate_delta",
    "parse_view",
    "to_sql",
    "parse_catalog",
    "load_views",
    "dump_views",
    # sources
    "Update",
    "UpdateKind",
    "SourceTransaction",
    "SourceWorld",
    "Source",
    "GlobalTransactionCoordinator",
    "SilentSource",
    "SnapshotDiffMonitor",
    # merge
    "ViewUpdateTable",
    "SimplePaintingAlgorithm",
    "PaintingAlgorithm",
    "ShardRouter",
    "partition_views",
    "shard_view_groups",
    # consistency
    "replay_source_states",
    "check_mvc_complete",
    "check_mvc_strong",
    "check_mvc_convergent",
    "classify_mvc",
    # observability
    "Lineage",
    "UpdateLineage",
    "LineageHop",
    "MetricsRegistry",
    "write_trace",
    "write_chrome_trace",
    "write_jsonl",
    "write_timeline",
    # cache
    "ArtifactStore",
    "CacheConfig",
    "CacheServer",
    "artifact_key",
    # conformance
    "ScenarioSpec",
    "Explorer",
    "Reproducer",
    "run_matrix",
    # system
    "SystemConfig",
    "WarehouseSystem",
    "RunMetrics",
    "sweep",
    "SweepRow",
    "format_sweep",
    # workloads
    "paper_world",
    "paper_views_example1",
    "paper_views_example2",
    "paper_views_example3",
    "paper_views_example5",
    "bank_world",
    "bank_views",
    "star_world",
    "star_views",
    "WorkloadSpec",
    "UpdateStreamGenerator",
]
