"""The materialized view store and the warehouse state sequence.

:class:`ViewStore` holds the current contents of every warehouse view and
appends a :class:`WarehouseState` snapshot after each committed
transaction — the ``ws_0, ws_1, ..., ws_q`` sequence of §2.3, where each
state is "a vector with one element for the state of each view".
The consistency checkers consume this history directly.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import Iterable, Mapping

from repro.errors import WarehouseError
from repro.relational.expressions import ViewDefinition
from repro.relational.relation import Relation
from repro.relational.schema import Schema
from repro.warehouse.txn import WarehouseTransaction


@dataclass(frozen=True, slots=True)
class WarehouseState:
    """One element of the warehouse state sequence."""

    index: int
    txn_id: int
    time: float
    covered_rows: tuple[int, ...]
    views: Mapping[str, Relation]
    detail: dict = field(default_factory=dict, compare=False)

    def view(self, name: str) -> Relation:
        try:
            return self.views[name]
        except KeyError:
            raise WarehouseError(f"state has no view {name!r}") from None


class ViewStore:
    """Current view contents plus the committed-state history."""

    def __init__(
        self,
        definitions: Iterable[ViewDefinition],
        base_schemas: Mapping[str, Schema],
        record_history: bool = True,
    ) -> None:
        self._definitions: dict[str, ViewDefinition] = {}
        self._views: dict[str, Relation] = {}
        self._history: list[WarehouseState] = []
        self.record_history = record_history
        for definition in definitions:
            if definition.name in self._definitions:
                raise WarehouseError(f"duplicate view {definition.name!r}")
            schema = definition.expression.infer_schema(base_schemas)
            self._definitions[definition.name] = definition
            self._views[definition.name] = Relation(schema)
        self._record_state(txn_id=-1, time=0.0, covered=())

    # -- contents -----------------------------------------------------------
    @property
    def view_names(self) -> tuple[str, ...]:
        return tuple(sorted(self._views))

    def definition(self, name: str) -> ViewDefinition:
        try:
            return self._definitions[name]
        except KeyError:
            raise WarehouseError(f"unknown view {name!r}") from None

    def view(self, name: str) -> Relation:
        try:
            return self._views[name]
        except KeyError:
            raise WarehouseError(f"unknown view {name!r}") from None

    def initialize_view(self, name: str, contents: Relation) -> None:
        """Set a view's initial materialization (before any transaction)."""
        if self._history and self._history[-1].txn_id != -1:
            raise WarehouseError("views must be initialized before any commit")
        self.view(name).replace_all(iter(contents))
        self._history.clear()
        self._record_state(txn_id=-1, time=0.0, covered=())

    # -- commits -----------------------------------------------------------------
    def apply(self, txn: WarehouseTransaction, time: float) -> WarehouseState:
        """Apply every action list of ``txn`` atomically; snapshot the state."""
        touched = [
            (al, self.view(al.view)) for al in txn.action_lists
        ]  # resolve views first so an unknown view aborts before any change
        undo = {al.view: view.copy() for al, view in touched}
        try:
            for action_list in txn.action_lists:
                target = self._views[action_list.view]
                for action in action_list.actions:
                    action.apply_to(target)
        except Exception:
            for name, saved in undo.items():
                self._views[name] = saved
            raise
        return self._record_state(txn.txn_id, time, txn.covered_rows)

    def _record_state(
        self, txn_id: int, time: float, covered: tuple[int, ...]
    ) -> WarehouseState:
        state = WarehouseState(
            index=len(self._history),
            txn_id=txn_id,
            time=time,
            covered_rows=covered,
            views={name: rel.copy() for name, rel in self._views.items()},
        )
        if self.record_history or not self._history:
            self._history.append(state)
        else:
            # Keep only the initial and the latest state when history is off.
            if len(self._history) > 1:
                self._history[-1] = state
            else:
                self._history.append(state)
        return state

    # -- history --------------------------------------------------------------
    @property
    def history(self) -> tuple[WarehouseState, ...]:
        return tuple(self._history)

    @property
    def current_state(self) -> WarehouseState:
        return self._history[-1]

    def states_of_view(self, name: str) -> list[Relation]:
        """The (single-view) warehouse state sequence for one view."""
        return [state.view(name) for state in self._history]
