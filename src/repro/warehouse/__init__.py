"""The warehouse: materialized views plus a transactional applier.

The warehouse applies *warehouse transactions* — bundles of action lists
that must take effect atomically (paper §1.1 Problem 1) — and exposes the
warehouse state sequence ``ws_0 .. ws_q`` that the consistency
definitions of Section 2 are stated over.

Commit ordering is the §4.3 concern: two transactions whose view sets
intersect ("dependent" transactions) must commit in submission order.
:class:`WarehouseProcess` can execute transactions on several parallel
executor slots — which is exactly what lets out-of-order commits happen
when the merge process does *not* sequence dependent transactions, and
what the dependency-aware policies prevent.
"""

from repro.warehouse.txn import WarehouseTransaction
from repro.warehouse.store import ViewStore, WarehouseState
from repro.warehouse.warehouse import WarehouseProcess

__all__ = [
    "WarehouseTransaction",
    "ViewStore",
    "WarehouseState",
    "WarehouseProcess",
]
