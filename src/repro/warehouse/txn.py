"""Warehouse transactions (``WT_i`` and batched ``BWT`` of §4.3)."""

from __future__ import annotations

from dataclasses import dataclass

from repro.errors import WarehouseError
from repro.viewmgr.actions import ActionList


@dataclass(frozen=True, slots=True)
class WarehouseTransaction:
    """An atomic bundle of action lists for the warehouse.

    ``covered_rows`` are the VUT row numbers (update ids) whose action
    lists this transaction applies; ``view_set`` is ``VS(WT)`` from §4.3 —
    the set of views the transaction updates.  Two transactions are
    *dependent* when their view sets intersect; dependent transactions
    must commit in submission order.
    """

    txn_id: int
    merge_name: str
    action_lists: tuple[ActionList, ...]
    covered_rows: tuple[int, ...]

    def __post_init__(self) -> None:
        if not self.covered_rows:
            raise WarehouseError("a warehouse transaction must cover some update")
        if list(self.covered_rows) != sorted(set(self.covered_rows)):
            raise WarehouseError(
                f"covered rows must be strictly increasing: {self.covered_rows}"
            )

    @property
    def view_set(self) -> frozenset[str]:
        """``VS(WT)``: the views this transaction carries action lists for.

        Content-empty action lists count: a no-effect transaction still
        advances its views' update bookkeeping, so commit ordering must
        treat it as dependent on (and depended on by) its views' other
        transactions — otherwise a no-op could commit out of order and
        leave the reconstructed application schedule inconsistent.
        """
        return frozenset(al.view for al in self.action_lists)

    @property
    def effective_views(self) -> frozenset[str]:
        """Views whose contents this transaction actually changes."""
        return frozenset(al.view for al in self.action_lists if not al.is_empty)

    def depends_on(self, earlier: "WarehouseTransaction") -> bool:
        """§4.3: ``WT_j`` depends on ``WT_i`` iff j > i and view sets meet."""
        if self.txn_id <= earlier.txn_id:
            return False
        return bool(self.view_set & earlier.view_set)

    @property
    def is_batch(self) -> bool:
        """True when this bundles several logical WTs (a ``BWT``)."""
        return len(self.covered_rows) > 1

    def __str__(self) -> str:
        rows = ",".join(str(r) for r in self.covered_rows)
        views = ",".join(sorted(self.view_set)) or "-"
        return f"WT{self.txn_id}(rows {{{rows}}} views {{{views}}})"


def batch(
    txn_id: int,
    merge_name: str,
    transactions: list[WarehouseTransaction],
) -> WarehouseTransaction:
    """Combine several ready transactions into one ``BWT`` (§4.3).

    Dependent constituents must be given in submission order; their action
    lists are concatenated in that order so that "if WT_j depends on WT_i,
    all ALs in WT_i appear before all ALs in WT_j".
    """
    if not transactions:
        raise WarehouseError("cannot batch zero transactions")
    lists: list[ActionList] = []
    rows: set[int] = set()
    for txn in transactions:
        lists.extend(txn.action_lists)
        # Convergent managers may split one update across several
        # transactions; the batch covers each update once.
        rows.update(txn.covered_rows)
    return WarehouseTransaction(
        txn_id, merge_name, tuple(lists), tuple(sorted(rows))
    )
