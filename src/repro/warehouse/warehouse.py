"""The warehouse process: parallel executors with commit-order control.

Section 4.3 observes that after the merge process submits ``WT_1`` then
``WT_3``, "it is possible that the warehouse DBMS will commit WT_3 before
WT_1" — breaking MVC when the two are dependent.  To let that hazard
actually occur (and be prevented), :class:`WarehouseProcess` executes
transactions on ``executors`` parallel slots with data-dependent execution
times, so completion order can differ from submission order.

Ordering controls, mirroring the paper's options:

* the merge process can serialise submissions itself (sequential and
  dependency-sequenced policies in :mod:`repro.merge.submission`); or
* it can attach ``sequenced_after`` dependency info and let the warehouse
  enforce it (``supports_dependencies=True`` — "if the warehouse DBMS can
  provide transaction dependency capabilities").
"""

from __future__ import annotations

from collections import deque
from typing import TYPE_CHECKING

from repro.errors import WarehouseError
from repro.messages import CommitNotification, WarehouseTransactionMsg
from repro.sim.process import Process
from repro.warehouse.store import ViewStore
from repro.warehouse.txn import WarehouseTransaction

if TYPE_CHECKING:  # pragma: no cover
    from repro.sim.kernel import Simulator


class WarehouseProcess(Process):
    """Applies warehouse transactions to the view store."""

    def __init__(
        self,
        sim: "Simulator",
        store: ViewStore,
        name: str = "warehouse",
        executors: int = 1,
        per_txn_overhead: float = 1.0,
        per_action_cost: float = 0.1,
        supports_dependencies: bool = True,
    ) -> None:
        super().__init__(sim, name)
        if executors < 1:
            raise WarehouseError(f"need at least one executor, got {executors}")
        self.store = store
        self.executors = executors
        self.per_txn_overhead = per_txn_overhead
        self.per_action_cost = per_action_cost
        self.supports_dependencies = supports_dependencies
        self._admission: deque[WarehouseTransactionMsg] = deque()
        self._executing: dict[int, WarehouseTransactionMsg] = {}
        self._awaiting_deps: list[WarehouseTransactionMsg] = []
        self._committed_ids: set[int] = set()
        self.commits = 0

    # -- message handling ----------------------------------------------------
    def handle(self, message: object, sender: Process) -> None:
        if not isinstance(message, WarehouseTransactionMsg):
            raise WarehouseError(
                f"warehouse cannot handle {type(message).__name__}"
            )
        if message.sequenced_after and not self.supports_dependencies:
            raise WarehouseError(
                "merge attached dependency info but this warehouse DBMS does "
                "not support transaction dependencies"
            )
        self._admission.append(message)
        self._fill_slots()

    def _fill_slots(self) -> None:
        while self._admission and len(self._executing) < self.executors:
            message = self._admission.popleft()
            txn = message.txn
            self._executing[txn.txn_id] = message
            cost = self.execution_time(txn)
            self.trace("wh_start", txn=txn.txn_id, cost=round(cost, 4))
            self.sim.schedule(cost, self._complete, message)

    def execution_time(self, txn: WarehouseTransaction) -> float:
        """Execution cost: fixed overhead plus per-changed-row work."""
        changed_rows = sum(
            len(action.delta) + len(action.replacement)
            for al in txn.action_lists
            for action in al.actions
        )
        return self.per_txn_overhead + self.per_action_cost * changed_rows

    def _complete(self, message: WarehouseTransactionMsg) -> None:
        txn = message.txn
        del self._executing[txn.txn_id]
        if self._can_commit(message):
            self._commit(message)
            self._retry_waiting()
        else:
            self._awaiting_deps.append(message)
        self._fill_slots()

    def _can_commit(self, message: WarehouseTransactionMsg) -> bool:
        if not self.supports_dependencies:
            return True
        return all(dep in self._committed_ids for dep in message.sequenced_after)

    def _retry_waiting(self) -> None:
        progressed = True
        while progressed:
            progressed = False
            for message in list(self._awaiting_deps):
                if self._can_commit(message):
                    self._awaiting_deps.remove(message)
                    self._commit(message)
                    progressed = True

    def _commit(self, message: WarehouseTransactionMsg) -> None:
        txn = message.txn
        state = self.store.apply(txn, self.sim.now)
        self._committed_ids.add(txn.txn_id)
        self.commits += 1
        self.trace(
            "wh_commit",
            txn=txn.txn_id,
            rows=txn.covered_rows,
            views=tuple(sorted(txn.view_set)),
            state_index=state.index,
        )
        notification = CommitNotification(txn.txn_id, self.sim.now, txn.merge_name)
        if txn.merge_name in self.peers():
            self.send(txn.merge_name, notification)

    # -- inspection ------------------------------------------------------------
    @property
    def in_flight(self) -> int:
        return len(self._executing) + len(self._awaiting_deps) + len(self._admission)

    def committed(self, txn_id: int) -> bool:
        return txn_id in self._committed_ids
