"""Seeded update-stream generation.

A :class:`WorkloadSpec` describes rates and mixes; an
:class:`UpdateStreamGenerator` turns it into a list of
``(time, SourceTransaction)`` pairs ready for
:meth:`WarehouseSystem.post`.  Generation maintains a planning mirror of
every relation so deletes and modifies always target rows that will be
live at execution time (per-relation streams are generated in time order
and each relation belongs to exactly one source, so the mirror order
matches the commit order).
"""

from __future__ import annotations

import random
from dataclasses import dataclass, field
from typing import Iterator, Mapping, Sequence

from repro.errors import ReproError
from repro.relational.rows import Row
from repro.relational.schema import AttrType, Schema
from repro.sources.transactions import SourceTransaction
from repro.sources.update import Update
from repro.sources.world import SourceWorld


@dataclass
class WorkloadSpec:
    """Shape of a synthetic update stream.

    ``mix`` gives (insert, delete, modify) weights.  ``value_range`` bounds
    generated integer attribute values — small ranges produce hot keys and
    join fan-out, large ranges produce sparse joins.  ``arrivals`` is
    "uniform" (evenly spaced) or "poisson" (exponential gaps).
    ``relation_weights`` biases which relation each update touches.
    """

    updates: int = 100
    rate: float = 1.0  # mean updates per unit time, across all sources
    mix: tuple[float, float, float] = (0.6, 0.2, 0.2)
    value_range: int = 10
    arrivals: str = "uniform"
    relation_weights: Mapping[str, float] = field(default_factory=dict)
    multi_update_fraction: float = 0.0  # §6.2 transactions with 2-3 updates
    #: fraction of generated integer values drawn from the hot-key set
    #: [0, hot_keys) instead of [0, value_range) — skewed join fan-out
    hot_fraction: float = 0.0
    hot_keys: int = 1
    seed: int = 0

    def __post_init__(self) -> None:
        if self.updates < 0:
            raise ReproError(f"updates must be >= 0, got {self.updates}")
        if self.rate <= 0:
            raise ReproError(f"rate must be positive, got {self.rate}")
        if self.arrivals not in ("uniform", "poisson"):
            raise ReproError(f"unknown arrival process {self.arrivals!r}")
        if len(self.mix) != 3 or min(self.mix) < 0 or sum(self.mix) == 0:
            raise ReproError(f"bad insert/delete/modify mix {self.mix}")
        if not 0 <= self.multi_update_fraction <= 1:
            raise ReproError(
                f"multi_update_fraction must be in [0,1], "
                f"got {self.multi_update_fraction}"
            )
        if not 0 <= self.hot_fraction <= 1:
            raise ReproError(
                f"hot_fraction must be in [0,1], got {self.hot_fraction}"
            )
        if self.hot_keys < 1:
            raise ReproError(f"hot_keys must be >= 1, got {self.hot_keys}")


class UpdateStreamGenerator:
    """Generates schedulable transactions against a source world."""

    def __init__(self, world: SourceWorld, spec: WorkloadSpec) -> None:
        self.world = world
        self.spec = spec
        self._rng = random.Random(spec.seed)
        self._mirror: dict[str, list[Row]] = {
            name: list(world.current.relation(name))
            for name in world.schemas
        }
        self._relations = sorted(world.schemas)
        self._weights = [
            spec.relation_weights.get(name, 1.0) for name in self._relations
        ]
        self._next_key = 1000  # distinct tail for generated key values

    # -- row synthesis -------------------------------------------------------
    def _random_value(self, attr_type: AttrType) -> object:
        if attr_type is AttrType.INT:
            if (
                self.spec.hot_fraction
                and self._rng.random() < self.spec.hot_fraction
            ):
                return self._rng.randrange(self.spec.hot_keys)
            return self._rng.randrange(self.spec.value_range)
        if attr_type is AttrType.FLOAT:
            return float(self._rng.randrange(self.spec.value_range))
        if attr_type is AttrType.BOOL:
            return bool(self._rng.getrandbits(1))
        return f"v{self._rng.randrange(self.spec.value_range)}"

    def _random_row(self, schema: Schema) -> Row:
        return Row({a.name: self._random_value(a.type) for a in schema})

    # -- update synthesis -------------------------------------------------------
    def _make_update(self, relation: str) -> Update:
        schema = self.world.schemas[relation]
        mirror = self._mirror[relation]
        kind = self._rng.choices(("insert", "delete", "modify"), self.spec.mix)[0]
        if kind != "insert" and not mirror:
            kind = "insert"  # nothing to delete/modify yet
        if kind == "insert":
            row = self._random_row(schema)
            mirror.append(row)
            return Update.insert(relation, row)
        victim_index = self._rng.randrange(len(mirror))
        victim = mirror[victim_index]
        if kind == "delete":
            mirror.pop(victim_index)
            return Update.delete(relation, victim)
        replacement = self._random_row(schema)
        mirror[victim_index] = replacement
        return Update.modify(relation, victim, replacement)

    def _pick_relation(self) -> str:
        return self._rng.choices(self._relations, self._weights)[0]

    def _make_transaction(self) -> SourceTransaction:
        first = self._make_update(self._pick_relation())
        updates = [first]
        if self._rng.random() < self.spec.multi_update_fraction:
            # §6.2: a transaction touching 2-3 relations of one source.
            origin = self.world.owner_of(first.relation)
            candidates = [
                r
                for r in self.world.relations_of(origin)
                if r != first.relation
            ]
            self._rng.shuffle(candidates)
            for relation in candidates[: self._rng.randrange(1, 3)]:
                updates.append(self._make_update(relation))
            return SourceTransaction(origin, tuple(updates))
        return SourceTransaction.single(self.world.owner_of(first.relation), first)

    # -- stream assembly -------------------------------------------------------
    def transactions(self) -> list[tuple[float, SourceTransaction]]:
        """The full stream as ``(time, transaction)`` pairs, time-ordered.

        Transactions from different sources may interleave; transactions
        from the same source are strictly ordered (distinct times), which
        is all the §2.1 model requires.
        """
        gap = 1.0 / self.spec.rate
        stream: list[tuple[float, SourceTransaction]] = []
        time = 0.0
        for _ in range(self.spec.updates):
            if self.spec.arrivals == "uniform":
                time += gap
            else:
                time += self._rng.expovariate(self.spec.rate)
            stream.append((time, self._make_transaction()))
        return stream

    def __iter__(self) -> Iterator[tuple[float, SourceTransaction]]:
        return iter(self.transactions())


def post_stream(
    system: "WarehouseSystemLike",
    stream: Sequence[tuple[float, SourceTransaction]],
) -> int:
    """Post a generated stream onto a built system; returns its length."""
    for time, transaction in stream:
        system.post(transaction, time)
    return len(stream)


class WarehouseSystemLike:
    """Protocol sketch for :func:`post_stream`."""
