"""Workloads: canonical schemas, view suites and update-stream generators.

Three schema families:

* :func:`paper_world` — the paper's own R(A,B), S(B,C), T(C,D), Q(D,E)
  relations with the V1/V2/V3 view suites of Examples 1-5;
* :func:`bank_world` — the §1.1 customer-inquiry scenario (checking /
  savings / customer relations across two sources);
* :func:`star_world` — a small retail star schema (sales fact plus
  product/store dimensions) with selective views that exercise the
  relevance filter.

:class:`UpdateStreamGenerator` produces seeded, schedulable transaction
streams (Poisson or uniform arrivals; insert/delete/modify mixes; hot-key
skew) whose deletes always target live rows.
"""

from repro.workloads.schemas import (
    bank_world,
    bank_views,
    clustered_views,
    clustered_world,
    paper_world,
    paper_views_example1,
    paper_views_example2,
    paper_views_example3,
    paper_views_example5,
    star_world,
    star_views,
)
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec

__all__ = [
    "paper_world",
    "paper_views_example1",
    "paper_views_example2",
    "paper_views_example3",
    "paper_views_example5",
    "bank_world",
    "bank_views",
    "clustered_world",
    "clustered_views",
    "star_world",
    "star_views",
    "UpdateStreamGenerator",
    "WorkloadSpec",
]
