"""Canonical source worlds and view suites."""

from __future__ import annotations

from repro.relational.expressions import (
    BaseRelation,
    Join,
    Project,
    Select,
    ViewDefinition,
)
from repro.relational.parser import parse_view
from repro.relational.predicates import Attr, Comparison, Const
from repro.relational.schema import Attribute, AttrType, Schema
from repro.sources.world import SourceWorld


# ---------------------------------------------------------------------------
# the paper's running example
# ---------------------------------------------------------------------------

def paper_world(
    seed_rows: bool = True,
    sources: int = 4,
) -> SourceWorld:
    """R(A,B), S(B,C), T(C,D), Q(D,E) — the relations of Examples 1-5.

    With ``seed_rows`` the world starts in the Table-1 initial state
    (``R = {[1,2]}``, ``T = {[3,4]}``, ``S`` and ``Q`` empty).  Relations
    are spread over up to four sources, matching the paper's
    one-transaction-per-source model.
    """
    world = SourceWorld()
    owners = [f"src{i % max(1, sources)}" for i in range(4)]
    world.create_relation(
        "R", Schema(["A", "B"]), owners[0], [{"A": 1, "B": 2}] if seed_rows else []
    )
    world.create_relation("S", Schema(["B", "C"]), owners[1], [])
    world.create_relation(
        "T", Schema(["C", "D"]), owners[2], [{"C": 3, "D": 4}] if seed_rows else []
    )
    world.create_relation("Q", Schema(["D", "E"]), owners[3], [])
    return world


def paper_views_example1() -> list[ViewDefinition]:
    """Example 1 / Table 1: V1 = R ./ S, V2 = S ./ T."""
    return [
        parse_view("V1 = SELECT * FROM R JOIN S"),
        parse_view("V2 = SELECT * FROM S JOIN T"),
    ]


def paper_views_example2() -> list[ViewDefinition]:
    """Example 2 / 4 / 5: V1 = R ./ S, V2 = S ./ T ./ Q, V3 = Q."""
    return [
        parse_view("V1 = SELECT * FROM R JOIN S"),
        parse_view("V2 = SELECT * FROM S JOIN T JOIN Q"),
        parse_view("V3 = SELECT * FROM Q"),
    ]


def paper_views_example3() -> list[ViewDefinition]:
    """Example 3: V1 = R ./ S, V2 = S ./ T, V3 = Q (V3 disjoint)."""
    return [
        parse_view("V1 = SELECT * FROM R JOIN S"),
        parse_view("V2 = SELECT * FROM S JOIN T"),
        parse_view("V3 = SELECT * FROM Q"),
    ]


# Example 5 uses the same views as Example 2.
paper_views_example5 = paper_views_example2


# ---------------------------------------------------------------------------
# the §1.1 bank scenario
# ---------------------------------------------------------------------------

def bank_world(customers: int = 0) -> SourceWorld:
    """Checking/savings accounts and customer records over two sources.

    §1.1: "her checking account record, for instance, should match with
    her linked savings account record."  Checking lives on the retail-bank
    system, savings and customer data on a second system.
    """
    world = SourceWorld()
    world.create_relation(
        "Checking",
        Schema(
            [
                Attribute("cust", AttrType.INT),
                Attribute("cbal", AttrType.INT),
                Attribute("branch", AttrType.STR),
            ]
        ),
        "retail",
        [
            {"cust": i, "cbal": 100 * (i + 1), "branch": f"b{i % 3}"}
            for i in range(customers)
        ],
    )
    world.create_relation(
        "Savings",
        Schema([Attribute("cust", AttrType.INT), Attribute("sbal", AttrType.INT)]),
        "savings",
        [{"cust": i, "sbal": 500 + 10 * i} for i in range(customers)],
    )
    world.create_relation(
        "Customer",
        Schema(
            [
                Attribute("cust", AttrType.INT),
                Attribute("tier", AttrType.STR),
                Attribute("region", AttrType.STR),
            ]
        ),
        "savings",
        [
            {"cust": i, "tier": "gold" if i % 5 == 0 else "std", "region": f"r{i % 4}"}
            for i in range(customers)
        ],
    )
    return world


def bank_views() -> list[ViewDefinition]:
    """The views a customer-inquiry warehouse materializes.

    * ``Portfolio`` — checking joined with savings (the record pair that
      must "match" when the customer calls);
    * ``GoldLedger`` — gold-tier customers' full records (the "particular
      customers for a special promotion");
    * ``BranchBook`` — per-branch checking copy.
    """
    portfolio = ViewDefinition(
        "Portfolio", Join(BaseRelation("Checking"), BaseRelation("Savings"))
    )
    gold = ViewDefinition(
        "GoldLedger",
        Select(
            Comparison(Attr("tier"), "=", Const("gold")),
            Join(
                Join(BaseRelation("Customer"), BaseRelation("Checking")),
                BaseRelation("Savings"),
            ),
        ),
    )
    branch = ViewDefinition(
        "BranchBook",
        Project(("branch", "cust", "cbal"), BaseRelation("Checking")),
    )
    return [portfolio, gold, branch]


# ---------------------------------------------------------------------------
# parametric clustered worlds (for scaling studies, §6.1 / §7)
# ---------------------------------------------------------------------------

def clustered_world(clusters: int = 3) -> SourceWorld:
    """``clusters`` disjoint relation pairs R_i(k,v), S_i(k,w), one source each.

    Views over different clusters share no base relations, so
    :func:`repro.merge.distributed.partition_views` splits them into
    exactly ``clusters`` merge groups — the §6.1 best case.
    """
    world = SourceWorld()
    for index in range(clusters):
        world.create_relation(f"R_{index}", Schema(["k", "v"]), f"src_{index}")
        world.create_relation(f"S_{index}", Schema(["k", "w"]), f"src_{index}")
    return world


def clustered_views(clusters: int = 3, per_cluster: int = 2) -> list[ViewDefinition]:
    """Up to ``per_cluster`` views over each cluster (join + copy + select)."""
    views: list[ViewDefinition] = []
    for index in range(clusters):
        candidates = [
            parse_view(f"J_{index} = SELECT * FROM R_{index} JOIN S_{index}"),
            parse_view(f"C_{index} = SELECT * FROM R_{index}"),
            parse_view(f"H_{index} = SELECT * FROM S_{index} WHERE w >= 5"),
        ]
        views.extend(candidates[:per_cluster])
    return views


# ---------------------------------------------------------------------------
# a small retail star schema
# ---------------------------------------------------------------------------

def star_world(products: int = 8, stores: int = 4) -> SourceWorld:
    """Sales fact plus product/store dimensions over three sources."""
    world = SourceWorld()
    world.create_relation(
        "Sales",
        Schema(
            [
                Attribute("sale", AttrType.INT),
                Attribute("prod", AttrType.INT),
                Attribute("store", AttrType.INT),
                Attribute("qty", AttrType.INT),
            ]
        ),
        "pos",
        [],
    )
    world.create_relation(
        "Product",
        Schema(
            [
                Attribute("prod", AttrType.INT),
                Attribute("category", AttrType.STR),
                Attribute("price", AttrType.INT),
            ]
        ),
        "catalog",
        [
            {"prod": i, "category": f"c{i % 3}", "price": 5 + i}
            for i in range(products)
        ],
    )
    world.create_relation(
        "Store",
        Schema(
            [
                Attribute("store", AttrType.INT),
                Attribute("region", AttrType.STR),
            ]
        ),
        "ops",
        [{"store": i, "region": f"r{i % 2}"} for i in range(stores)],
    )
    return world


def star_views(selective: bool = True, aggregates: bool = False) -> list[ViewDefinition]:
    """Join views over the star schema; two are selective on purpose.

    With ``aggregates`` the suite adds summary views — the §1.2 "aggregate
    views need to use different maintenance algorithms" scenario, here
    maintained incrementally via the counting/sum delta rules.
    """
    detail = parse_view("SaleDetail = SELECT * FROM Sales JOIN Product")
    regional = parse_view(
        "RegionalSales = SELECT sale, prod, store, qty, region "
        "FROM Sales JOIN Store"
    )
    views = [detail, regional]
    if selective:
        views.append(
            parse_view(
                "BigTickets = SELECT sale, prod, qty FROM Sales JOIN Product "
                "WHERE qty >= 8"
            )
        )
        views.append(
            parse_view("CheapCatalog = SELECT * FROM Product WHERE price <= 7")
        )
    if aggregates:
        views.append(
            parse_view(
                "RegionTotals = SELECT region, count(*) AS n, sum(qty) AS total "
                "FROM Sales JOIN Store GROUP BY region"
            )
        )
        views.append(
            parse_view(
                "CategoryVolume = SELECT category, sum(qty) AS volume "
                "FROM Sales JOIN Product GROUP BY category"
            )
        )
    return views
