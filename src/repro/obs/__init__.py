"""``repro.obs`` — the observability layer.

Layered over the simulator's :class:`~repro.sim.tracing.Trace`:

* :mod:`repro.obs.registry` — typed metrics (counters, gauges,
  histograms — exact or reservoir-bounded) that processes, channels, and
  merges register on ``sim.metrics`` as they run, each tagged with the
  runtime ``origin`` that recorded it;
* :mod:`repro.obs.lineage` — per-update causal reconstruction
  (source commit → integrator → view manager → merge → warehouse) from
  trace events;
* :mod:`repro.obs.export` — trace serialisation: Chrome/Perfetto JSON,
  JSONL event log, plain-text timeline;
* :mod:`repro.obs.promexport` — metrics serialisation: Prometheus text
  exposition and JSON snapshots;
* :mod:`repro.obs.collector` — cross-process telemetry: forked compute
  servers drain their counters/histograms/events over the pipe protocol
  into the parent's locked registry and thread-safe trace;
* :mod:`repro.obs.freshness` — live per-view staleness, VUT occupancy
  and merge-queue gauges with an online SLO evaluator;
* :mod:`repro.obs.profiler` — opt-in per-plan-node timing for compiled
  maintenance plans.

See ``docs/observability.md`` for the model and worked examples.
"""

from repro.obs.collector import (
    ShardTelemetry,
    drain_registry,
    merge_payload,
)
from repro.obs.export import (
    read_chrome_trace,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    to_timeline,
    write_chrome_trace,
    write_jsonl,
    write_timeline,
    write_trace,
)
from repro.obs.freshness import STALENESS_KINDS, FreshnessMonitor, SloPolicy
from repro.obs.lineage import (
    LINEAGE_KINDS,
    Lineage,
    LineageError,
    LineageHop,
    UpdateLineage,
)
from repro.obs.profiler import PROF_KEY, PlanProfiler
from repro.obs.promexport import (
    parse_prometheus,
    to_prometheus,
    to_snapshot,
    write_metrics,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    percentile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "percentile",
    "LINEAGE_KINDS",
    "Lineage",
    "LineageError",
    "LineageHop",
    "UpdateLineage",
    "PROF_KEY",
    "PlanProfiler",
    "STALENESS_KINDS",
    "FreshnessMonitor",
    "SloPolicy",
    "ShardTelemetry",
    "drain_registry",
    "merge_payload",
    "parse_prometheus",
    "to_prometheus",
    "to_snapshot",
    "write_metrics",
    "read_chrome_trace",
    "read_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "to_timeline",
    "write_chrome_trace",
    "write_jsonl",
    "write_timeline",
    "write_trace",
]
