"""``repro.obs`` — the observability layer.

Three pieces, layered over the simulator's :class:`~repro.sim.tracing.Trace`:

* :mod:`repro.obs.registry` — typed metrics (counters, gauges,
  histograms) that processes, channels, and merges register on
  ``sim.metrics`` as they run;
* :mod:`repro.obs.lineage` — per-update causal reconstruction
  (source commit → integrator → view manager → merge → warehouse) from
  trace events;
* :mod:`repro.obs.export` — trace serialisation: Chrome/Perfetto JSON,
  JSONL event log, plain-text timeline.

See ``docs/observability.md`` for the model and worked examples.
"""

from repro.obs.export import (
    read_chrome_trace,
    read_jsonl,
    to_chrome_trace,
    to_jsonl,
    to_timeline,
    write_chrome_trace,
    write_jsonl,
    write_timeline,
    write_trace,
)
from repro.obs.lineage import (
    LINEAGE_KINDS,
    Lineage,
    LineageError,
    LineageHop,
    UpdateLineage,
)
from repro.obs.registry import (
    Counter,
    Gauge,
    Histogram,
    Metric,
    MetricsRegistry,
    percentile,
)

__all__ = [
    "Counter",
    "Gauge",
    "Histogram",
    "Metric",
    "MetricsRegistry",
    "percentile",
    "LINEAGE_KINDS",
    "Lineage",
    "LineageError",
    "LineageHop",
    "UpdateLineage",
    "read_chrome_trace",
    "read_jsonl",
    "to_chrome_trace",
    "to_jsonl",
    "to_timeline",
    "write_chrome_trace",
    "write_jsonl",
    "write_timeline",
    "write_trace",
]
