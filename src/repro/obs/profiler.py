"""Opt-in plan/kernel profiler for compiled maintenance plans.

``mqo_report()`` says how much *structure* same-shard plans share; this
profiler says where propagation *time* actually goes.  When enabled on a
:class:`~repro.relational.plan.MaintenancePlan` (or a whole
:class:`~repro.relational.plan.PlanLibrary`), every columnar operator
node records per call:

* call count,
* **exclusive** nanoseconds (child-delta time excluded — each node times
  only its own kernel work),
* rows in (child delta size) and rows out (emitted delta size).

The hook rides the existing staging-dict protocol: the plan drops the
active profiler under :data:`PROF_KEY` when it stages a batch, and each
node's ``delta`` picks it up with one dict lookup — when profiling is
off, that lookup (against a miss) is the entire overhead.

Results accumulate here and publish into a
:class:`~repro.obs.registry.MetricsRegistry` as monotonic counters
(``plan_node_calls`` / ``plan_node_time_ns`` / ``plan_node_rows_in`` /
``plan_node_rows_out``, labelled by node).  Publishing is *delta-based*:
each call emits only the increment since the previous publish, so the
end-of-run flush in :class:`~repro.system.builder.WarehouseSystem` and a
compute-server's per-drain publish can both repeat freely without
double-counting.
"""

from __future__ import annotations

from repro.obs.registry import MetricsRegistry

#: staging-dict key carrying the active profiler through a plan's nodes.
#: The staging dict otherwise holds ``("delta", id)``, ``("bd", name)``
#: and ``id(node)`` keys, so a string sentinel can never collide.
PROF_KEY = "__profiler__"

#: registry counter families the profiler publishes (index-matched to
#: the per-node stat vector [calls, ns, rows_in, rows_out])
_NODE_FAMILIES = (
    "plan_node_calls",
    "plan_node_time_ns",
    "plan_node_rows_in",
    "plan_node_rows_out",
)


class PlanProfiler:
    """Accumulates per-node timing for one plan or one plan library."""

    def __init__(self) -> None:
        # id(node) -> [label, calls, ns, rows_in, rows_out]
        self._nodes: dict[int, list] = {}
        self._label_uses: dict[str, int] = {}
        # (family, label) -> cumulative value already published
        self._published: dict[tuple[str, str], float] = {}

    def node(
        self, node: object, ns: int, rows_in: int, rows_out: int
    ) -> None:
        """Record one ``delta`` call on ``node`` (exclusive time)."""
        entry = self._nodes.get(id(node))
        if entry is None:
            head = node.describe(0)[0].strip()
            uses = self._label_uses.get(head, 0)
            self._label_uses[head] = uses + 1
            label = head if not uses else f"{head}#{uses}"
            entry = self._nodes[id(node)] = [label, 0, 0, 0, 0]
        entry[1] += 1
        entry[2] += ns
        entry[3] += rows_in
        entry[4] += rows_out

    @property
    def enabled_nodes(self) -> int:
        """Distinct nodes that have recorded at least one call."""
        return len(self._nodes)

    def stats(self) -> dict[str, dict]:
        """``{node_label: {calls, ns, rows_in, rows_out}}``, heaviest first."""
        out: dict[str, dict] = {}
        for label, calls, ns, rows_in, rows_out in sorted(
            self._nodes.values(), key=lambda e: -e[2]
        ):
            out[label] = {
                "calls": calls,
                "ns": ns,
                "rows_in": rows_in,
                "rows_out": rows_out,
            }
        return out

    # -- publication ---------------------------------------------------------
    def publish_into(self, registry: MetricsRegistry) -> int:
        """Fold accumulated stats into ``registry`` as counters.

        Emits only the delta since the previous publish per (family,
        node) pair — idempotent when nothing new was recorded, safe to
        call after every run *and* at close.  Returns instruments bumped.
        """
        bumped = 0
        for label, calls, ns, rows_in, rows_out in self._nodes.values():
            for family, value in zip(
                _NODE_FAMILIES, (calls, ns, rows_in, rows_out)
            ):
                key = (family, label)
                prior = self._published.get(key, 0.0)
                if value > prior:
                    registry.counter(family, node=label).inc(value - prior)
                    self._published[key] = float(value)
                    bumped += 1
        return bumped

    def format(self) -> str:
        """An ``mqo_report()``-style table: where propagation time goes."""
        stats = self.stats()
        if not stats:
            return "plan profiler: no propagations recorded"
        total_ns = sum(entry["ns"] for entry in stats.values()) or 1
        lines = [
            f"{'node':<52} {'calls':>7} {'ms':>9} {'%':>6} "
            f"{'rows_in':>9} {'rows_out':>9}"
        ]
        for label, entry in stats.items():
            lines.append(
                f"{label[:52]:<52} {entry['calls']:>7} "
                f"{entry['ns'] / 1e6:>9.3f} "
                f"{100.0 * entry['ns'] / total_ns:>6.1f} "
                f"{entry['rows_in']:>9} {entry['rows_out']:>9}"
            )
        return "\n".join(lines)


__all__ = ["PROF_KEY", "PlanProfiler"]
