"""Cross-process telemetry: ship child-side metrics/traces to the parent.

The ``procs`` runtime forks one compute server per merge shard
(:mod:`repro.runtime.procpool`); until this module existed, everything
those children measured died with them.  The collector closes the loop
with three pieces:

* :class:`ShardTelemetry` — the child-side sink.  It owns a private
  :class:`~repro.obs.registry.MetricsRegistry` (origin-tagged, bounded
  histograms) plus a capped trace-event buffer, and timestamps against
  the *parent's* monotonic epoch so merged events line up with the
  parent's :class:`~repro.sim.tracing.ThreadSafeTrace` timeline.
* :meth:`ShardTelemetry.drain` — snapshot-and-reset into a plain-data
  payload (tuples/dicts/floats only) that crosses the existing
  ``multiprocessing.Pipe`` protocol.  Because draining resets, repeated
  drains are *additive*: the parent can merge after every run and never
  double-count.
* :func:`merge_payload` — folds one payload into the parent's locked
  registry and thread-safe trace.  The child's origin becomes a real
  ``origin=`` label on every merged instrument, so sibling shards (and a
  DES run's own ``des``-tagged instruments) never collide.

The cache server needs none of this machinery: it is a simulation actor
sharing the parent kernel's registry, so its counters land directly.
"""

from __future__ import annotations

import time as _time

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry
from repro.sim.tracing import Trace

#: default reservoir bound for child-side histograms
CHILD_HISTOGRAM_BOUND = 256

#: default cap on buffered child trace events between drains
CHILD_EVENT_CAP = 20_000


class ShardTelemetry:
    """Child-side telemetry sink for one forked compute server."""

    def __init__(
        self,
        origin: str,
        clock0: float | None = None,
        histogram_bound: int | None = CHILD_HISTOGRAM_BOUND,
        max_events: int = CHILD_EVENT_CAP,
    ) -> None:
        self.origin = origin
        self.registry = MetricsRegistry(
            origin=origin, histogram_bound=histogram_bound
        )
        self._clock0 = clock0
        self._events: list[tuple[float, str, str, dict]] = []
        self._max_events = max_events
        self.dropped_events = 0

    @property
    def now(self) -> float:
        """Seconds on the parent kernel's clock (0.0 if no epoch given)."""
        if self._clock0 is None:
            return 0.0
        return _time.monotonic() - self._clock0

    def record(self, kind: str, process: str, **detail: object) -> None:
        """Buffer one trace event (dropped, and counted, past the cap)."""
        if len(self._events) >= self._max_events:
            self.dropped_events += 1
            return
        self._events.append((self.now, kind, process, detail))

    def drain(self) -> dict:
        """Snapshot-and-reset everything recorded since the last drain."""
        payload = drain_registry(self.registry)
        payload["origin"] = self.origin
        payload["events"] = self._events
        payload["dropped_events"] = self.dropped_events
        self._events = []
        self.dropped_events = 0
        return payload


def drain_registry(registry: MetricsRegistry) -> dict:
    """Extract-and-zero a registry into a picklable payload.

    Counters and histograms reset to zero (so the next drain carries only
    the increment); gauges keep their last value but restart min/max
    tracking.  Must not race mutators — the compute server's request loop
    is single-threaded, which is exactly the context this runs in.
    """
    counters: list[tuple] = []
    gauges: list[tuple] = []
    histograms: list[tuple] = []
    for metric in registry:
        if isinstance(metric, Counter):
            if metric._value:
                counters.append((metric.name, metric.labels, metric._value))
                metric._value = 0.0
        elif isinstance(metric, Gauge):
            if metric._value is not None:
                gauges.append(
                    (metric.name, metric.labels, metric._value,
                     metric._min, metric._max)
                )
                metric._min = metric._max = metric._value
        elif isinstance(metric, Histogram):
            if metric._count:
                histograms.append(
                    (metric.name, metric.labels, metric._count,
                     metric._total, metric._max, list(metric._values),
                     metric._bound)
                )
                metric._count = 0
                metric._total = 0.0
                metric._max = None
                metric._values.clear()
    return {"counters": counters, "gauges": gauges, "histograms": histograms}


def merge_payload(
    registry: MetricsRegistry,
    trace: Trace | None,
    payload: dict,
) -> int:
    """Fold one drained payload into the parent registry/trace.

    Every merged instrument gains an ``origin=<payload origin>`` label —
    identity-level, not just a tag — so concurrent shards stay distinct.
    Returns the number of instruments touched.
    """
    origin = payload.get("origin", "")
    merged = 0
    for name, labels, value in payload.get("counters", ()):
        counter = registry.counter(name, origin=origin, **dict(labels))
        counter.origin = origin
        counter.inc(value)
        merged += 1
    for name, labels, value, low, high in payload.get("gauges", ()):
        gauge = registry.gauge(name, origin=origin, **dict(labels))
        gauge.origin = origin
        if low is not None:
            gauge.set(low)
        if high is not None:
            gauge.set(high)
        gauge.set(value)
        merged += 1
    for name, labels, count, total, maximum, values, bound in payload.get(
        "histograms", ()
    ):
        histogram = registry.histogram(
            name, bound=bound, origin=origin, **dict(labels)
        )
        histogram.origin = origin
        histogram.absorb(count, total, maximum, values)
        merged += 1
    if trace is not None:
        for when, kind, process, detail in payload.get("events", ()):
            trace.record(when, kind, process, origin=origin, **detail)
        dropped = payload.get("dropped_events", 0)
        if dropped:
            registry.counter(
                "telemetry_events_dropped", origin=origin
            ).inc(dropped)
    return merged


__all__ = [
    "CHILD_EVENT_CAP",
    "CHILD_HISTOGRAM_BOUND",
    "ShardTelemetry",
    "drain_registry",
    "merge_payload",
]
