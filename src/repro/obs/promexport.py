"""Metrics exporters: Prometheus text exposition and JSON snapshots.

The registry's own :meth:`~repro.obs.registry.MetricsRegistry.to_dict` /
``format`` are debugging views; this module renders the same instruments
in the two formats external tooling expects:

* :func:`to_prometheus` — the `text exposition format
  <https://prometheus.io/docs/instrumenting/exposition_formats/>`_, one
  ``# TYPE`` block per metric family.  Counters and gauges export their
  scalar value; histograms export Prometheus *summary* families
  (``quantile=`` samples plus ``_sum``/``_count``).  An instrument's
  ``origin`` tag is exported as an ``origin=`` label so a scrape of a
  multi-runtime run keeps shard provenance.
* :func:`to_snapshot` — a JSON-serialisable snapshot (``to_dict`` plus a
  small ``meta`` header) that round-trips losslessly through
  ``json.dumps``/``loads``.

:func:`write_metrics` dispatches on file extension the way
:func:`repro.obs.export.write_trace` does for traces: ``.prom``/``.txt``
get the text exposition, ``.json`` gets the snapshot.

All rendering goes through each instrument's ``summary()`` — a single
mutator-free read per instrument — so exporting a *locked* registry while
worker threads write concurrently never observes a torn value (see
``tests/obs/test_exporter_concurrency.py``).
"""

from __future__ import annotations

import json
import re
from pathlib import Path

from repro.obs.registry import Counter, Gauge, Histogram, MetricsRegistry

#: quantiles exported for every histogram family
_QUANTILES = (0.5, 0.95, 0.99)

_NAME_OK = re.compile(r"[a-zA-Z_:][a-zA-Z0-9_:]*$")


def _prom_name(name: str) -> str:
    """A valid Prometheus metric name (replace anything else with '_')."""
    cleaned = re.sub(r"[^a-zA-Z0-9_:]", "_", name)
    if not _NAME_OK.match(cleaned):
        cleaned = "_" + cleaned
    return cleaned


def _escape(value: str) -> str:
    return (
        str(value)
        .replace("\\", "\\\\")
        .replace('"', '\\"')
        .replace("\n", "\\n")
    )


def _labels(metric, extra: dict[str, object] | None = None) -> str:
    pairs = [(k, v) for k, v in metric.labels]
    if metric.origin:
        pairs.append(("origin", metric.origin))
    if extra:
        pairs.extend(extra.items())
    if not pairs:
        return ""
    inner = ",".join(f'{_prom_name(k)}="{_escape(v)}"' for k, v in pairs)
    return "{" + inner + "}"


def _fmt(value: float) -> str:
    # repr() keeps full float precision and renders ints without ".0" noise
    return repr(float(value))


def to_prometheus(registry: MetricsRegistry, namespace: str = "repro") -> str:
    """The registry in Prometheus text exposition format."""
    families: dict[str, list] = {}
    for metric in registry:
        families.setdefault(metric.name, []).append(metric)

    lines: list[str] = []
    for name in sorted(families):
        metrics = sorted(families[name], key=lambda m: (m.labels, m.origin))
        full = f"{_prom_name(namespace)}_{_prom_name(name)}" if namespace \
            else _prom_name(name)
        first = metrics[0]
        if isinstance(first, Counter):
            lines.append(f"# TYPE {full} counter")
            for m in metrics:
                lines.append(f"{full}{_labels(m)} {_fmt(m.value)}")
        elif isinstance(first, Gauge):
            lines.append(f"# TYPE {full} gauge")
            for m in metrics:
                lines.append(f"{full}{_labels(m)} {_fmt(m.value)}")
        elif isinstance(first, Histogram):
            lines.append(f"# TYPE {full} summary")
            for m in metrics:
                for q in _QUANTILES:
                    lines.append(
                        f"{full}{_labels(m, {'quantile': str(q)})} "
                        f"{_fmt(m.quantile(q))}"
                    )
                lines.append(f"{full}_sum{_labels(m)} {_fmt(m.total)}")
                lines.append(f"{full}_count{_labels(m)} {_fmt(float(m.count))}")
    return "\n".join(lines) + ("\n" if lines else "")


def parse_prometheus(text: str) -> dict[str, float]:
    """Parse exposition text back to ``{sample_line_key: value}``.

    A deliberately small inverse of :func:`to_prometheus` used by tests
    (round-trip equality) and the live ``top`` view; it handles exactly
    what :func:`to_prometheus` emits, not the full grammar.
    """
    samples: dict[str, float] = {}
    for line in text.splitlines():
        line = line.strip()
        if not line or line.startswith("#"):
            continue
        key, _, value = line.rpartition(" ")
        samples[key] = float(value)
    return samples


def to_snapshot(registry: MetricsRegistry) -> dict:
    """A JSON-serialisable snapshot of the whole registry."""
    return {
        "meta": {
            "format": "repro-metrics-snapshot/1",
            "origin": registry.origin,
            "instruments": len(registry),
        },
        "metrics": registry.to_dict(),
    }


def write_metrics(registry: MetricsRegistry, path: str | Path,
                  namespace: str = "repro") -> Path:
    """Write the registry to ``path``, format chosen by extension.

    ``.prom`` / ``.txt`` → Prometheus text exposition; ``.json`` → the
    JSON snapshot.  Returns the path written.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix in (".prom", ".txt"):
        path.write_text(to_prometheus(registry, namespace=namespace),
                        encoding="utf-8")
    elif suffix == ".json":
        path.write_text(json.dumps(to_snapshot(registry), indent=2,
                                   sort_keys=True), encoding="utf-8")
    else:
        raise ValueError(
            f"unknown metrics format {suffix!r} for {path} "
            f"(use .prom/.txt or .json)"
        )
    return path


__all__ = [
    "parse_prometheus",
    "to_prometheus",
    "to_snapshot",
    "write_metrics",
]
