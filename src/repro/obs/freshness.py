"""Live freshness/staleness monitoring with an online SLO evaluator.

:mod:`repro.system.metrics` computes per-update staleness *post mortem*,
from the full trace of a finished run.  This module watches the same
signals **while the system is serving traffic**, in all three runtimes:

* **Per-view staleness** — how far the warehouse lags behind the newest
  source commit, derived incrementally from the lineage hop chain the
  trace already records: an ``int_number`` event marks update
  ``update_id`` (committed at ``commit_time``) as *pending* for every
  view in its ``rel`` routing set; a ``wh_commit`` event clears the
  committed ``rows`` for its ``views``.  A view's staleness at sample
  time is ``now - oldest pending commit_time`` (0 when fully caught up).
  Times are virtual under the DES kernel and wall seconds under the
  parallel kernels — the same clock the trace itself uses.
* **VUT occupancy and merge-queue depth** — read directly off each merge
  process on every tick.
* **SLO evaluation** — an optional :class:`SloPolicy` turns thresholds
  into ``slo_breaches{kind=}`` counters and ``slo_breach`` trace events,
  and the CLI turns a non-zero breach count into exit code 2.

Sampling is tick-gated (:meth:`FreshnessMonitor.maybe_sample`): the DES
kernel invokes the probe after every executed event and the monitor
decides whether a tick has elapsed; the parallel kernels poll it from a
sampler thread during ``run()``.  Gauges recorded: ``view_staleness``
(per view), ``monitor_queue_depth`` and ``monitor_vut_occupancy`` (per
merge shard).

Staleness ingestion needs the ``int_number`` and ``wh_commit`` trace
kinds; with tracing disabled or those kinds filtered out, the monitor
still samples queue depth, VUT occupancy and their SLOs.
"""

from __future__ import annotations

from dataclasses import dataclass
from typing import TYPE_CHECKING

from repro.errors import ReproError

if TYPE_CHECKING:  # pragma: no cover - import cycle guard
    from repro.system.builder import WarehouseSystem

#: trace kinds the staleness derivation consumes
STALENESS_KINDS = frozenset({"int_number", "wh_commit"})


@dataclass(frozen=True)
class SloPolicy:
    """Freshness service-level objectives; ``None`` disables a check.

    ``max_staleness`` bounds any view's lag behind the newest source
    commit (virtual time under DES, wall seconds otherwise);
    ``max_queue_depth`` bounds any merge shard's inbox; ``max_vut``
    bounds any merge shard's views-update-table occupancy.
    """

    max_staleness: float | None = None
    max_queue_depth: int | None = None
    max_vut: int | None = None

    def __post_init__(self) -> None:
        for name in ("max_staleness", "max_queue_depth", "max_vut"):
            value = getattr(self, name)
            if value is not None and value < 0:
                raise ReproError(f"SloPolicy.{name} must be >= 0, got {value}")

    def active(self) -> bool:
        return (
            self.max_staleness is not None
            or self.max_queue_depth is not None
            or self.max_vut is not None
        )


class FreshnessMonitor:
    """Tick-sampled freshness gauges + SLO evaluation for one system."""

    def __init__(
        self,
        system: "WarehouseSystem",
        tick: float = 1.0,
        policy: SloPolicy | None = None,
    ) -> None:
        if tick <= 0:
            raise ReproError(f"freshness tick must be > 0, got {tick}")
        self._system = system
        self._sim = system.sim
        self._tick = tick
        self._policy = policy
        self._cursor = 0
        # view -> {update_id: source commit time} for updates routed to
        # the view but not yet covered by a warehouse commit for it
        self._pending: dict[str, dict[int, float]] = {
            view: {} for view in system.view_managers
        }
        # -inf, not None: maybe_sample runs once per executed event, so
        # the gate must be a single float comparison
        self._next_sample = float("-inf")
        self.samples = 0
        self.breaches = 0
        # The probe runs inside the kernel's hot loop, so per-sample
        # instrument lookups (label sorting, dict hashing) are hoisted
        # here: one gauge per view and per merge shard, resolved once.
        registry = system.sim.metrics
        self._staleness_gauges = [
            (view, pending, registry.gauge("view_staleness", view=view))
            for view, pending in sorted(self._pending.items())
        ]
        # the algorithm binds its ViewUpdateTable once and only mutates
        # it afterwards, so the object reference is safe to keep
        self._shard_gauges = [
            (
                merge,
                getattr(merge.algorithm, "vut", None),
                registry.gauge("monitor_queue_depth", merge=merge.name),
                registry.gauge("monitor_vut_occupancy", merge=merge.name),
            )
            for merge in system.merge_processes
        ]
        self._breach_counters: dict[str, object] = {}

    # -- sampling ------------------------------------------------------------
    def maybe_sample(self) -> None:
        """Sample iff a tick has elapsed since the last sample (cheap)."""
        if self._sim.now < self._next_sample:
            return
        self.sample()

    def sample(self) -> None:
        """Unconditionally ingest new trace events and record all gauges."""
        now = self._sim.now
        self._next_sample = now + self._tick
        self._ingest()
        policy = self._policy
        max_staleness = None if policy is None else policy.max_staleness
        max_depth = None if policy is None else policy.max_queue_depth
        max_vut = None if policy is None else policy.max_vut
        for view, pending, gauge in self._staleness_gauges:
            lag = (now - min(pending.values())) if pending else 0.0
            gauge.set(lag, at=now)
            if max_staleness is not None and lag > max_staleness:
                self._breach("staleness", view, lag, max_staleness)
        for merge, vut, depth_gauge, vut_gauge in self._shard_gauges:
            depth = merge.queue_length
            depth_gauge.set(depth, at=now)
            occupancy = len(vut) if vut is not None else 0
            vut_gauge.set(occupancy, at=now)
            if max_depth is not None and depth > max_depth:
                self._breach("queue_depth", merge.name, depth, max_depth)
            if max_vut is not None and occupancy > max_vut:
                self._breach("vut_occupancy", merge.name, occupancy, max_vut)
        self.samples += 1

    def _ingest(self) -> None:
        # raw_events_since, not events_since: sampling runs inside the
        # kernel loop, and forcing TraceEvent materialisation mid-run
        # would charge the whole trace's construction cost to the
        # monitored arm (the trace defers it to the first read).  The
        # kinds filter keeps the Python loop off unrelated events.
        self._cursor, events = self._sim.trace.raw_events_since(
            self._cursor, STALENESS_KINDS
        )
        for time, kind, _process, detail in events:
            if kind == "int_number":
                uid = detail.get("update_id")
                if uid is None:
                    continue
                commit = detail.get("commit_time", time)
                for view in detail.get("rel", ()):
                    pending = self._pending.get(view)
                    if pending is not None:
                        pending[uid] = commit
            elif kind == "wh_commit":
                rows = detail.get("rows", ())
                for view in detail.get("views", ()):
                    pending = self._pending.get(view)
                    if pending:
                        for uid in rows:
                            pending.pop(uid, None)

    def _breach(
        self, kind: str, target: str, value: float, threshold: float
    ) -> None:
        self.breaches += 1
        sim = self._sim
        counter = self._breach_counters.get(kind)
        if counter is None:
            counter = sim.metrics.counter("slo_breaches", kind=kind)
            self._breach_counters[kind] = counter
        counter.inc()
        if sim.trace.wants("slo_breach"):
            # "slo" not "kind": record()'s positional parameter is
            # already named kind, so the detail needs its own key
            sim.trace.record(
                sim.now,
                "slo_breach",
                "monitor",
                slo=kind,
                target=target,
                value=round(float(value), 6),
                threshold=threshold,
            )

    # -- reporting -----------------------------------------------------------
    def snapshot(self) -> dict:
        """A JSON-serialisable summary for exit-time reporting."""
        registry = self._sim.metrics
        staleness = {}
        for view in sorted(self._pending):
            gauge = registry.get("view_staleness", view=view)
            if gauge is not None:
                staleness[view] = {
                    "current": gauge.value, "max": gauge.max,
                }
        shards = {}
        for merge in self._system.merge_processes:
            depth = registry.get("monitor_queue_depth", merge=merge.name)
            vut = registry.get("monitor_vut_occupancy", merge=merge.name)
            shards[merge.name] = {
                "queue_depth_max": depth.max if depth is not None else 0.0,
                "vut_occupancy_max": vut.max if vut is not None else 0.0,
            }
        return {
            "samples": self.samples,
            "breaches": self.breaches,
            "staleness": staleness,
            "shards": shards,
        }

    def format(self) -> str:
        """Human-readable snapshot (the CLI's end-of-run summary)."""
        snap = self.snapshot()
        lines = [
            f"freshness monitor: {snap['samples']} sample(s), "
            f"{snap['breaches']} SLO breach(es)"
        ]
        for view, entry in snap["staleness"].items():
            lines.append(
                f"  {view:<20} staleness now={entry['current']:.4g} "
                f"max={entry['max']:.4g}"
            )
        for merge, entry in snap["shards"].items():
            lines.append(
                f"  {merge:<20} queue max={entry['queue_depth_max']:.4g} "
                f"vut max={entry['vut_occupancy_max']:.4g}"
            )
        return "\n".join(lines)


__all__ = ["STALENESS_KINDS", "FreshnessMonitor", "SloPolicy"]
