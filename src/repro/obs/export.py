"""Trace exporters: Chrome/Perfetto JSON, JSONL event log, text timeline.

Three serialisations of a :class:`~repro.sim.tracing.Trace`, each with a
matching loader so traces round-trip through files:

* **Chrome trace format** (``.json``) — a ``{"traceEvents": [...]}``
  document loadable by Perfetto (https://ui.perfetto.dev) and
  ``chrome://tracing``.  Each simulated process becomes a named track;
  ``proc_msg`` events (which carry a service-time span) become complete
  ``"X"`` slices, everything else becomes an instant ``"i"`` event.
  Virtual time is unitless, so one simulated time unit is rendered as
  1 ms (1000 µs) — relative durations are what matter.
* **JSONL** (``.jsonl``) — one JSON object per event, in trace order.
  The only lossless format: :func:`read_jsonl` reconstructs equivalent
  :class:`~repro.sim.tracing.TraceEvent` objects (JSON turns tuples into
  lists; loaders convert list-valued detail fields back to tuples).
* **Timeline** (``.txt``) — the plain-text rendering of ``Trace.format``
  for eyeballs and diffs.

:func:`write_trace` picks the format from the file extension — this is
what the CLI's ``--trace-out`` flag calls.
"""

from __future__ import annotations

import json
from pathlib import Path
from typing import Iterable, Sequence

from repro.errors import ReproError
from repro.sim.tracing import Trace, TraceEvent

__all__ = [
    "to_chrome_trace",
    "write_chrome_trace",
    "read_chrome_trace",
    "to_jsonl",
    "write_jsonl",
    "read_jsonl",
    "to_timeline",
    "write_timeline",
    "write_trace",
]

#: one unit of virtual time rendered as this many Chrome-trace microseconds
#: (Perfetto then shows 1 virtual unit as 1 ms).
_US_PER_UNIT = 1000.0


def _jsonable(value: object) -> object:
    """Make a trace detail value JSON-serialisable without losing content."""
    if isinstance(value, (set, frozenset)):
        return sorted(_jsonable(v) for v in value)
    if isinstance(value, (list, tuple)):
        return [_jsonable(v) for v in value]
    if isinstance(value, dict):
        return {str(k): _jsonable(v) for k, v in value.items()}
    if isinstance(value, (str, int, float, bool)) or value is None:
        return value
    return repr(value)


# -- Chrome / Perfetto -------------------------------------------------------

def to_chrome_trace(trace: Trace | Iterable[TraceEvent]) -> dict:
    """Render a trace as a Chrome trace-event document (dict).

    One track (tid) per simulated process, in order of first appearance.
    ``proc_msg`` events become ``"X"`` complete slices spanning the
    message's service time (the slice *ends* at the event's timestamp,
    which is when handling finished); all other kinds become thread-scoped
    instant events.  Event ``args`` carry the full detail dict.
    """
    events = list(trace)
    tids: dict[str, int] = {}
    out: list[dict] = []
    for event in events:
        tid = tids.get(event.process)
        if tid is None:
            tid = tids[event.process] = len(tids) + 1
            out.append(
                {
                    "name": "thread_name",
                    "ph": "M",
                    "pid": 1,
                    "tid": tid,
                    "args": {"name": event.process},
                }
            )
        args = {k: _jsonable(v) for k, v in event.detail.items()}
        service = event.detail.get("service", 0.0)
        if event.kind == "proc_msg" and isinstance(service, (int, float)):
            start = event.time - float(service)
            record = {
                "name": f"{event.kind}:{args.get('message', '')}",
                "ph": "X",
                "pid": 1,
                "tid": tid,
                "ts": start * _US_PER_UNIT,
                "dur": float(service) * _US_PER_UNIT,
                "cat": event.kind,
                "args": args,
            }
        else:
            record = {
                "name": event.kind,
                "ph": "i",
                "s": "t",  # thread-scoped instant
                "pid": 1,
                "tid": tid,
                "ts": event.time * _US_PER_UNIT,
                "cat": event.kind,
                "args": args,
            }
        out.append(record)
    return {"traceEvents": out, "displayTimeUnit": "ms"}


def write_chrome_trace(
    trace: Trace | Iterable[TraceEvent], path: str | Path
) -> Path:
    """Write a Perfetto-loadable ``trace.json``; returns the path."""
    path = Path(path)
    path.write_text(json.dumps(to_chrome_trace(trace)), encoding="utf-8")
    return path


def read_chrome_trace(path: str | Path) -> list[dict]:
    """Load a Chrome trace file; returns non-metadata events in file order."""
    document = json.loads(Path(path).read_text(encoding="utf-8"))
    events = document["traceEvents"] if isinstance(document, dict) else document
    return [e for e in events if e.get("ph") != "M"]


# -- JSONL -------------------------------------------------------------------

_TUPLE_FIELDS = frozenset(
    {"ids", "lineage", "txn", "rel", "covered", "rows", "views", "relations",
     "sources", "after"}
)


def to_jsonl(trace: Trace | Iterable[TraceEvent]) -> str:
    """One JSON object per event, newline-separated, in trace order."""
    lines = [
        json.dumps(
            {
                "time": event.time,
                "kind": event.kind,
                "process": event.process,
                "detail": {k: _jsonable(v) for k, v in event.detail.items()},
            }
        )
        for event in trace
    ]
    return "\n".join(lines) + ("\n" if lines else "")


def write_jsonl(trace: Trace | Iterable[TraceEvent], path: str | Path) -> Path:
    """Write the JSONL event log; returns the path."""
    path = Path(path)
    path.write_text(to_jsonl(trace), encoding="utf-8")
    return path


def read_jsonl(path: str | Path) -> list[TraceEvent]:
    """Reconstruct :class:`TraceEvent` objects from a JSONL log.

    Detail fields that the tracer records as tuples come back from JSON
    as lists; the well-known id-carrying fields are converted back so
    :class:`~repro.obs.lineage.Lineage` works on loaded traces too.
    """
    events: list[TraceEvent] = []
    for line in Path(path).read_text(encoding="utf-8").splitlines():
        if not line.strip():
            continue
        record = json.loads(line)
        detail = {
            k: tuple(v) if k in _TUPLE_FIELDS and isinstance(v, list) else v
            for k, v in record["detail"].items()
        }
        events.append(
            TraceEvent(
                time=record["time"],
                kind=record["kind"],
                process=record["process"],
                detail=detail,
            )
        )
    return events


# -- plain-text timeline -----------------------------------------------------

def to_timeline(
    trace: Trace | Iterable[TraceEvent],
    kinds: Sequence[str] | None = None,
) -> str:
    """A human-readable one-line-per-event timeline."""
    lines = []
    for event in trace:
        if kinds is not None and event.kind not in kinds:
            continue
        detail = ", ".join(f"{k}={v}" for k, v in event.detail.items())
        lines.append(
            f"[{event.time:10.3f}] {event.process:<16} "
            f"{event.kind:<14} {detail}".rstrip()
        )
    return "\n".join(lines) + ("\n" if lines else "")


def write_timeline(
    trace: Trace | Iterable[TraceEvent], path: str | Path
) -> Path:
    """Write the text timeline; returns the path."""
    path = Path(path)
    path.write_text(to_timeline(trace), encoding="utf-8")
    return path


# -- extension dispatch ------------------------------------------------------

def write_trace(trace: Trace | Iterable[TraceEvent], path: str | Path) -> Path:
    """Write ``trace`` to ``path`` in the format its extension implies.

    ``.json`` → Chrome/Perfetto, ``.jsonl`` → JSONL event log, ``.txt`` /
    anything else → text timeline.
    """
    path = Path(path)
    suffix = path.suffix.lower()
    if suffix == ".json":
        return write_chrome_trace(trace, path)
    if suffix == ".jsonl":
        return write_jsonl(trace, path)
    if suffix in ("", ".txt", ".log"):
        return write_timeline(trace, path)
    raise ReproError(
        f"unknown trace format {suffix!r} for {path} "
        f"(use .json, .jsonl, or .txt)"
    )
