"""Causal lineage: the source→warehouse path of every update.

The paper's §7 asks *where time goes* between a source commit and the
warehouse state that reflects it — which the end-of-run aggregates in
:class:`~repro.system.metrics.RunMetrics` cannot answer.  This module
reconstructs, per update, the full causal chain

    source commit → integrator numbering → view-manager delta computation
    → merge (VUT) decision → warehouse transaction → warehouse commit

with per-hop timestamps and, for every mailbox hop, the queue-wait vs
service-time split, from the run's :class:`~repro.sim.tracing.Trace`.

The chain is stitched from two id spaces:

* the **source world commit sequence** (``lineage_id``), stamped on
  ``src_commit`` / ``global_commit`` events and carried by
  :class:`~repro.messages.UpdateNotification`;
* the **integrator's update number**, assigned at numbering time; the
  ``int_number`` event records both ids, bridging the spaces.

Downstream hops (``proc_msg``, ``vm_compute``, ``merge_ready``,
``merge_submit``, ``wh_start``, ``wh_commit``) are keyed by update number
or by warehouse transaction id (resolved through ``merge_ready``'s
txn→rows mapping).  Reconstruction is purely trace-driven — it works on a
live system, a deserialised JSONL trace, and under retransmission
(reliable channels deliver exactly-once, so each hop appears exactly
once no matter how many copies the network carried).

Usage::

    lineage = Lineage.from_system(system)     # or Lineage(trace)
    chain = lineage.for_update(7)
    print(chain.format())
    chain.latency, chain.total_queue_wait, chain.total_service_time
"""

from __future__ import annotations

from dataclasses import dataclass, field
from typing import TYPE_CHECKING, Iterable, Mapping

from repro.errors import ReproError
from repro.sim.tracing import Trace, TraceEvent

if TYPE_CHECKING:  # pragma: no cover
    from repro.system.builder import WarehouseSystem


class LineageError(ReproError):
    """Asked for lineage the trace cannot provide."""


@dataclass(frozen=True, slots=True)
class LineageHop:
    """One step of an update's causal path."""

    time: float
    process: str
    kind: str
    detail: Mapping[str, object] = field(default_factory=dict)
    #: mailbox wait before service started (``proc_msg`` hops only)
    queue_wait: float | None = None
    #: virtual time spent serving the message (``proc_msg`` hops only)
    service_time: float | None = None

    def __str__(self) -> str:
        timing = ""
        if self.queue_wait is not None:
            timing = (
                f" wait={self.queue_wait:.3f} service={self.service_time:.3f}"
            )
        inner = ", ".join(
            f"{k}={v}" for k, v in self.detail.items()
            if k not in ("wait", "service")
        )
        return (
            f"[{self.time:10.3f}] {self.process:<16} {self.kind:<14}"
            f"{timing} {inner}".rstrip()
        )


@dataclass(frozen=True, slots=True)
class UpdateLineage:
    """The reconstructed path of one numbered update."""

    update_id: int
    lineage_id: int | None
    source: str | None
    source_commit_time: float | None
    numbered_at: float | None
    warehouse_txns: tuple[int, ...]
    reflected_at: float | None
    hops: tuple[LineageHop, ...]

    @property
    def reflected(self) -> bool:
        """Did some warehouse commit make this update visible?"""
        return self.reflected_at is not None

    @property
    def latency(self) -> float | None:
        """Source commit to warehouse visibility (the per-update staleness)."""
        if self.reflected_at is None or self.source_commit_time is None:
            return None
        return self.reflected_at - self.source_commit_time

    @property
    def total_queue_wait(self) -> float:
        """Virtual time this update's messages sat in mailboxes."""
        return sum(h.queue_wait for h in self.hops if h.queue_wait is not None)

    @property
    def total_service_time(self) -> float:
        """Virtual time processes spent serving this update's messages."""
        return sum(
            h.service_time for h in self.hops if h.service_time is not None
        )

    def processes(self) -> tuple[str, ...]:
        """Every process the update passed through, in first-visit order."""
        seen: list[str] = []
        for hop in self.hops:
            if hop.process not in seen:
                seen.append(hop.process)
        return tuple(seen)

    def format(self) -> str:
        """A human-readable rendering of the whole chain."""
        latency = self.latency
        header = (
            f"U{self.update_id}"
            + (f" (source seq {self.lineage_id})" if self.lineage_id else "")
            + (
                f": committed t={self.source_commit_time:.3f}"
                if self.source_commit_time is not None
                else ": commit unobserved"
            )
            + (
                f", reflected t={self.reflected_at:.3f}"
                f" (latency {latency:.3f};"
                f" queue-wait {self.total_queue_wait:.3f},"
                f" service {self.total_service_time:.3f})"
                if self.reflected and latency is not None
                else ", not reflected"
            )
        )
        return "\n".join([header, *(f"  {hop}" for hop in self.hops)])


#: trace kinds lineage reconstruction consumes — the minimum ``Trace.kinds``
#: filter under which :meth:`Lineage.for_update` stays complete.
LINEAGE_KINDS = frozenset(
    {
        "src_commit",
        "global_commit",
        "int_number",
        "proc_msg",
        "vm_compute",
        "merge_ready",
        "merge_submit",
        "wh_start",
        "wh_commit",
    }
)


class Lineage:
    """An index over a trace answering per-update causal queries."""

    def __init__(self, trace: Trace | Iterable[TraceEvent]) -> None:
        events = list(trace)
        # -- pass 1: id bridges -------------------------------------------
        # source commit sequence -> commit event (src_commit/global_commit)
        self._commit_events: dict[int, TraceEvent] = {}
        # source seq -> update_id and back
        self._seq_to_update: dict[int, int] = {}
        self._update_to_seq: dict[int, int] = {}
        # warehouse txn id -> covered update ids (from merge_ready/submit)
        self._txn_rows: dict[int, tuple[int, ...]] = {}
        numbered: dict[int, TraceEvent] = {}
        for event in events:
            kind = event.kind
            if kind in ("src_commit", "global_commit"):
                seq = event.detail.get("seq")
                if isinstance(seq, int):
                    self._commit_events[seq] = event
            elif kind == "int_number":
                update_id = event.detail["update_id"]
                numbered[update_id] = event
                seq = event.detail.get("lineage")
                if isinstance(seq, int) and seq:
                    self._seq_to_update[seq] = update_id
                    self._update_to_seq[update_id] = seq
            elif kind in ("merge_ready", "merge_submit"):
                txn = event.detail.get("txn")
                rows = event.detail.get("rows")
                if isinstance(txn, int) and rows is not None:
                    self._txn_rows[txn] = tuple(rows)
        self._numbered = numbered

        # -- pass 2: per-update hop lists ---------------------------------
        hops: dict[int, list[LineageHop]] = {u: [] for u in numbered}
        self._reflected_at: dict[int, float] = {}
        self._txns_of: dict[int, list[int]] = {u: [] for u in numbered}
        for event in events:
            for update_id in self._updates_of(event):
                bucket = hops.get(update_id)
                if bucket is None:
                    continue
                bucket.append(self._as_hop(event))
                if event.kind == "wh_commit":
                    self._reflected_at.setdefault(update_id, event.time)
                if event.kind in ("merge_ready", "wh_commit"):
                    txn = event.detail.get("txn")
                    if isinstance(txn, int) and txn not in self._txns_of[update_id]:
                        self._txns_of[update_id].append(txn)
        # Prepend the source-commit hop, then sort stably by time so hop
        # timestamps are monotone while same-instant hops keep causal order.
        for update_id, bucket in hops.items():
            seq = self._update_to_seq.get(update_id)
            commit = self._commit_events.get(seq) if seq is not None else None
            if commit is not None:
                bucket.insert(0, self._as_hop(commit))
            bucket.sort(key=lambda hop: hop.time)
        self._hops = hops

    @classmethod
    def from_system(cls, system: "WarehouseSystem") -> "Lineage":
        """Index a finished (or in-flight) system's trace."""
        return cls(system.sim.trace)

    # -- event attribution -------------------------------------------------
    def _updates_of(self, event: TraceEvent) -> tuple[int, ...]:
        """Which numbered updates an event belongs to."""
        kind = event.kind
        detail = event.detail
        if kind == "int_number":
            return (detail["update_id"],)
        if kind == "vm_compute":
            return tuple(detail.get("covered", ()))
        if kind in ("merge_ready", "merge_submit", "wh_commit"):
            return tuple(detail.get("rows", ()))
        if kind == "wh_start":
            return self._txn_rows.get(detail.get("txn"), ())
        if kind == "proc_msg":
            ids = tuple(detail.get("ids", ()))
            for seq in detail.get("lineage", ()):
                update_id = self._seq_to_update.get(seq)
                if update_id is not None:
                    ids += (update_id,)
            for txn in detail.get("txn", ()):
                if not ids:  # commit acks carry only the txn id
                    ids += self._txn_rows.get(txn, ())
            return ids
        return ()

    @staticmethod
    def _as_hop(event: TraceEvent) -> LineageHop:
        wait = event.detail.get("wait") if event.kind == "proc_msg" else None
        service = (
            event.detail.get("service") if event.kind == "proc_msg" else None
        )
        return LineageHop(
            time=event.time,
            process=event.process,
            kind=event.kind,
            detail=dict(event.detail),
            queue_wait=wait,
            service_time=service,
        )

    # -- queries -----------------------------------------------------------
    def update_ids(self) -> tuple[int, ...]:
        """Every integrator-numbered update the trace knows about."""
        return tuple(sorted(self._numbered))

    def __len__(self) -> int:
        return len(self._numbered)

    def __contains__(self, update_id: int) -> bool:
        return update_id in self._numbered

    def for_update(self, update_id: int) -> UpdateLineage:
        """The full reconstructed chain for one numbered update."""
        numbering = self._numbered.get(update_id)
        if numbering is None:
            raise LineageError(
                f"update {update_id} was never numbered by the integrator "
                f"(trace knows updates {self.update_ids()[:10]}...)"
            )
        seq = self._update_to_seq.get(update_id)
        commit = self._commit_events.get(seq) if seq is not None else None
        commit_time = numbering.detail.get("commit_time")
        if commit is not None:
            commit_time = commit.time
        return UpdateLineage(
            update_id=update_id,
            lineage_id=seq,
            source=commit.process if commit is not None else None,
            source_commit_time=commit_time,
            numbered_at=numbering.time,
            warehouse_txns=tuple(self._txns_of.get(update_id, ())),
            reflected_at=self._reflected_at.get(update_id),
            hops=tuple(self._hops.get(update_id, ())),
        )

    def all(self) -> list[UpdateLineage]:
        """Chains for every numbered update, in numbering order."""
        return [self.for_update(u) for u in self.update_ids()]

    def unreflected(self) -> tuple[int, ...]:
        """Updates numbered but never covered by a warehouse commit."""
        return tuple(
            u for u in self.update_ids() if u not in self._reflected_at
        )
