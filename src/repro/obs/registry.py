"""Typed metrics: counters, gauges and histograms behind one registry.

Every :class:`~repro.sim.kernel.Simulator` owns a
:class:`MetricsRegistry`; processes and channels register their
instruments against it (labelled by process or channel endpoint names), so
an entire run's quantitative record lives in one queryable place instead
of ad-hoc attributes scattered over the codebase.
:mod:`repro.system.metrics` is a thin view over this registry.

Instruments are identified by ``(name, labels)``; asking the registry for
the same identity twice returns the same instrument, so wiring code can be
written get-or-create style::

    registry.counter("channel_messages_sent", src="merge", dst="warehouse")

Design notes:

* **Counter** — monotonically increasing float (message counts, busy
  time).  ``inc()`` only; resets happen by building a new simulator.
* **Gauge** — a sampled value with min/max tracking; with
  ``timeline=True`` it also keeps every ``(time, value)`` sample, which is
  how VUT occupancy *over time* is recorded.
* **Histogram** — stores observations for exact quantiles.  The run sizes
  this library simulates (10⁴–10⁵ events) make exact storage cheaper and
  more honest than bucketed approximation — so exact mode stays the DES
  default.  Long wall-clock runs *do* grow beyond memory, so a histogram
  can be created with ``bound=N``: exact count/total/mean/max are kept,
  but only an Algorithm-R reservoir of ``N`` observations backs the
  quantiles (the parallel runtimes pass a registry-wide default bound).

Every instrument additionally carries an ``origin`` tag — which runtime
substrate recorded it (``des``, ``worker-thread``, or a compute-server
``<shard>:<pid>``).  Origin is *not* part of the ``(name, labels)``
identity, so existing lookups are unaffected; it shows up in summaries,
``format()`` and the exporters.  Cross-process metrics merged by
:mod:`repro.obs.collector` carry their origin as an explicit label too,
so sibling shards never collide.
"""

from __future__ import annotations

import random as _random
import threading as _threading
from typing import Iterable, Iterator, Mapping

#: sentinel: "use the registry's default histogram bound"
_DEFAULT_BOUND = object()


def percentile(values: list[float], fraction: float) -> float:
    """Linear-interpolated percentile (numpy's default method).

    Nearest-rank via ``round()`` biases small samples — e.g. the p95 of ten
    values jumps straight to the maximum — so interpolate between the two
    bracketing order statistics instead.
    """
    if not values:
        return 0.0
    ordered = sorted(values)
    if len(ordered) == 1:
        return ordered[0]
    position = fraction * (len(ordered) - 1)
    lower = int(position)
    upper = min(lower + 1, len(ordered) - 1)
    weight = position - lower
    return ordered[lower] * (1.0 - weight) + ordered[upper] * weight


class Metric:
    """Base class: a named, labelled instrument."""

    __slots__ = ("name", "labels", "origin")

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        self.name = name
        self.labels = labels
        self.origin = ""

    @property
    def key(self) -> str:
        """Stable flat identity, e.g. ``proc_busy_time{process=merge}``."""
        if not self.labels:
            return self.name
        inner = ",".join(f"{k}={v}" for k, v in self.labels)
        return f"{self.name}{{{inner}}}"

    def summary(self) -> dict:
        """A JSON-serialisable snapshot of the instrument's state."""
        raise NotImplementedError

    def _tagged(self, summary: dict) -> dict:
        # origin is a provenance tag, not identity; omit it when unset so
        # summaries of plain single-runtime registries stay byte-identical
        if self.origin:
            summary["origin"] = self.origin
        return summary

    def __repr__(self) -> str:
        return f"{type(self).__name__}({self.key})"


class Counter(Metric):
    """A monotonically increasing value."""

    __slots__ = ("_value",)

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        super().__init__(name, labels)
        self._value = 0.0

    def inc(self, amount: float = 1.0) -> None:
        if amount < 0:
            raise ValueError(f"counter {self.key} cannot decrease by {amount}")
        self._value += amount

    @property
    def value(self) -> float:
        return self._value

    def summary(self) -> dict:
        return self._tagged({"type": "counter", "value": self._value})


class Gauge(Metric):
    """A sampled value; optionally keeps its full (time, value) timeline."""

    __slots__ = ("_value", "_min", "_max", "_samples")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        timeline: bool = False,
    ) -> None:
        super().__init__(name, labels)
        self._value: float | None = None
        self._min: float | None = None
        self._max: float | None = None
        self._samples: list[tuple[float, float]] | None = [] if timeline else None

    def set(self, value: float, at: float | None = None) -> None:
        self._value = value
        self._min = value if self._min is None else min(self._min, value)
        self._max = value if self._max is None else max(self._max, value)
        if self._samples is not None:
            self._samples.append((0.0 if at is None else at, value))

    @property
    def value(self) -> float:
        return 0.0 if self._value is None else self._value

    @property
    def min(self) -> float:
        return 0.0 if self._min is None else self._min

    @property
    def max(self) -> float:
        return 0.0 if self._max is None else self._max

    @property
    def samples(self) -> tuple[tuple[float, float], ...]:
        """The recorded timeline (empty unless created with timeline=True)."""
        return tuple(self._samples or ())

    def summary(self) -> dict:
        out = {
            "type": "gauge",
            "value": self.value,
            "min": self.min,
            "max": self.max,
        }
        if self._samples is not None:
            out["samples"] = len(self._samples)
        return self._tagged(out)


class Histogram(Metric):
    """A distribution of observations with exact quantiles.

    With ``bound=N`` the histogram keeps exact ``count``/``total``/
    ``mean``/``max`` but retains only an Algorithm-R reservoir of ``N``
    observations to back the quantiles, so memory stays O(N) on
    arbitrarily long wall-clock runs.  The reservoir RNG is seeded from
    the instrument's identity, keeping retained samples reproducible
    across runs and processes.
    """

    __slots__ = ("_values", "_total", "_count", "_max", "_bound", "_rng")

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        bound: int | None = None,
    ) -> None:
        super().__init__(name, labels)
        if bound is not None and bound < 1:
            raise ValueError(f"histogram {name} bound must be >= 1, got {bound}")
        self._values: list[float] = []
        self._total = 0.0
        self._count = 0
        self._max: float | None = None
        self._bound = bound
        self._rng = _random.Random(self.key) if bound is not None else None

    def observe(self, value: float) -> None:
        self._total += value
        self._count += 1
        if self._max is None or value > self._max:
            self._max = value
        if self._bound is None or len(self._values) < self._bound:
            self._values.append(value)
        else:
            slot = self._rng.randrange(self._count)
            if slot < self._bound:
                self._values[slot] = value

    def absorb(
        self,
        count: int,
        total: float,
        maximum: float | None,
        values: Iterable[float],
    ) -> None:
        """Fold a drained sibling histogram in (cross-process collector).

        ``count``/``total``/``maximum`` stay exact; retained observations
        are concatenated and (in bounded mode) deterministically
        down-sampled back to the reservoir size.
        """
        self._count += count
        self._total += total
        if maximum is not None and (self._max is None or maximum > self._max):
            self._max = maximum
        self._values.extend(values)
        if self._bound is not None and len(self._values) > self._bound:
            self._values = self._rng.sample(self._values, self._bound)

    @property
    def bound(self) -> int | None:
        """Reservoir size, or None for exact (unbounded) storage."""
        return self._bound

    @property
    def count(self) -> int:
        return self._count

    @property
    def total(self) -> float:
        return self._total

    @property
    def mean(self) -> float:
        return self._total / self._count if self._count else 0.0

    @property
    def max(self) -> float:
        return 0.0 if self._max is None else self._max

    def quantile(self, fraction: float) -> float:
        return percentile(self._values, fraction)

    def values(self) -> tuple[float, ...]:
        """Retained observations (all of them in exact mode)."""
        return tuple(self._values)

    def summary(self) -> dict:
        out = {
            "type": "histogram",
            "count": self.count,
            "total": self._total,
            "mean": self.mean,
            "p50": self.quantile(0.5),
            "p95": self.quantile(0.95),
            "max": self.max,
        }
        if self._bound is not None:
            out["bound"] = self._bound
        return self._tagged(out)


class _LockedCounter(Counter):
    """Counter whose increments are serialised (parallel runtimes)."""

    __slots__ = ("_lock",)

    def __init__(self, name: str, labels: tuple[tuple[str, str], ...]) -> None:
        super().__init__(name, labels)
        self._lock = _threading.Lock()

    def inc(self, amount: float = 1.0) -> None:
        with self._lock:
            super().inc(amount)


class _LockedGauge(Gauge):
    """Gauge whose samples are serialised (parallel runtimes)."""

    __slots__ = ("_lock",)

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        timeline: bool = False,
    ) -> None:
        super().__init__(name, labels, timeline=timeline)
        self._lock = _threading.Lock()

    def set(self, value: float, at: float | None = None) -> None:
        with self._lock:
            super().set(value, at=at)


class _LockedHistogram(Histogram):
    """Histogram whose observations are serialised (parallel runtimes)."""

    __slots__ = ("_lock",)

    def __init__(
        self,
        name: str,
        labels: tuple[tuple[str, str], ...],
        bound: int | None = None,
    ) -> None:
        super().__init__(name, labels, bound=bound)
        self._lock = _threading.Lock()

    def observe(self, value: float) -> None:
        with self._lock:
            super().observe(value)

    def absorb(
        self,
        count: int,
        total: float,
        maximum: float | None,
        values: Iterable[float],
    ) -> None:
        with self._lock:
            super().absorb(count, total, maximum, values)


#: plain instrument class -> its locked twin (``locked=True`` registries)
_LOCKED = {Counter: _LockedCounter, Gauge: _LockedGauge,
           Histogram: _LockedHistogram}


class MetricsRegistry:
    """Get-or-create home for every instrument of one simulation run.

    With ``locked=True`` every instrument's mutators are serialised by a
    per-instrument lock and get-or-create itself is guarded, so processes
    sharing an instrument across worker threads (the wall-clock runtimes,
    :mod:`repro.runtime`) record without read-modify-write races.  The
    default stays lock-free: the DES kernel is single-threaded and its
    instrument updates sit on the simulation hot path.
    """

    __slots__ = ("_metrics", "_locked", "_lock", "origin", "_histogram_bound")

    def __init__(
        self,
        locked: bool = False,
        origin: str = "",
        histogram_bound: int | None = None,
    ) -> None:
        self._metrics: dict[tuple[str, tuple[tuple[str, str], ...]], Metric] = {}
        self._locked = locked
        self._lock = _threading.Lock() if locked else None
        #: provenance tag stamped on every instrument this registry creates
        self.origin = origin
        #: default reservoir bound for histograms (None = exact storage)
        self._histogram_bound = histogram_bound

    @staticmethod
    def _label_key(labels: Mapping[str, str]) -> tuple[tuple[str, str], ...]:
        return tuple(sorted((k, str(v)) for k, v in labels.items()))

    def _get_or_create(self, cls: type, name: str, labels: Mapping[str, str],
                       **kwargs: object) -> Metric:
        key = (name, self._label_key(labels))
        if self._lock is None:
            return self._create(cls, name, key, **kwargs)
        with self._lock:
            return self._create(cls, name, key, **kwargs)

    def _create(self, cls: type, name: str,
                key: tuple[str, tuple[tuple[str, str], ...]],
                **kwargs: object) -> Metric:
        metric = self._metrics.get(key)
        if metric is None:
            metric = (_LOCKED[cls] if self._locked else cls)(
                name, key[1], **kwargs
            )
            metric.origin = self.origin
            self._metrics[key] = metric
        elif not isinstance(metric, cls):
            raise TypeError(
                f"metric {metric.key} already registered as "
                f"{type(metric).__name__}, asked for {cls.__name__}"
            )
        return metric

    def counter(self, name: str, **labels: str) -> Counter:
        return self._get_or_create(Counter, name, labels)  # type: ignore[return-value]

    def gauge(self, name: str, timeline: bool = False, **labels: str) -> Gauge:
        gauge = self._get_or_create(Gauge, name, labels, timeline=timeline)
        return gauge  # type: ignore[return-value]

    def histogram(
        self, name: str, bound: object = _DEFAULT_BOUND, **labels: str
    ) -> Histogram:
        if bound is _DEFAULT_BOUND:
            bound = self._histogram_bound
        return self._get_or_create(  # type: ignore[return-value]
            Histogram, name, labels, bound=bound
        )

    # -- queries -----------------------------------------------------------
    def __iter__(self) -> Iterator[Metric]:
        return iter(self._metrics.values())

    def __len__(self) -> int:
        return len(self._metrics)

    def get(self, name: str, **labels: str) -> Metric | None:
        """The instrument with this exact identity, or None."""
        return self._metrics.get((name, self._label_key(labels)))

    def family(self, name: str) -> list[Metric]:
        """Every instrument sharing ``name``, across all label sets."""
        return [m for (n, _), m in sorted(self._metrics.items()) if n == name]

    def value(self, name: str, default: float = 0.0, **labels: str) -> float:
        """Convenience: the scalar value of a counter/gauge, or ``default``."""
        metric = self.get(name, **labels)
        if metric is None:
            return default
        return metric.value  # type: ignore[union-attr]

    def to_dict(self) -> dict[str, dict]:
        """Flat JSON-serialisable dump: ``{flat_key: summary}``."""
        return {
            metric.key: metric.summary()
            for _, metric in sorted(self._metrics.items())
        }

    def format(self, prefix: str = "") -> str:
        """Plain-text dump (optionally restricted to a name prefix)."""
        lines = []
        for _, metric in sorted(self._metrics.items()):
            if prefix and not metric.name.startswith(prefix):
                continue
            summary = metric.summary()
            kind = summary.pop("type")
            inner = " ".join(
                f"{k}={v:.4g}" if isinstance(v, float) else f"{k}={v}"
                for k, v in summary.items()
            )
            lines.append(f"{metric.key:<60} {kind:<9} {inner}")
        return "\n".join(lines)
