"""The conformance oracle: what does a configuration *promise*, and did
a finished run keep that promise?

Per view, the effective guarantee is the weaker of

* the view manager's single-view level (``complete-n`` and ``periodic``
  managers promise strong; ``naive`` promises nothing), and
* the view's merge process level (the algorithm's guarantee, degraded
  from complete to strong by a non-completeness-preserving submission
  policy, and ``complete-n`` reading as strong at sub-block granularity).

A run is then checked three ways, strictly following the §2 definitions:

1. **per view** — the view's value sequence against the source state
   sequence (sound for a single view because the painting algorithms
   never reorder updates affecting the same view);
2. **per pair** — every pair of non-broken views via the order-aware
   checker (:mod:`repro.consistency.ordered`), which accepts any legal
   conflict-equivalent reordering but rejects cross-view anomalies the
   single-view checks cannot see;
3. **fleet-wide** — all views together at the fleet's weakest level.

Violations of levels a configuration never promised are *not* reported:
the oracle answers "did this run break its advertised guarantee", which
is exactly what the explorer hunts for.
"""

from __future__ import annotations

from dataclasses import dataclass
from itertools import combinations
from typing import Sequence

from repro.consistency.checker import (
    check_complete,
    check_convergent,
    check_strong,
)
from repro.consistency.mvc import check_mvc_convergent
from repro.consistency.ordered import check_mvc_ordered
from repro.consistency.states import source_view_values
from repro.errors import ReproError
from repro.merge.sharding import groups_by_shard
from repro.system.builder import WarehouseSystem

#: total order on achievable levels (broken managers promise nothing).
LEVEL_ORDER = {"inconsistent": 0, "convergent": 1, "strong": 2, "complete": 3}

#: view-manager kind -> promised single-view level (None = no promise).
MANAGER_LEVELS: dict[str, str | None] = {
    "complete": "complete",
    "strong": "strong",
    "complete-n": "strong",  # strong at sub-block read granularity
    "periodic": "strong",
    "convergent": "convergent",
    "naive": None,
}


def _weaker(a: str | None, b: str | None) -> str | None:
    if a is None or b is None:
        return None
    return a if LEVEL_ORDER[a] <= LEVEL_ORDER[b] else b


@dataclass(frozen=True)
class Violation:
    """One broken promise observed in a run.

    ``scope`` names what was checked ("view:V1", "pair:V1,V2", "fleet",
    or "run" for an execution error); ``level`` is the promised level
    that failed (or "execution"); ``reason`` is the checker's (or the
    exception's) explanation.
    """

    scope: str
    level: str
    reason: str

    def __str__(self) -> str:
        return f"{self.scope} violates {self.level}: {self.reason}"


def merge_effective_level(system: WarehouseSystem, merge_name: str) -> str:
    """The level a merge process actually delivers to its views."""
    merge = system._merge_by_name(merge_name)
    level = merge.algorithm.guarantees_level
    if level == "complete-n":
        level = "strong"
    if level == "complete" and not merge.policy.preserves_completeness:
        level = "strong"
    return level


def effective_view_levels(system: WarehouseSystem) -> dict[str, str | None]:
    """Per view: the weaker of its manager's and merge process's promise."""
    levels: dict[str, str | None] = {}
    for definition in system.definitions:
        view = definition.name
        kind = system.config.kind_for(view)
        if kind not in MANAGER_LEVELS:
            raise ReproError(f"unknown manager kind {kind!r} for view {view!r}")
        manager_level = MANAGER_LEVELS[kind]
        merge_level = merge_effective_level(system, system.view_to_merge[view])
        levels[view] = _weaker(manager_level, merge_level)
    return levels


def fleet_expected_level(system: WarehouseSystem) -> str | None:
    """The fleet-wide promise: the weakest per-view level (None if any
    view's manager is broken — a fleet with a naive member promises
    nothing jointly)."""
    expected: str | None = "complete"
    for level in effective_view_levels(system).values():
        expected = _weaker(expected, level)
    return expected


def _check_single_view(level, warehouse_values, source_values):
    if level == "complete":
        return check_complete(warehouse_values, source_values)
    if level == "strong":
        return check_strong(warehouse_values, source_values)
    return check_convergent(warehouse_values, source_values)


def check_run(system: WarehouseSystem) -> list[Violation]:
    """Every broken promise in a finished run (empty = conformant).

    The system must have been run to completion (``system.run()`` with no
    horizon) so the history covers the full update stream.
    """
    violations: list[Violation] = []
    view_levels = effective_view_levels(system)
    definitions = {d.name: d for d in system.definitions}

    # 1. per-view §2 checks on value sequences.
    source_states = system.source_states()
    per_state = source_view_values(source_states, system.definitions)
    for view, level in view_levels.items():
        if level is None:
            continue
        warehouse_values = [state.view(view) for state in system.history]
        source_values = [values[view] for values in per_state]
        report = _check_single_view(level, warehouse_values, source_values)
        if not report:
            violations.append(Violation(f"view:{view}", level, report.reason))

    # 2. pairwise MVC (order-aware for strong/complete).
    checked = [v for v, lvl in view_levels.items() if lvl is not None]
    for first, second in combinations(checked, 2):
        level = _weaker(view_levels[first], view_levels[second])
        pair = [definitions[first], definitions[second]]
        if level == "convergent":
            report = check_mvc_convergent(system.history, source_states, pair)
        else:
            report = check_mvc_ordered(
                system.history,
                system.initial_state,
                system.integrator.numbered,
                pair,
                level,
            )
        if not report:
            violations.append(
                Violation(f"pair:{first},{second}", level, report.reason)
            )

    # 2b. per shard: each merge process's views jointly at the shard's
    # weakest promised level.  §6.1 argues shards never interact; this is
    # the executable form of that argument — a violation scoped
    # ``shard:mergeN`` means the partitioning itself leaked consistency.
    if len(system.merge_processes) > 1:
        shards = groups_by_shard(system.view_to_merge)
        for merge_name, shard_views in shards.items():
            level: str | None = "complete"
            for view in shard_views:
                level = _weaker(level, view_levels[view])
            if level is None or len(shard_views) < 2:
                continue  # no joint promise, or covered by the per-view check
            shard_defs = [definitions[v] for v in sorted(shard_views)]
            if level == "convergent":
                report = check_mvc_convergent(
                    system.history, source_states, shard_defs
                )
            else:
                report = check_mvc_ordered(
                    system.history,
                    system.initial_state,
                    system.integrator.numbered,
                    shard_defs,
                    level,
                )
            if not report:
                violations.append(
                    Violation(f"shard:{merge_name}", level, report.reason)
                )

    # 3. fleet-wide at the weakest promised level.
    fleet_level = fleet_expected_level(system)
    if fleet_level is not None:
        if fleet_level == "convergent":
            report = check_mvc_convergent(
                system.history, source_states, system.definitions
            )
        else:
            report = check_mvc_ordered(
                system.history,
                system.initial_state,
                system.integrator.numbered,
                system.definitions,
                fleet_level,
            )
        if not report:
            violations.append(Violation("fleet", fleet_level, report.reason))

    return violations


@dataclass(frozen=True)
class RealRunReport:
    """The conformance verdict on one wall-clock (parallel-runtime) run.

    ``digest`` is the run's observable history reduced to the same
    SHA-256 the explorer pins its reproducers with
    (:meth:`~repro.sim.tracing.Trace.digest`) — two real runs with equal
    digests had byte-for-byte identical observable histories, and a
    digest plus an empty ``violations`` tuple certifies that this
    particular interleaving lies inside the schedule space the oracle
    accepts.
    """

    runtime: str
    digest: str
    events: int
    violations: tuple[Violation, ...]

    @property
    def ok(self) -> bool:
        return not self.violations

    def __str__(self) -> str:
        verdict = (
            "conformant"
            if self.ok
            else "; ".join(str(v) for v in self.violations)
        )
        return (
            f"[{self.runtime}] {self.events} events, "
            f"digest {self.digest[:12]}…: {verdict}"
        )


def check_real_run(system: WarehouseSystem) -> RealRunReport:
    """Validate a finished run on *any* runtime with the full oracle.

    The per-view, pairwise, per-shard and fleet checks of
    :func:`check_run` are all history-level — they read the warehouse
    state sequence and the integrator's numbering, never the clock — so
    the same promises are checkable whether the history came from the
    DES kernel or from real threads/processes.  This is the anchor the
    parallel runtimes are held to: every interleaving the hardware
    produces must keep the configuration's advertised MVC level, exactly
    like every schedule the explorer enumerates.
    """
    return RealRunReport(
        runtime=system.config.runtime,
        digest=system.sim.trace.digest(),
        events=system.sim.events_executed,
        violations=tuple(check_run(system)),
    )


def check_run_at(system: WarehouseSystem, level: str) -> list[Violation]:
    """Check the whole fleet at an explicit ``level`` (negative oracles).

    Unlike :func:`check_run` this ignores what the configuration
    promises: it asks whether the run *happens* to satisfy ``level``,
    which is how the explorer demonstrates that naive or periodic fleets
    produce detectable violations.
    """
    if level not in ("convergent", "strong", "complete"):
        raise ReproError(f"unknown MVC level {level!r}")
    if level == "convergent":
        report = check_mvc_convergent(
            system.history, system.source_states(), system.definitions
        )
    else:
        report = check_mvc_ordered(
            system.history,
            system.initial_state,
            system.integrator.numbered,
            system.definitions,
            level,
        )
    if report:
        return []
    return [Violation("fleet", level, report.reason)]


__all__ = [
    "LEVEL_ORDER",
    "MANAGER_LEVELS",
    "RealRunReport",
    "Violation",
    "check_real_run",
    "check_run",
    "check_run_at",
    "effective_view_levels",
    "fleet_expected_level",
    "merge_effective_level",
]
