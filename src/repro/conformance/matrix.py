"""The guarantee matrix: the paper's promises as executable rows.

Each row pairs a fleet configuration with an expectation:

* ``holds`` rows assert the advertised level survives every explored
  schedule — SPA fleets stay complete, PA fleets stay strong, mixed
  fleets deliver exactly their weakest member's level, and a reliable
  channel stack keeps its guarantee under drops and duplicates;
* ``violates`` rows are negative oracles — naive and periodic fleets
  must produce a *detectable* violation of the named level within the
  seed budget, which the engine then shrinks to a replayable reproducer.

A ``holds`` row that finds a violation, or a ``violates`` row that
cannot, is a conformance failure.  ``run_matrix`` is what the CI smoke
job executes; reproducers for the negative rows land in ``out_dir`` as
JSON artifacts.
"""

from __future__ import annotations

from dataclasses import dataclass, field
from pathlib import Path

from repro.conformance.explorer import Explorer, Finding, Reproducer, replay
from repro.conformance.scenario import ScenarioSpec
from repro.faults.plan import CrashSpec, FaultPlan


@dataclass(frozen=True)
class MatrixRow:
    """One configuration × expectation cell of the guarantee matrix."""

    name: str
    spec: ScenarioSpec
    expect: str  # "holds" | "violates"
    check_level: str | None = None  # explicit level for negative oracles

    def __post_init__(self) -> None:
        if self.expect not in ("holds", "violates"):
            raise ValueError(f"expect must be holds|violates, not {self.expect!r}")
        if self.expect == "violates" and self.check_level is None:
            raise ValueError(f"row {self.name!r}: violates rows need check_level")


def _row_spec(**overrides) -> ScenarioSpec:
    base = dict(
        schema="paper",
        updates=12,
        rate=2.0,
        mix=(0.7, 0.15, 0.15),
        multi_update_fraction=0.2,
        scheduler="delay",
    )
    base.update(overrides)
    return ScenarioSpec(**base)


GUARANTEE_MATRIX: tuple[MatrixRow, ...] = (
    MatrixRow(
        "spa-complete-fleet",
        _row_spec(manager_kind="complete", merge_algorithm="spa"),
        "holds",
    ),
    MatrixRow(
        "pa-strong-fleet",
        _row_spec(manager_kind="strong", merge_algorithm="pa"),
        "holds",
    ),
    MatrixRow(
        "mixed-complete-strong",
        _row_spec(
            manager_kinds={"V1": "complete", "V2": "strong", "V3": "strong"},
            merge_algorithm="auto",
        ),
        "holds",
    ),
    MatrixRow(
        "mixed-weakest-convergent",
        _row_spec(
            manager_kinds={"V1": "complete", "V2": "strong", "V3": "convergent"},
            merge_algorithm="auto",
        ),
        "holds",
    ),
    MatrixRow(
        "batching-degrades-to-strong",
        _row_spec(
            manager_kind="complete",
            merge_algorithm="spa",
            submission_policy="batching",
        ),
        "holds",
    ),
    MatrixRow(
        "faulty-reliable-keeps-promise",
        _row_spec(
            manager_kind="complete",
            merge_algorithm="spa",
            fault_plan=FaultPlan(
                seed=1, drop_rate=0.05, duplicate_rate=0.05, reliable=True
            ),
        ),
        "holds",
    ),
    # Sharded-merge rows (§6.1 at merge_groups > 1, hash router): MVC
    # must hold per shard and fleet-wide when view groups are spread over
    # several merge processes, under adversarial scheduling — and, in the
    # fault row, under message drops and duplicates too.
    MatrixRow(
        "sharded-spa-holds-per-shard",
        _row_spec(
            schema="paper-ex3",
            manager_kind="complete",
            merge_algorithm="spa",
            merge_groups=2,
            merge_router="hash",
        ),
        "holds",
    ),
    MatrixRow(
        "sharded-mixed-weakest-holds",
        _row_spec(
            schema="paper-ex3",
            manager_kinds={"V1": "complete", "V2": "strong", "V3": "convergent"},
            merge_algorithm="auto",
            merge_groups=2,
            merge_router="hash",
        ),
        "holds",
    ),
    MatrixRow(
        "sharded-faulty-reliable-holds",
        _row_spec(
            schema="paper-ex3",
            manager_kind="complete",
            merge_algorithm="spa",
            merge_groups=2,
            merge_router="hash",
            fault_plan=FaultPlan(
                seed=3, drop_rate=0.05, duplicate_rate=0.05, reliable=True
            ),
        ),
        "holds",
    ),
    # Cache-backed recovery rows (repro.cache): crashed view managers and
    # merge processes restore from content-addressed artifacts instead of
    # in-simulator replay, and MVC must still hold under adversarial
    # scheduling — even with a faulty (dropping, duplicating) network.
    # The negative row injects the stale-ref fault: checkpoint refs lag
    # one publish, so a restart adopts a valid-but-stale artifact, which
    # must surface as a detectable failure, shrink, and replay.
    MatrixRow(
        "cached-restart-spa-holds",
        _row_spec(
            manager_kind="complete",
            merge_algorithm="spa",
            cache=True,
            fault_plan=FaultPlan(
                seed=11,
                crashes=(
                    CrashSpec("vm:V1", at=5.0, restart_after=2.0),
                    CrashSpec("merge", at=9.0, restart_after=3.0),
                ),
            ),
        ),
        "holds",
    ),
    MatrixRow(
        "cached-restart-faulty-reliable-holds",
        _row_spec(
            manager_kind="complete",
            merge_algorithm="spa",
            cache=True,
            fault_plan=FaultPlan(
                seed=13,
                drop_rate=0.05,
                duplicate_rate=0.05,
                reliable=True,
                crashes=(
                    CrashSpec("vm:V1", at=5.0, restart_after=2.0),
                    CrashSpec("merge", at=9.0, restart_after=3.0),
                ),
            ),
        ),
        "holds",
    ),
    MatrixRow(
        "cached-restart-stale-artifact-breaks",
        _row_spec(
            manager_kind="complete",
            merge_algorithm="spa",
            cache=True,
            cache_stale_refs=True,
            fault_plan=FaultPlan(
                seed=19,
                crashes=(CrashSpec("vm:V1", at=5.0, restart_after=2.0),),
            ),
        ),
        "violates",
        check_level="complete",
    ),
    MatrixRow(
        "naive-fleet-breaks-strong",
        _row_spec(manager_kind="naive"),
        "violates",
        check_level="strong",
    ),
    MatrixRow(
        "periodic-fleet-breaks-complete",
        _row_spec(manager_kind="periodic", refresh_period=15.0),
        "violates",
        check_level="complete",
    ),
)


@dataclass
class MatrixResult:
    """Outcome of one row: did reality match the expectation?"""

    row: MatrixRow
    ok: bool
    reason: str
    runs: int
    findings: list[Finding] = field(default_factory=list)
    reproducer_path: Path | None = None


def run_row(
    row: MatrixRow,
    seeds: int = 25,
    time_budget: float | None = None,
    out_dir: str | Path | None = None,
) -> MatrixResult:
    """Explore one row and judge it against its expectation.

    ``violates`` rows additionally shrink the first finding, write the
    reproducer to ``out_dir`` (when given), and verify it replays.
    """
    explorer = Explorer(
        row.spec,
        seeds=seeds,
        time_budget=time_budget,
        stop_on_first=True,
        level=row.check_level,
    )
    findings = explorer.explore()
    if row.expect == "holds":
        if findings:
            return MatrixResult(
                row,
                ok=False,
                reason=f"guarantee broken at seed {findings[0].seed}: "
                f"{findings[0].violations[0]}",
                runs=explorer.runs_executed,
                findings=findings,
            )
        return MatrixResult(
            row,
            ok=True,
            reason=f"held across {explorer.runs_executed} runs",
            runs=explorer.runs_executed,
        )

    if not findings:
        return MatrixResult(
            row,
            ok=False,
            reason=f"no {row.check_level} violation found in "
            f"{explorer.runs_executed} runs (negative oracle failed)",
            runs=explorer.runs_executed,
        )
    reproducer = explorer.shrink(findings[0])
    result = replay(reproducer)
    if not (result.reproduced and result.digest_matches):
        return MatrixResult(
            row,
            ok=False,
            reason="shrunk reproducer did not replay deterministically",
            runs=explorer.runs_executed,
            findings=findings,
        )
    path: Path | None = None
    if out_dir is not None:
        out = Path(out_dir)
        out.mkdir(parents=True, exist_ok=True)
        path = reproducer.save(out / f"{row.name}.json")
    perts = reproducer.perturbations or []
    return MatrixResult(
        row,
        ok=True,
        reason=f"violation found at seed {findings[0].seed}, shrunk to "
        f"{len(perts)} perturbations, replays byte-for-byte",
        runs=explorer.runs_executed,
        findings=findings,
        reproducer_path=path,
    )


def run_matrix(
    seeds: int = 25,
    time_budget: float | None = None,
    out_dir: str | Path | None = None,
    rows: tuple[MatrixRow, ...] = GUARANTEE_MATRIX,
) -> list[MatrixResult]:
    """Run every row; a total ``time_budget`` is split evenly across rows."""
    per_row = None if time_budget is None else time_budget / len(rows)
    return [
        run_row(row, seeds=seeds, time_budget=per_row, out_dir=out_dir)
        for row in rows
    ]


__all__ = [
    "GUARANTEE_MATRIX",
    "MatrixResult",
    "MatrixRow",
    "run_matrix",
    "run_row",
]
