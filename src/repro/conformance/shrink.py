"""Delta debugging: shrink a failing perturbation list to a 1-minimal one.

When the explorer finds a violating run under a
:class:`~repro.sim.scheduler.DelayInjectingScheduler`, the schedule is
fully described by the scheduler's recorded perturbations.  Because each
perturbation is addressed by a stable ``(lane, index)`` key and its
randomness is hashed statelessly, *any subset* of the list replays
meaningfully — removing one perturbation does not shift the others.
That makes the schedule a textbook delta-debugging target: ``ddmin``
(Zeller & Hildebrandt 2002) repeatedly removes chunks, keeping a subset
whenever the violation survives, until no single remaining perturbation
can be dropped.
"""

from __future__ import annotations

from typing import Callable, Sequence, TypeVar

T = TypeVar("T")


def ddmin(
    items: Sequence[T],
    still_fails: Callable[[list[T]], bool],
    max_runs: int = 512,
) -> tuple[list[T], int]:
    """A 1-minimal sublist of ``items`` for which ``still_fails`` holds.

    ``still_fails(subset)`` must be True for the full list; the result is
    the smallest list found within ``max_runs`` predicate evaluations
    (1-minimal if the budget was not exhausted: removing any single
    element makes the failure vanish).  Returns ``(minimal, runs_used)``.
    """
    runs = 0

    def test(subset: list[T]) -> bool:
        nonlocal runs
        runs += 1
        return still_fails(subset)

    current = list(items)
    # Cheap best case first: the failure may not need perturbations at all
    # (e.g. the workload alone triggers it).
    if not current or test([]):
        return [], runs

    granularity = 2
    while len(current) >= 2 and runs < max_runs:
        chunk = max(1, len(current) // granularity)
        chunks = [current[i : i + chunk] for i in range(0, len(current), chunk)]
        reduced = False
        for index, piece in enumerate(chunks):
            if runs >= max_runs:
                break
            complement = [
                item
                for j, other in enumerate(chunks)
                if j != index
                for item in other
            ]
            if complement and test(complement):
                current = complement
                granularity = max(granularity - 1, 2)
                reduced = True
                break
            if runs >= max_runs:
                break
            if len(piece) < len(current) and test(list(piece)):
                current = list(piece)
                granularity = 2
                reduced = True
                break
        if not reduced:
            if granularity >= len(current):
                break
            granularity = min(len(current), granularity * 2)
    return current, runs


__all__ = ["ddmin"]
