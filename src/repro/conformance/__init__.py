"""Schedule-exploration conformance engine.

The §2 consistency definitions are promises about *every* execution, but
a single deterministic run only witnesses one interleaving.  This package
turns the simulator into a model checker (in the Jepsen/TLC tradition):

* :mod:`~repro.conformance.scenario` — :class:`ScenarioSpec`, a
  JSON-serializable description of one configuration under test (world,
  views, workload, fleet, merge algorithm, faults, scheduler kind);
* :mod:`~repro.conformance.oracle` — what each configuration promises
  (per view, per pair, fleet-wide) and whether a finished run kept it;
* :mod:`~repro.conformance.explorer` — drive many seeded runs, turn
  crashes and broken promises into findings, delta-debug a finding's
  scheduling perturbations to a 1-minimal :class:`Reproducer`, and
  replay reproducers byte-for-byte (verified by trace digest);
* :mod:`~repro.conformance.shrink` — the ``ddmin`` implementation;
* :mod:`~repro.conformance.matrix` — the guarantee matrix: SPA fleets
  stay complete, PA fleets stay strong, mixed fleets deliver their
  weakest member's level, and naive/periodic fleets demonstrably fail.

Entry point: ``python -m repro conformance explore|replay|matrix``.
"""

from repro.conformance.explorer import (
    Explorer,
    Finding,
    ReplayResult,
    Reproducer,
    RunResult,
    replay,
)
from repro.conformance.matrix import (
    GUARANTEE_MATRIX,
    MatrixResult,
    MatrixRow,
    run_matrix,
    run_row,
)
from repro.conformance.oracle import (
    Violation,
    check_run,
    check_run_at,
    effective_view_levels,
    fleet_expected_level,
)
from repro.conformance.scenario import SCENARIO_SCHEMAS, ScenarioSpec
from repro.conformance.shrink import ddmin

__all__ = [
    "GUARANTEE_MATRIX",
    "SCENARIO_SCHEMAS",
    "Explorer",
    "Finding",
    "MatrixResult",
    "MatrixRow",
    "ReplayResult",
    "Reproducer",
    "RunResult",
    "ScenarioSpec",
    "Violation",
    "check_run",
    "check_run_at",
    "ddmin",
    "effective_view_levels",
    "fleet_expected_level",
    "replay",
    "run_matrix",
    "run_row",
]
