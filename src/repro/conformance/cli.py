"""``python -m repro conformance`` — hunt, shrink, replay.

Subcommands:

* ``explore`` — build a scenario from flags, run it across a seed range,
  and report the first guarantee violation (shrunk and optionally saved
  with ``--out``).  Exit code 0 = no violation found, 2 = found.
* ``replay FILE`` — re-execute a saved reproducer and verify both that
  the violation recurs and that the trace digest matches byte-for-byte.
  Exit code 0 = reproduced, 1 = not.
* ``matrix`` — run the guarantee matrix (``repro.conformance.matrix``);
  negative-row reproducers land in ``--out-dir``.  Exit 0 = every row
  matched its expectation.
"""

from __future__ import annotations

import argparse

from repro.conformance.explorer import Explorer, Reproducer, replay
from repro.conformance.matrix import run_matrix
from repro.conformance.scenario import SCENARIO_SCHEMAS, ScenarioSpec
from repro.errors import ReproError
from repro.faults.plan import FaultPlan
from repro.system.config import (
    MANAGER_KINDS,
    MERGE_ALGORITHMS,
    SUBMISSION_POLICIES,
)


def parse_fleet(text: str) -> dict[str, str]:
    """``V1=complete,V2=naive`` -> per-view manager kinds."""
    fleet: dict[str, str] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if "=" not in part:
            raise ReproError(f"--managers wants VIEW=KIND pairs, got {part!r}")
        view, _, kind = part.partition("=")
        if kind not in MANAGER_KINDS:
            raise ReproError(f"unknown manager kind {kind!r} for {view!r}")
        fleet[view.strip()] = kind.strip()
    return fleet


def parse_faults(text: str) -> FaultPlan:
    """``drop=0.05,dup=0.02,spike=0.1,unreliable,seed=3`` -> FaultPlan."""
    kwargs: dict[str, object] = {}
    for part in text.split(","):
        part = part.strip()
        if not part:
            continue
        if part == "unreliable":
            kwargs["reliable"] = False
            continue
        if "=" not in part:
            raise ReproError(f"bad --faults item {part!r}")
        key, _, value = part.partition("=")
        mapping = {
            "drop": ("drop_rate", float),
            "dup": ("duplicate_rate", float),
            "spike": ("delay_spike_rate", float),
            "spike-delay": ("delay_spike", float),
            "seed": ("seed", int),
        }
        if key not in mapping:
            raise ReproError(f"unknown --faults key {key!r}")
        name, cast = mapping[key]
        kwargs[name] = cast(value)
    return FaultPlan(**kwargs)  # type: ignore[arg-type]


def spec_from_args(args: argparse.Namespace) -> ScenarioSpec:
    return ScenarioSpec(
        schema=args.schema,
        views=args.views,
        updates=args.updates,
        rate=args.rate,
        multi_update_fraction=args.multi_update,
        workload_seed=args.workload_seed,
        vary_workload=not args.pin_workload,
        manager_kind=args.manager,
        manager_kinds=parse_fleet(args.managers) if args.managers else {},
        merge_algorithm=args.algorithm,
        merge_groups=args.merges,
        submission_policy=args.policy,
        refresh_period=args.refresh_period,
        fault_plan=parse_faults(args.faults) if args.faults else None,
        scheduler=args.scheduler,
        delay_rate=args.delay_rate,
        max_delay=args.max_delay,
        reorder_rate=args.reorder_rate,
    )


def _cmd_explore(args: argparse.Namespace) -> int:
    spec = spec_from_args(args)
    explorer = Explorer(
        spec,
        seeds=args.seeds,
        time_budget=args.budget,
        stop_on_first=True,
        level=args.level,
    )
    print(f"exploring: {spec.describe()}")
    target = args.level or "the advertised guarantee"
    findings = explorer.explore()
    if not findings:
        print(
            f"no violation of {target} in {explorer.runs_executed} runs "
            f"(seeds 0..{args.seeds - 1})"
        )
        return 0
    finding = findings[0]
    print(f"VIOLATION at seed {finding.seed} "
          f"(run {explorer.runs_executed} of the hunt):")
    for violation in finding.violations:
        print(f"  {violation}")
    reproducer = explorer.shrink(finding)
    perts = reproducer.perturbations
    if perts is not None:
        print(f"shrunk: {len(finding.perturbations)} -> {len(perts)} "
              f"scheduling perturbations")
        for p in perts:
            print(f"  {p.kind} lane={p.lane} index={p.index} "
                  f"amount={p.amount:g}")
    if args.out:
        path = reproducer.save(args.out)
        print(f"reproducer: {path}")
        print(f"replay with: python -m repro conformance replay {path}")
    return 2


def _cmd_replay(args: argparse.Namespace) -> int:
    reproducer = Reproducer.load(args.file)
    spec = reproducer.spec()
    print(f"replaying: {spec.describe()} seed={reproducer.seed}")
    print(f"expected violation: {reproducer.violation['scope']} at "
          f"{reproducer.violation['level']}")
    result = replay(reproducer)
    for violation in result.violations:
        print(f"  {violation}")
    print(f"violation reproduced: {'yes' if result.reproduced else 'NO'}")
    print(f"trace digest matches: "
          f"{'yes (byte-for-byte)' if result.digest_matches else 'NO'}")
    return 0 if (result.reproduced and result.digest_matches) else 1


def _cmd_matrix(args: argparse.Namespace) -> int:
    results = run_matrix(
        seeds=args.seeds, time_budget=args.budget, out_dir=args.out_dir
    )
    width = max(len(r.row.name) for r in results)
    failures = 0
    for result in results:
        status = "PASS" if result.ok else "FAIL"
        failures += not result.ok
        print(f"{status}  {result.row.name:<{width}}  {result.reason}")
        if result.reproducer_path is not None:
            print(f"      reproducer: {result.reproducer_path}")
    print(f"{len(results) - failures}/{len(results)} rows conform")
    return 0 if failures == 0 else 1


def add_conformance_parser(sub: argparse._SubParsersAction) -> None:
    """Attach the ``conformance`` subcommand tree to the main CLI."""
    conf = sub.add_parser(
        "conformance",
        help="schedule-exploration conformance engine (hunt/shrink/replay)",
    )
    csub = conf.add_subparsers(dest="conformance_command", required=True)

    explore = csub.add_parser(
        "explore", help="hunt a configuration's seed space for violations"
    )
    explore.add_argument("--schema", choices=sorted(SCENARIO_SCHEMAS),
                         default="paper")
    explore.add_argument("--views", type=int, default=0,
                         help="use only the first N views (0 = all)")
    explore.add_argument("--manager", choices=MANAGER_KINDS,
                         default="complete")
    explore.add_argument("--managers", default=None, metavar="V=KIND,...",
                         help="per-view manager kinds (mixed fleets)")
    explore.add_argument("--algorithm", choices=MERGE_ALGORITHMS,
                         default="auto")
    explore.add_argument("--policy", choices=SUBMISSION_POLICIES,
                         default="dependency-sequenced")
    explore.add_argument("--merges", type=int, default=1)
    explore.add_argument("--refresh-period", type=float, default=15.0)
    explore.add_argument("--updates", type=int, default=12)
    explore.add_argument("--rate", type=float, default=2.0)
    explore.add_argument("--multi-update", type=float, default=0.2,
                         metavar="FRAC",
                         help="fraction of multi-update transactions")
    explore.add_argument("--workload-seed", type=int, default=0)
    explore.add_argument("--pin-workload", action="store_true",
                         help="same update stream every run "
                         "(search interleavings only)")
    explore.add_argument("--scheduler", choices=("fifo", "random", "delay"),
                         default="delay")
    explore.add_argument("--delay-rate", type=float, default=0.15)
    explore.add_argument("--max-delay", type=float, default=3.0)
    explore.add_argument("--reorder-rate", type=float, default=0.15)
    explore.add_argument("--seeds", type=int, default=100,
                         help="seed budget (runs seeds 0..N-1)")
    explore.add_argument("--budget", type=float, default=None,
                         metavar="SECONDS", help="wall-clock budget")
    explore.add_argument("--level",
                         choices=("convergent", "strong", "complete"),
                         default=None,
                         help="check this level instead of the advertised "
                         "one (negative-oracle mode)")
    explore.add_argument("--faults", default=None,
                         metavar="drop=0.05,dup=0.02,...",
                         help="inject channel faults (add 'unreliable' to "
                         "drop the reliable transport)")
    explore.add_argument("--out", default=None, metavar="PATH",
                         help="write the shrunk reproducer JSON here")

    rep = csub.add_parser("replay", help="re-execute a saved reproducer")
    rep.add_argument("file", help="reproducer JSON from explore/matrix")

    mat = csub.add_parser("matrix", help="run the guarantee matrix")
    mat.add_argument("--seeds", type=int, default=25)
    mat.add_argument("--budget", type=float, default=None, metavar="SECONDS",
                     help="total wall-clock budget, split across rows")
    mat.add_argument("--out-dir", default=None, metavar="DIR",
                     help="write negative-row reproducers here")


def dispatch(args: argparse.Namespace) -> int:
    if args.conformance_command == "explore":
        return _cmd_explore(args)
    if args.conformance_command == "replay":
        return _cmd_replay(args)
    return _cmd_matrix(args)


__all__ = [
    "add_conformance_parser",
    "dispatch",
    "parse_faults",
    "parse_fleet",
    "spec_from_args",
]
