"""Scenario specifications: one JSON-serializable description per hunt.

A :class:`ScenarioSpec` fixes everything about a conformance run *except*
the schedule: the source world and view suite, the workload, the
view-manager fleet, the merge algorithm and submission policy, and an
optional fault plan.  The :class:`~repro.conformance.explorer.Explorer`
then drives many seeded runs of the same spec, each with a differently
seeded scheduler, searching for an interleaving that violates the
configuration's advertised consistency level.

Serialization is part of the contract: a spec round-trips through JSON so
a found-and-shrunk violation can be stored as a standalone reproducer
file and re-executed later with ``python -m repro conformance replay``.
"""

from __future__ import annotations

import dataclasses
import json
import zlib
from dataclasses import dataclass, field
from typing import Callable, Mapping

from repro.cache.store import CacheConfig
from repro.errors import ReproError
from repro.faults.plan import CrashSpec, FaultPlan
from repro.relational.expressions import ViewDefinition
from repro.relational.parser import parse_view
from repro.sim.scheduler import (
    DelayInjectingScheduler,
    Perturbation,
    RandomScheduler,
    Scheduler,
)
from repro.sources.world import SourceWorld
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import (
    bank_views,
    bank_world,
    paper_views_example1,
    paper_views_example2,
    paper_views_example3,
    paper_world,
)

SCHEDULER_KINDS = ("fifo", "random", "delay")


def _paper_views_wide() -> list[ViewDefinition]:
    """A four-view suite over the paper's relations (fleet-size sweeps)."""
    return [
        parse_view("V1 = SELECT * FROM R JOIN S"),
        parse_view("V2 = SELECT * FROM S JOIN T JOIN Q"),
        parse_view("V3 = SELECT * FROM Q"),
        parse_view("V4 = SELECT * FROM T JOIN Q"),
    ]


#: schema registry: name -> (world factory, view-suite factory)
SCENARIO_SCHEMAS: dict[
    str, tuple[Callable[[], SourceWorld], Callable[[], list[ViewDefinition]]]
] = {
    "paper": (paper_world, paper_views_example2),
    "paper-ex1": (paper_world, paper_views_example1),
    "paper-ex3": (paper_world, paper_views_example3),
    "paper-wide": (paper_world, _paper_views_wide),
    "bank": (lambda: bank_world(customers=6), bank_views),
}


def fault_plan_to_dict(plan: FaultPlan) -> dict:
    """A JSON-ready rendering of a :class:`FaultPlan`."""
    return {
        "seed": plan.seed,
        "drop_rate": plan.drop_rate,
        "duplicate_rate": plan.duplicate_rate,
        "delay_spike_rate": plan.delay_spike_rate,
        "delay_spike": plan.delay_spike,
        "crashes": [
            {"process": c.process, "at": c.at, "restart_after": c.restart_after}
            for c in plan.crashes
        ],
        "reliable": plan.reliable,
        "retransmit_timeout": plan.retransmit_timeout,
        "backoff_factor": plan.backoff_factor,
        "timeout_cap": plan.timeout_cap,
    }


def fault_plan_from_dict(data: dict) -> FaultPlan:
    """Inverse of :func:`fault_plan_to_dict`."""
    return FaultPlan(
        seed=int(data.get("seed", 0)),
        drop_rate=float(data.get("drop_rate", 0.0)),
        duplicate_rate=float(data.get("duplicate_rate", 0.0)),
        delay_spike_rate=float(data.get("delay_spike_rate", 0.0)),
        delay_spike=float(data.get("delay_spike", 10.0)),
        crashes=tuple(
            CrashSpec(
                process=c["process"],
                at=float(c["at"]),
                restart_after=float(c.get("restart_after", 5.0)),
            )
            for c in data.get("crashes", ())
        ),
        reliable=bool(data.get("reliable", True)),
        retransmit_timeout=float(data.get("retransmit_timeout", 4.0)),
        backoff_factor=float(data.get("backoff_factor", 2.0)),
        timeout_cap=float(data.get("timeout_cap", 32.0)),
    )


@dataclass
class ScenarioSpec:
    """Everything about a conformance run except the schedule seed.

    ``views`` restricts the schema's view suite to its first N views
    (0 = all), which is how the property suite sweeps fleet sizes.
    ``scheduler`` picks the exploration mode (``fifo`` | ``random`` |
    ``delay``); the per-run seed is supplied by the explorer, not stored
    here.  With a ``fault_plan``, each run derives a distinct fault seed
    from the run seed so faults are explored alongside interleavings.
    """

    schema: str = "paper"
    views: int = 0
    updates: int = 20
    rate: float = 2.0
    mix: tuple[float, float, float] = (0.6, 0.2, 0.2)
    arrivals: str = "poisson"
    multi_update_fraction: float = 0.0
    workload_seed: int = 0
    manager_kind: str = "complete"
    manager_kinds: Mapping[str, str] = field(default_factory=dict)
    manager_mode: str = "cached"
    merge_algorithm: str = "auto"
    merge_groups: int = 1
    merge_router: str = "coalesce"
    submission_policy: str = "dependency-sequenced"
    block_size: int = 4
    refresh_period: float = 15.0
    use_selection_filtering: bool = False
    warehouse_executors: int = 1
    fault_plan: FaultPlan | None = None
    # Content-addressed materialization cache (repro.cache): each run
    # gets a private temp store, so these knobs explore cache-backed
    # crash recovery rather than cross-run warm restarts.
    # ``cache_stale_refs`` is the negative branch — checkpoint refs lag
    # one publish, so a restart restores a valid-but-stale artifact.
    cache: bool = False
    cache_stale_refs: bool = False
    scheduler: str = "delay"
    delay_rate: float = 0.15
    max_delay: float = 3.0
    reorder_rate: float = 0.15
    # Explore the workload alongside the schedule: each run derives its
    # update stream from the run seed (replay stays exact because the
    # reproducer stores that seed).  Set False to pin the stream and
    # search interleavings only.
    vary_workload: bool = True

    def __post_init__(self) -> None:
        if self.schema not in SCENARIO_SCHEMAS:
            raise ReproError(
                f"unknown scenario schema {self.schema!r} "
                f"(have: {sorted(SCENARIO_SCHEMAS)})"
            )
        if self.scheduler not in SCHEDULER_KINDS:
            raise ReproError(
                f"unknown scheduler kind {self.scheduler!r} "
                f"(have: {SCHEDULER_KINDS})"
            )
        if self.views < 0:
            raise ReproError(f"views must be >= 0, got {self.views}")
        self.manager_kinds = dict(self.manager_kinds)
        self.mix = tuple(self.mix)  # type: ignore[assignment]

    # -- materialization ----------------------------------------------------
    def materialize(self) -> tuple[SourceWorld, list[ViewDefinition]]:
        """A fresh world and the (possibly truncated) view suite."""
        world_factory, views_factory = SCENARIO_SCHEMAS[self.schema]
        world = world_factory()
        views = views_factory()
        if self.views:
            if self.views > len(views):
                raise ReproError(
                    f"schema {self.schema!r} has {len(views)} views, "
                    f"cannot take {self.views}"
                )
            views = views[: self.views]
        return world, views

    def workload(self, run_seed: int = 0) -> WorkloadSpec:
        seed = self.workload_seed
        if self.vary_workload:
            seed = zlib.crc32(f"{self.workload_seed}:{run_seed}".encode("utf-8"))
        return WorkloadSpec(
            updates=self.updates,
            rate=self.rate,
            seed=seed,
            mix=self.mix,
            arrivals=self.arrivals,
            multi_update_fraction=self.multi_update_fraction,
        )

    def fault_plan_for(self, run_seed: int) -> FaultPlan | None:
        """The run's fault plan: same shape, run-seed-derived fault streams."""
        if self.fault_plan is None:
            return None
        derived = zlib.crc32(f"{self.fault_plan.seed}:{run_seed}".encode("utf-8"))
        return dataclasses.replace(self.fault_plan, seed=derived)

    def make_scheduler(self, run_seed: int) -> Scheduler:
        """A fresh scheduler of the configured kind, seeded for this run."""
        if self.scheduler == "fifo":
            return Scheduler()
        if self.scheduler == "random":
            return RandomScheduler(seed=run_seed)
        return DelayInjectingScheduler(
            seed=run_seed,
            delay_rate=self.delay_rate,
            max_delay=self.max_delay,
            reorder_rate=self.reorder_rate,
        )

    def config(self, run_seed: int, scheduler: Scheduler | None) -> SystemConfig:
        return SystemConfig(
            manager_kind=self.manager_kind,
            manager_kinds=dict(self.manager_kinds),
            manager_mode=self.manager_mode,
            merge_algorithm=self.merge_algorithm,
            merge_groups=self.merge_groups,
            merge_router=self.merge_router,
            submission_policy=self.submission_policy,
            block_size=self.block_size,
            refresh_period=self.refresh_period,
            use_selection_filtering=self.use_selection_filtering,
            warehouse_executors=self.warehouse_executors,
            fault_plan=self.fault_plan_for(run_seed),
            cache=(
                CacheConfig(stale_refs=self.cache_stale_refs)
                if self.cache
                else None
            ),
            scheduler=scheduler,
            seed=run_seed,
        )

    def build(
        self, run_seed: int = 0, scheduler: Scheduler | None = None
    ) -> WarehouseSystem:
        """A fully wired system with the workload posted, ready to run.

        ``scheduler`` overrides the spec's own kind — the explorer passes
        a :meth:`DelayInjectingScheduler.replay` instance when re-running
        a shrunk perturbation list.
        """
        world, views = self.materialize()
        if scheduler is None:
            scheduler = self.make_scheduler(run_seed)
        system = WarehouseSystem(world, views, self.config(run_seed, scheduler))
        post_stream(
            system,
            UpdateStreamGenerator(world, self.workload(run_seed)).transactions(),
        )
        return system

    # -- serialization ------------------------------------------------------
    def to_dict(self) -> dict:
        data = {
            "schema": self.schema,
            "views": self.views,
            "updates": self.updates,
            "rate": self.rate,
            "mix": list(self.mix),
            "arrivals": self.arrivals,
            "multi_update_fraction": self.multi_update_fraction,
            "workload_seed": self.workload_seed,
            "manager_kind": self.manager_kind,
            "manager_kinds": dict(self.manager_kinds),
            "manager_mode": self.manager_mode,
            "merge_algorithm": self.merge_algorithm,
            "merge_groups": self.merge_groups,
            "merge_router": self.merge_router,
            "submission_policy": self.submission_policy,
            "block_size": self.block_size,
            "refresh_period": self.refresh_period,
            "use_selection_filtering": self.use_selection_filtering,
            "warehouse_executors": self.warehouse_executors,
            "fault_plan": (
                fault_plan_to_dict(self.fault_plan) if self.fault_plan else None
            ),
            "cache": self.cache,
            "cache_stale_refs": self.cache_stale_refs,
            "scheduler": self.scheduler,
            "delay_rate": self.delay_rate,
            "max_delay": self.max_delay,
            "reorder_rate": self.reorder_rate,
            "vary_workload": self.vary_workload,
        }
        return data

    @classmethod
    def from_dict(cls, data: dict) -> "ScenarioSpec":
        data = dict(data)
        fault = data.get("fault_plan")
        data["fault_plan"] = fault_plan_from_dict(fault) if fault else None
        if "mix" in data:
            data["mix"] = tuple(data["mix"])
        known = {f.name for f in dataclasses.fields(cls)}
        unknown = set(data) - known
        if unknown:
            raise ReproError(f"unknown scenario fields {sorted(unknown)}")
        return cls(**data)

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_json(cls, text: str) -> "ScenarioSpec":
        return cls.from_dict(json.loads(text))

    def describe(self) -> str:
        fleet = (
            ",".join(f"{v}={k}" for v, k in sorted(self.manager_kinds.items()))
            or self.manager_kind
        )
        parts = [
            f"schema={self.schema}",
            f"fleet={fleet}",
            f"merge={self.merge_algorithm}",
            *(
                [f"shards={self.merge_groups}({self.merge_router})"]
                if self.merge_groups > 1
                else []
            ),
            f"policy={self.submission_policy}",
            f"updates={self.updates}@{self.rate:g}",
            f"scheduler={self.scheduler}",
        ]
        if self.fault_plan is not None:
            parts.append(self.fault_plan.describe())
        if self.cache:
            parts.append(
                "cache=stale-refs" if self.cache_stale_refs else "cache=on"
            )
        return " ".join(parts)


__all__ = [
    "SCENARIO_SCHEMAS",
    "SCHEDULER_KINDS",
    "ScenarioSpec",
    "fault_plan_from_dict",
    "fault_plan_to_dict",
    "Perturbation",
]
