"""The explorer: hunt a scenario's seed space for guarantee violations,
then shrink what it finds to a minimal, replayable reproducer.

One *run* = build the scenario at a run seed (which seeds the scheduler,
the fault streams, and — unless pinned — the update workload), execute it
to completion, and ask the oracle whether the advertised consistency
level held.  A run that raises is itself a finding (``scope="run"``,
``level="execution"``): a conformant configuration must not crash, and
the naive fleet's double-apply crashes are exactly the §2 anomalies the
engine exists to expose.

Findings made under the :class:`DelayInjectingScheduler` carry the full
list of scheduling perturbations; :meth:`Explorer.shrink` delta-debugs
that list down to a 1-minimal reproducer and packages it — scenario,
seed, perturbations, violation, and the violating run's trace digest —
as a JSON file that ``python -m repro conformance replay`` re-executes
bit-for-bit.
"""

from __future__ import annotations

import json
import time as _time
from dataclasses import dataclass
from pathlib import Path

from repro.conformance.oracle import Violation, check_run, check_run_at
from repro.conformance.scenario import ScenarioSpec
from repro.conformance.shrink import ddmin
from repro.errors import ReproError
from repro.sim.scheduler import DelayInjectingScheduler, Perturbation

REPRODUCER_FORMAT = "mvc-conformance-repro/1"


@dataclass
class RunResult:
    """One executed run: what broke (if anything) and how to re-run it."""

    seed: int
    violations: list[Violation]
    perturbations: list[Perturbation]
    trace_digest: str


@dataclass
class Finding(RunResult):
    """A violating run (``violations`` is non-empty)."""

    def signature(self) -> frozenset[tuple[str, str]]:
        """The ``(scope, level)`` pairs that failed — shrinking preserves
        at least one of these, so the minimal run shows the *same kind*
        of violation, not an unrelated one."""
        return frozenset((v.scope, v.level) for v in self.violations)


@dataclass
class Reproducer:
    """A standalone, serialized witness of one violation.

    ``perturbations`` is the (shrunk) explicit schedule when the finding
    came from a delay-injecting scheduler; ``None`` means "re-run the
    scenario's own scheduler at ``seed``" (fifo/random findings, which
    have no addressable decisions to shrink).
    """

    scenario: dict
    seed: int
    violation: dict
    trace_sha256: str
    perturbations: list[Perturbation] | None = None
    # Oracle mode the finding was made under: None = the advertised
    # guarantee, or an explicit MVC level (negative-oracle hunts).
    level: str | None = None
    format: str = REPRODUCER_FORMAT

    def spec(self) -> ScenarioSpec:
        return ScenarioSpec.from_dict(self.scenario)

    def to_dict(self) -> dict:
        return {
            "format": self.format,
            "scenario": self.scenario,
            "seed": self.seed,
            "perturbations": (
                None
                if self.perturbations is None
                else [p.to_dict() for p in self.perturbations]
            ),
            "violation": self.violation,
            "trace_sha256": self.trace_sha256,
            "level": self.level,
        }

    def to_json(self) -> str:
        return json.dumps(self.to_dict(), sort_keys=True, indent=2)

    @classmethod
    def from_dict(cls, data: dict) -> "Reproducer":
        if data.get("format") != REPRODUCER_FORMAT:
            raise ReproError(
                f"unknown reproducer format {data.get('format')!r} "
                f"(expected {REPRODUCER_FORMAT})"
            )
        perts = data.get("perturbations")
        return cls(
            scenario=data["scenario"],
            seed=int(data["seed"]),
            perturbations=(
                None
                if perts is None
                else [Perturbation.from_dict(p) for p in perts]
            ),
            violation=dict(data["violation"]),
            trace_sha256=data["trace_sha256"],
            level=data.get("level"),
        )

    @classmethod
    def from_json(cls, text: str) -> "Reproducer":
        return cls.from_dict(json.loads(text))

    def save(self, path: str | Path) -> Path:
        path = Path(path)
        path.write_text(self.to_json() + "\n", encoding="utf-8")
        return path

    @classmethod
    def load(cls, path: str | Path) -> "Reproducer":
        return cls.from_json(Path(path).read_text(encoding="utf-8"))


@dataclass
class ReplayResult:
    """Outcome of re-executing a reproducer."""

    reproduced: bool  # same (scope, level) violation observed
    digest_matches: bool  # trace identical to the recorded run
    violations: list[Violation]
    trace_digest: str


class Explorer:
    """Drive seeded runs of a :class:`ScenarioSpec` and collect findings.

    ``level`` overrides the oracle: instead of checking the advertised
    guarantee, every run is checked against this explicit MVC level.
    That is the negative-oracle mode — e.g. "show me a naive fleet run
    that is not even strongly consistent".
    """

    def __init__(
        self,
        spec: ScenarioSpec,
        seeds: int = 100,
        time_budget: float | None = None,
        stop_on_first: bool = True,
        level: str | None = None,
    ) -> None:
        if seeds < 1:
            raise ReproError(f"need at least one seed, got {seeds}")
        self.spec = spec
        self.seeds = seeds
        self.time_budget = time_budget
        self.stop_on_first = stop_on_first
        self.level = level
        self.runs_executed = 0

    # -- single runs ---------------------------------------------------------
    def execute(self, seed: int, scheduler=None) -> RunResult:
        """Build + run + check one seed; exceptions become violations."""
        self.runs_executed += 1
        system = self.spec.build(run_seed=seed, scheduler=scheduler)
        used = system.sim.scheduler
        try:
            try:
                system.run()
                if self.level is None:
                    violations = check_run(system)
                else:
                    violations = check_run_at(system, self.level)
            except Exception as error:  # noqa: BLE001 — any crash is a finding
                violations = [
                    Violation(
                        "run", "execution", f"{type(error).__name__}: {error}"
                    )
                ]
            perturbations = list(getattr(used, "decisions", ()))
            return RunResult(
                seed=seed,
                violations=violations,
                perturbations=perturbations,
                trace_digest=system.sim.trace.digest(),
            )
        finally:
            # Cache-enabled scenarios own a temp artifact store; every
            # explored seed must release it (and any runtime resources).
            system.close()

    # -- exploration ---------------------------------------------------------
    def explore(self) -> list[Finding]:
        """Run seeds ``0 .. seeds-1`` (within the time budget) and return
        every violating run found (just the first, by default)."""
        findings: list[Finding] = []
        deadline = (
            None
            if self.time_budget is None
            else _time.monotonic() + self.time_budget
        )
        for seed in range(self.seeds):
            if deadline is not None and _time.monotonic() >= deadline:
                break
            result = self.execute(seed)
            if result.violations:
                findings.append(
                    Finding(
                        seed=result.seed,
                        violations=result.violations,
                        perturbations=result.perturbations,
                        trace_digest=result.trace_digest,
                    )
                )
                if self.stop_on_first:
                    break
        return findings

    # -- shrinking -----------------------------------------------------------
    def shrink(self, finding: Finding, max_runs: int = 256) -> Reproducer:
        """Delta-debug a finding's perturbations to a minimal reproducer.

        Findings from fifo/random schedules have no addressable decisions
        and are packaged as seed-only reproducers unshrunk.
        """
        signature = finding.signature()

        def matches(violations: list[Violation]) -> bool:
            return any((v.scope, v.level) in signature for v in violations)

        if not matches(finding.violations):  # pragma: no cover - paranoia
            raise ReproError("finding does not match its own signature")

        if self.spec.scheduler == "delay":

            def still_fails(perturbations: list[Perturbation]) -> bool:
                scheduler = DelayInjectingScheduler.replay(perturbations)
                return matches(
                    self.execute(finding.seed, scheduler=scheduler).violations
                )

            minimal, _runs = ddmin(
                finding.perturbations, still_fails, max_runs=max_runs
            )
            final = self.execute(
                finding.seed, scheduler=DelayInjectingScheduler.replay(minimal)
            )
            kept = [v for v in final.violations if (v.scope, v.level) in signature]
            perturbations: list[Perturbation] | None = minimal
        else:
            final = self.execute(finding.seed)
            kept = [v for v in final.violations if (v.scope, v.level) in signature]
            perturbations = None
        if not kept:  # pragma: no cover - shrinking preserves the signature
            raise ReproError("shrunk run no longer violates; unstable scenario")
        worst = kept[0]
        return Reproducer(
            scenario=self.spec.to_dict(),
            seed=finding.seed,
            perturbations=perturbations,
            violation={
                "scope": worst.scope,
                "level": worst.level,
                "reason": worst.reason,
            },
            trace_sha256=final.trace_digest,
            level=self.level,
        )


def replay(reproducer: Reproducer) -> ReplayResult:
    """Re-execute a reproducer and verify it still shows the violation.

    ``digest_matches`` compares the re-run's trace digest against the
    recorded one — True means the run was reproduced byte-for-byte, not
    merely "some violation happened again".
    """
    spec = reproducer.spec()
    explorer = Explorer(spec, seeds=1, level=reproducer.level)
    scheduler = None
    if reproducer.perturbations is not None:
        scheduler = DelayInjectingScheduler.replay(reproducer.perturbations)
    result = explorer.execute(reproducer.seed, scheduler=scheduler)
    wanted = (reproducer.violation["scope"], reproducer.violation["level"])
    reproduced = any((v.scope, v.level) == wanted for v in result.violations)
    return ReplayResult(
        reproduced=reproduced,
        digest_matches=result.trace_digest == reproducer.trace_sha256,
        violations=result.violations,
        trace_digest=result.trace_digest,
    )


__all__ = [
    "REPRODUCER_FORMAT",
    "Explorer",
    "Finding",
    "ReplayResult",
    "Reproducer",
    "RunResult",
    "replay",
]
