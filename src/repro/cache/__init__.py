"""Content-addressed materialization cache (warm restart).

The paper assumes a crashed view manager or merge process rebuilds its
state by replaying from the sources — the slow path at production scale.
This package closes that gap with a ybd-style content-addressed artifact
store:

* :mod:`repro.cache.keys` — every artifact is keyed by a
  ``blake2b`` digest over *what the state is*: the view definition AST,
  a base-state version vector (per-relation rolling content digests),
  and the plan engine id.  Equal keys mean equal state, across processes
  and across runs.
* :mod:`repro.cache.store` — the on-disk store: atomic
  write-then-rename publication, integrity-verified reads (a flipped
  byte raises, never silently corrupts a restore), named refs
  (git-style ``name -> key`` pointers for "latest checkpoint"), pins,
  and LRU/size-capped garbage collection.
* :mod:`repro.cache.artifacts` — the serialization layer and the
  bindings that hook the store into view managers (seed artifacts +
  per-message crash checkpoints) and merge processes (durable
  :class:`~repro.merge.process.MergeCheckpoint` s).
* :mod:`repro.cache.server` — an in-process :class:`CacheServer` actor
  serving gets/puts over the simulator's channel layer, so merge shards
  and freshly spawned replicas can fetch each other's artifacts without
  a shared filesystem.

Wire it through ``SystemConfig(cache=CacheConfig(...))``; recovery falls
back to the PR-1 replay path on any miss or digest mismatch.  See
``docs/caching.md`` for the key derivation and invalidation rules.
"""

from repro.cache.keys import (
    advance_digest,
    artifact_key,
    canon_bytes,
    relation_digest,
)
from repro.cache.store import ArtifactStore, CacheConfig
from repro.cache.server import CacheServer

__all__ = [
    "ArtifactStore",
    "CacheConfig",
    "CacheServer",
    "advance_digest",
    "artifact_key",
    "canon_bytes",
    "relation_digest",
]
