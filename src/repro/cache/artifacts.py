"""Artifact serialization and the store ↔ process bindings.

This module is the glue between the plain byte store
(:mod:`repro.cache.store`) and the live processes that publish and
restore state:

* :class:`SystemCacheBinding` — one per system: owns the store handle,
  the namespace, the stale-ref fault knob, and a memo of initial
  base-relation digests (every replica of the same filtered relation
  starts from the same digest — computing it once per system keeps cold
  seeding O(base state), not O(views × base state)).
* :class:`ViewCacheBinding` — one per cached-mode view manager.  Tracks
  the manager's **version vector** (one rolling content digest per base
  relation, advanced per applied delta batch), publishes *seed*
  artifacts (view contents + plan auxiliary state, keyed purely by
  definition/engine/initial state — shareable across runs and fleets)
  and *checkpoint* artifacts (full durable manager state after every
  handled message), and restores a crashed manager from the newest
  checkpoint its ref points at.
* :class:`MergeCacheBinding` — publishes each
  :class:`~repro.merge.process.MergeCheckpoint` as an artifact and
  restores from the ref on restart.

Payloads are pickled dicts of *plain data* (value tuples + counts, via
the columnar facade helpers) — never live ``Relation``/``Database``
objects.  Measured on this codebase, unpickling a full object graph is
nearly as slow as recomputing it; shipping value-level counts and
rebuilding cheap wrappers is what makes warm restart actually fast.
"""

from __future__ import annotations

import pickle
from collections import deque
from typing import TYPE_CHECKING, Mapping

from repro.cache.keys import (
    KEY_FORMAT,
    advance_digest,
    artifact_key,
    relation_digest,
)
from repro.cache.store import ArtifactStore, CacheConfig
from repro.errors import CacheIntegrityError, CacheMiss
from repro.relational.columnar import counts_to_rows, layout_of, rows_to_counts
from repro.relational.database import Database
from repro.relational.delta import Delta
from repro.relational.plan import MaintenancePlan, PlanUnsupported
from repro.relational.relation import Relation

if TYPE_CHECKING:  # pragma: no cover
    from repro.merge.process import MergeCheckpoint
    from repro.viewmgr.base import ViewManager

#: payload layout version — bump on any incompatible payload change.
PAYLOAD_FORMAT = 1


def _encode_relation(layout: tuple[str, ...], counts_by_row) -> tuple:
    """(layout, {value-tuple: count}) — plain data, stable to pickle."""
    return (layout, rows_to_counts(layout, dict(counts_by_row)))


def _decode_relation(encoded: tuple, schema) -> Relation:
    layout, counts = encoded
    return Relation.from_counts(counts_to_rows(tuple(layout), counts), schema)


def _decode_delta(encoded: tuple | None) -> Delta | None:
    if encoded is None:
        return None
    layout, counts = encoded
    return Delta(counts_to_rows(tuple(layout), counts))


class SystemCacheBinding:
    """Per-system cache plumbing shared by every view/merge binding."""

    def __init__(self, store: ArtifactStore, config: CacheConfig) -> None:
        self.store = store
        self.config = config
        self.namespace = config.namespace
        self._initial_digests: dict[tuple[str, str], str] = {}

    def initial_digest(
        self, relation: str, filter_repr: str, layout: tuple[str, ...], counts
    ) -> str:
        """Digest of a (possibly filtered) initial base relation, memoized.

        ``counts`` is only consulted on the first call per
        ``(relation, filter_repr)`` — replicas seeded from the same
        initial snapshot through the same filter are identical, so the
        digest is too.
        """
        memo_key = (relation, filter_repr)
        digest = self._initial_digests.get(memo_key)
        if digest is None:
            digest = relation_digest(
                layout, rows_to_counts(layout, dict(counts))
            )
            self._initial_digests[memo_key] = digest
        return digest

    def checkpoints_enabled(self, view: str) -> bool:
        allowed = self.config.checkpoint_views
        return allowed is None or view in allowed

    def for_view(self, view: str) -> "ViewCacheBinding":
        return ViewCacheBinding(self, view)

    def for_merge(self, name: str) -> "MergeCacheBinding":
        return MergeCacheBinding(self, name)


class _RefPublisher:
    """Shared ref-update discipline, including the stale-ref fault.

    With ``stale_refs`` on, every ref update lags one publish behind —
    modelling a checkpoint whose payload landed but whose ref write was
    lost.  The artifact a restart then resolves is *internally valid*
    (digest verifies) but semantically stale; only the consistency
    oracle can catch that, which is exactly what the negative
    conformance rows assert.
    """

    def __init__(self, system: SystemCacheBinding, ref_name: str) -> None:
        self._store = system.store
        self._stale_refs = system.config.stale_refs
        self._ref_name = ref_name
        self._previous_key: str | None = None

    def publish(self, key: str, payload: bytes) -> None:
        self._store.put(key, payload)
        if self._stale_refs:
            if self._previous_key is not None:
                self._store.set_ref(self._ref_name, self._previous_key)
            self._previous_key = key
        else:
            self._store.set_ref(self._ref_name, key)

    def resolve(self) -> bytes | None:
        """Ref → verified payload, or None on dangling/miss/corruption."""
        key = self._store.ref(self._ref_name)
        if key is None:
            return None
        try:
            return self._store.get(key)
        except (CacheMiss, CacheIntegrityError):
            return None


class ViewCacheBinding:
    """Cache hooks for one cached-mode view manager."""

    def __init__(self, system: SystemCacheBinding, view: str) -> None:
        self.system = system
        self.store = system.store
        self.view = view
        self.engine = "columnar"
        self.version_vector: dict[str, str] = {}
        self._layouts: dict[str, tuple[str, ...]] = {}
        self._filters_repr: dict[str, str] = {}
        self._expr_repr = ""
        self._view_layout: tuple[str, ...] = ()
        self._seed_key: str | None = None
        self._seed_payload: dict | None = None
        self._refs = _RefPublisher(
            system, f"{system.namespace}/vm/{view}"
        )
        self.seed_hits = 0
        self.publishes = 0

    # -- seeding -----------------------------------------------------------
    def on_seeded(self, vm: "ViewManager") -> None:
        """Fix the key material and look up a seed artifact.

        Called from :meth:`ViewManager.seed_replica` once the replica is
        built but *before* the maintenance plan compiles, so a seed hit
        can preload the plan's auxiliary state (skipping the expensive
        compile-time evaluation, which dominates cold-start cost).
        """
        self._expr_repr = str(vm.definition.expression)
        self._filters_repr = {
            name: str(predicate)
            for name, predicate in sorted(vm._replica_filters.items())
        }
        replica = vm._replica
        self.version_vector = {}
        self._layouts = {}
        for name in sorted(vm.definition.base_relations()):
            layout = layout_of(vm.base_schemas[name].names)
            self._layouts[name] = layout
            self.version_vector[name] = self.system.initial_digest(
                name,
                self._filters_repr.get(name, ""),
                layout,
                replica.relation(name).counts_view(),
            )
        view_schema = vm.definition.expression.infer_schema(vm.base_schemas)
        self._view_layout = layout_of(view_schema.names)
        self._view_schema = view_schema
        self._seed_key = artifact_key("view-seed", self._key_material())
        self._seed_payload = None
        try:
            payload = pickle.loads(self.store.get(self._seed_key))
            if payload.get("format") == PAYLOAD_FORMAT:
                self._seed_payload = payload
                self.seed_hits += 1
        except (CacheMiss, CacheIntegrityError):
            pass

    def seed_aux(self) -> dict | None:
        """Plan auxiliary state from the seed artifact (None on miss)."""
        if self._seed_payload is None:
            return None
        return self._seed_payload["aux"]

    def seed_contents(self) -> Relation | None:
        """Initial view contents from the seed artifact (None on miss)."""
        if self._seed_payload is None:
            return None
        return _decode_relation(
            self._seed_payload["contents"], self._view_schema
        )

    def publish_seed(self, vm: "ViewManager", contents: Relation) -> None:
        """Publish the cold-start artifact so later runs seed warm."""
        aux = vm._plan.export_aux() if vm._plan is not None else {}
        payload = {
            "format": PAYLOAD_FORMAT,
            "kind": "seed",
            "view": self.view,
            "contents": _encode_relation(
                self._view_layout, contents.counts_view()
            ),
            "aux": aux,
        }
        self.store.put(self._seed_key, pickle.dumps(payload))
        self.publishes += 1

    # -- version vector ----------------------------------------------------
    def advance(self, deltas: Mapping[str, Delta]) -> None:
        """Roll the version vector over one applied (filtered) batch."""
        for name, delta in deltas.items():
            counts = rows_to_counts(self._layouts[name], dict(delta.counts()))
            if counts:  # an empty delta is the identity: digest unchanged
                self.version_vector[name] = advance_digest(
                    self.version_vector[name], counts
                )

    # -- checkpoints -------------------------------------------------------
    def _key_material(self, state: Mapping | None = None) -> dict:
        material = {
            "format": PAYLOAD_FORMAT,
            "view": self.view,
            "expr": self._expr_repr,
            "engine": self.engine,
            "filters": dict(self._filters_repr),
            "vv": dict(self.version_vector),
        }
        if state is not None:
            material["state"] = dict(state)
        return material

    def on_handled(self, vm: "ViewManager") -> None:
        if self.system.checkpoints_enabled(self.view):
            self.publish_checkpoint(vm)

    def publish_checkpoint(self, vm: "ViewManager") -> None:
        """Durably publish the manager's full recoverable state.

        Runs in ``on_handled`` — after the message's effects, *before*
        the channel-level ack (``on_processed``) — so an acked update is
        always covered by some published checkpoint.
        """
        pending = vm._pending_emit
        state_fingerprint = {
            "buffer": tuple(m.update_id for m in vm._buffer),
            "batch": tuple(m.update_id for m in vm._current_batch),
            "pending": tuple(pending[0]) if pending is not None else None,
            "applied": vm._applied_version,
            "sent": vm.action_lists_sent,
        }
        key = artifact_key(
            "view-checkpoint", self._key_material(state_fingerprint)
        )
        replica = vm._replica
        payload = {
            "format": PAYLOAD_FORMAT,
            "kind": "checkpoint",
            "view": self.view,
            "vv": dict(self.version_vector),
            "replica": {
                name: _encode_relation(
                    self._layouts[name],
                    replica.relation(name).counts_view(),
                )
                for name in sorted(self._layouts)
            },
            "aux": vm._plan.export_aux() if vm._plan is not None else {},
            "buffer": tuple(vm._buffer),
            "current_batch": tuple(vm._current_batch),
            "pending_emit": (
                None
                if pending is None
                else (
                    tuple(pending[0]),
                    _encode_relation(
                        self._view_layout, pending[1].counts()
                    ),
                )
            ),
            "computing": vm._computing,
            "applied_version": vm._applied_version,
            "action_lists_sent": vm.action_lists_sent,
            "updates_processed": vm.updates_processed,
            "extra": vm.extra_durable_state(),
        }
        self._refs.publish(key, pickle.dumps(payload))
        self.publishes += 1

    # -- crash/restart -----------------------------------------------------
    def capture_local(self, vm: "ViewManager") -> dict:
        """Stash live state aside at crash time (the replay fallback)."""
        return {
            "replica": vm._replica,
            "plan": vm._plan,
            "buffer": deque(vm._buffer),
            "current_batch": list(vm._current_batch),
            "pending_emit": vm._pending_emit,
            "computing": vm._computing,
            "applied_version": vm._applied_version,
            "action_lists_sent": vm.action_lists_sent,
            "updates_processed": vm.updates_processed,
            "vv": dict(self.version_vector),
            "extra": vm.extra_durable_state(),
        }

    def restore_local(self, vm: "ViewManager", stash: dict) -> None:
        vm._replica = stash["replica"]
        vm._plan = stash["plan"]
        vm._buffer = deque(stash["buffer"])
        vm._current_batch = list(stash["current_batch"])
        vm._pending_emit = stash["pending_emit"]
        vm._computing = stash["computing"]
        vm._applied_version = stash["applied_version"]
        vm.action_lists_sent = stash["action_lists_sent"]
        vm.updates_processed = stash["updates_processed"]
        vm.restore_extra_state(stash["extra"])
        self.version_vector = dict(stash["vv"])

    def try_restore(self, vm: "ViewManager") -> bool:
        """Rebuild the manager from its newest checkpoint artifact.

        Returns False — leaving the manager untouched — on a dangling
        ref, a cache miss, a failed digest verification, or a payload
        format mismatch; the caller then falls back to the replay path.
        """
        raw = self._refs.resolve()
        if raw is None:
            return False
        payload = pickle.loads(raw)
        if (
            payload.get("format") != PAYLOAD_FORMAT
            or payload.get("kind") != "checkpoint"
            or payload.get("view") != self.view
        ):
            return False
        replica = Database()
        for name in sorted(payload["replica"]):
            schema = vm.base_schemas[name]
            relation = replica.create_relation(name, schema)
            decoded = _decode_relation(payload["replica"][name], schema)
            for row, count in decoded.counts():
                relation.insert(row, count)
        vm._replica = replica
        try:
            vm._plan = MaintenancePlan(
                vm.definition.expression,
                replica,
                engine=self.engine,
                preload=payload["aux"],
            )
        except PlanUnsupported:
            vm._plan = None
        vm._buffer = deque(payload["buffer"])
        vm._current_batch = list(payload["current_batch"])
        pending = payload["pending_emit"]
        vm._pending_emit = (
            None
            if pending is None
            else (tuple(pending[0]), _decode_delta(pending[1]))
        )
        vm._computing = payload["computing"]
        vm._applied_version = payload["applied_version"]
        vm.action_lists_sent = payload["action_lists_sent"]
        vm.updates_processed = payload["updates_processed"]
        vm.restore_extra_state(payload["extra"])
        self.version_vector = dict(payload["vv"])
        return True


class MergeCacheBinding:
    """Durable checkpoints for one merge process."""

    def __init__(self, system: SystemCacheBinding, name: str) -> None:
        self.system = system
        self.store = system.store
        self.name = name
        self._refs = _RefPublisher(
            system, f"{system.namespace}/merge/{name}"
        )
        self.publishes = 0

    def publish(self, checkpoint: "MergeCheckpoint") -> str:
        import hashlib

        payload = pickle.dumps(checkpoint)
        key = artifact_key(
            "merge-checkpoint",
            {
                "format": PAYLOAD_FORMAT,
                "merge": self.name,
                "next_txn": checkpoint.next_txn_id,
                "digest": hashlib.blake2b(
                    payload, digest_size=16
                ).hexdigest(),
            },
        )
        self._refs.publish(key, payload)
        self.publishes += 1
        return key

    def try_restore(self) -> "MergeCheckpoint | None":
        raw = self._refs.resolve()
        if raw is None:
            return None
        return pickle.loads(raw)


# -- procs runtime: publish/fetch across the fork boundary ------------------


def encode_child_state(
    view: str,
    expr_repr: str,
    engine: str,
    replica_counts: Mapping[str, tuple],
    aux: Mapping,
) -> tuple[str, bytes]:
    """Key + payload for a compute-server child's shard state.

    ``replica_counts`` maps relation name to an already-encoded
    ``(layout, {value-tuple: count})`` pair (children hold columnar
    state natively).  The key derives from the same material as a view
    checkpoint — definition, engine, and the version vector recomputed
    from the shipped contents — so a parent (or a later run) can verify
    what state the shard had reached.
    """
    vv = {
        name: relation_digest(layout, counts)
        for name, (layout, counts) in sorted(replica_counts.items())
    }
    key = artifact_key(
        "view-child",
        {
            "format": PAYLOAD_FORMAT,
            "view": view,
            "expr": expr_repr,
            "engine": engine,
            "vv": vv,
        },
    )
    payload = pickle.dumps(
        {
            "format": PAYLOAD_FORMAT,
            "kind": "child",
            "view": view,
            "expr": expr_repr,
            "engine": engine,
            "vv": vv,
            "replica": {
                name: (tuple(layout), dict(counts))
                for name, (layout, counts) in replica_counts.items()
            },
            "aux": dict(aux),
        }
    )
    return key, payload


def decode_child_state(payload: bytes) -> dict:
    """Inverse of :func:`encode_child_state` (plain dict, no live objects)."""
    decoded = pickle.loads(payload)
    if decoded.get("format") != PAYLOAD_FORMAT or decoded.get("kind") != "child":
        raise CacheIntegrityError("not a child-state artifact payload")
    return decoded


__all__ = [
    "PAYLOAD_FORMAT",
    "MergeCacheBinding",
    "SystemCacheBinding",
    "ViewCacheBinding",
    "decode_child_state",
    "encode_child_state",
]
