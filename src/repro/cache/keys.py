"""Content-addressed artifact keys.

An artifact key must satisfy two properties the rest of the cache builds
on:

* **stability** — the same logical state produces the same key in every
  process and every run (so a freshly built system finds the artifacts a
  previous one published).  Nothing here may depend on ``hash()``
  (``PYTHONHASHSEED``-randomized), ``id()``, or dict insertion order.
* **sensitivity** — any change to the view definition, the base state,
  or the engine that produced the state changes the key, so a restore
  can never silently adopt state computed for a different world.

The base state enters the key as a **version vector**: one rolling
content digest per base relation.  A relation's digest starts as a
digest of its full contents (:func:`relation_digest`) and advances by
hashing each applied delta into the previous digest
(:func:`advance_digest`) — O(|delta|) per batch instead of O(|relation|),
while remaining transitively content-addressed: two replicas reach the
same digest iff they started from identical contents and applied the
same delta history.
"""

from __future__ import annotations

import hashlib
from typing import Iterable, Mapping

from repro.errors import CacheError

#: bump when the canonical encoding or key material layout changes —
#: old artifacts become unreachable (a miss), never misread.
KEY_FORMAT = 1


def _canon(value: object, out: list[bytes]) -> None:
    if isinstance(value, str):
        out.append(b"s:")
        out.append(value.encode("utf-8"))
    elif isinstance(value, bool):  # before int: bool is an int subclass
        out.append(b"b:1" if value else b"b:0")
    elif isinstance(value, int):
        out.append(b"i:%d" % value)
    elif isinstance(value, float):
        out.append(b"f:")
        out.append(repr(value).encode("ascii"))
    elif isinstance(value, bytes):
        out.append(b"y:")
        out.append(value)
    elif value is None:
        out.append(b"n")
    elif isinstance(value, (tuple, list)):
        out.append(b"(")
        for item in value:
            _canon(item, out)
            out.append(b",")
        out.append(b")")
    elif isinstance(value, (dict, Mapping)):
        out.append(b"{")
        for key in sorted(value, key=repr):
            _canon(key, out)
            out.append(b"=")
            _canon(value[key], out)
            out.append(b";")
        out.append(b"}")
    else:
        raise CacheError(
            f"cannot canonically encode {type(value).__name__} for a cache key"
        )


def canon_bytes(value: object) -> bytes:
    """A deterministic, type-tagged byte encoding of plain data.

    Supports the value shapes key material is built from — strings,
    ints, floats, bytes, None, tuples/lists and mappings (encoded in
    sorted-key order).  Raises :class:`~repro.errors.CacheError` for
    anything else rather than falling back to ``repr`` of an arbitrary
    object (whose address could leak into the key).
    """
    out: list[bytes] = []
    _canon(value, out)
    return b"".join(out)


def relation_digest(
    layout: Iterable[str], counts: Mapping[tuple, int]
) -> str:
    """Digest a relation's full contents (value tuples with counts)."""
    h = hashlib.blake2b(digest_size=16)
    h.update(canon_bytes(tuple(layout)))
    for values, count in sorted(counts.items(), key=lambda kv: repr(kv[0])):
        _update_counted(h, values, count)
    return h.hexdigest()


def advance_digest(
    previous: str, delta_counts: Mapping[tuple, int]
) -> str:
    """Roll a relation digest forward over one applied (signed) delta."""
    h = hashlib.blake2b(digest_size=16)
    h.update(previous.encode("ascii"))
    for values, count in sorted(
        delta_counts.items(), key=lambda kv: repr(kv[0])
    ):
        _update_counted(h, values, count)
    return h.hexdigest()


def _update_counted(h, values: tuple, count: int) -> None:
    h.update(canon_bytes(values))
    h.update(b"#%d;" % count)


def artifact_key(kind: str, material: Mapping[str, object]) -> str:
    """The store key for one artifact: ``blake2b(kind, material)``.

    ``kind`` namespaces the key space (``"view-seed"``,
    ``"view-checkpoint"``, ``"merge-checkpoint"``, ...); ``material`` is
    a mapping of plain data — for view state that is the definition AST
    rendering, the engine id and the version vector, per the scheme
    ``blake2b(view definition AST, base-state version vector, engine
    id)``.
    """
    h = hashlib.blake2b(digest_size=20)
    h.update(b"repro-artifact-key:%d:" % KEY_FORMAT)
    h.update(kind.encode("utf-8"))
    h.update(b"\x00")
    h.update(canon_bytes(material))
    return h.hexdigest()


__all__ = [
    "KEY_FORMAT",
    "advance_digest",
    "artifact_key",
    "canon_bytes",
    "relation_digest",
]
