"""The on-disk content-addressed artifact store.

Layout (all paths under one ``root`` directory)::

    objects/<k[:2]>/<key>   one file per artifact: a one-line header
                            carrying the payload's blake2b digest and
                            length, then the raw payload bytes
    refs/<quoted-name>      named pointers (git-style): file content is
                            the key the name currently resolves to
    pins/<key>              pin markers: GC never evicts a pinned key
    tmp/                    staging area for atomic write-then-rename

Durability discipline (ybd/kbas style):

* **put** writes header+payload to a temp file and ``os.replace`` s it
  into place — readers never observe a half-written artifact, and
  concurrent writers of the same key race benignly (last rename wins,
  both wrote identical content for a content-addressed key).
* **get** re-hashes the payload and compares it to the stored digest; a
  mismatch raises :class:`~repro.errors.CacheIntegrityError` so a
  corrupted artifact can never be restored from — callers fall back to
  replay.
* **gc** evicts least-recently-used artifacts (``get`` touches mtime)
  until the store fits the configured byte/count caps, skipping pinned
  keys.  Refs may dangle after an eviction; a dangling ref behaves
  exactly like a miss.

The store is safe to share between threads (one lock around compound
operations) and between processes on one filesystem (atomicity comes
from ``os.replace``; pins are marker files, visible across processes).
"""

from __future__ import annotations

import hashlib
import os
import tempfile
import threading
import urllib.parse
from dataclasses import dataclass
from pathlib import Path

from repro.errors import CacheError, CacheIntegrityError, CacheMiss

_MAGIC = b"repro-artifact"
_VERSION = 1


@dataclass(frozen=True)
class CacheConfig:
    """The ``SystemConfig(cache=...)`` knob: where and how to cache.

    ``root=None`` gives the system a private temporary store, removed by
    :meth:`~repro.system.builder.WarehouseSystem.close` — set an explicit
    path to share artifacts across systems (warm restart).
    ``checkpoint_views`` restricts per-message crash checkpointing to the
    named views (``None`` = every cached-mode view); seed artifacts are
    always published.  ``server`` additionally wires an in-process
    :class:`~repro.cache.server.CacheServer` actor into the system.
    ``stale_refs`` is a fault-injection knob for the conformance suite:
    ref updates lag one publish behind, modelling a lost ref write — the
    artifact a restart then finds is *valid but stale*, which the oracle
    must catch.
    """

    root: str | None = None
    max_bytes: int | None = None
    max_artifacts: int | None = None
    namespace: str = "default"
    server: bool = True
    checkpoint_views: tuple[str, ...] | None = None
    stale_refs: bool = False

    def __post_init__(self) -> None:
        if self.max_bytes is not None and self.max_bytes <= 0:
            raise CacheError(f"max_bytes must be > 0, got {self.max_bytes}")
        if self.max_artifacts is not None and self.max_artifacts <= 0:
            raise CacheError(
                f"max_artifacts must be > 0, got {self.max_artifacts}"
            )
        if not self.namespace:
            raise CacheError("namespace must be non-empty")
        if self.checkpoint_views is not None:
            object.__setattr__(
                self, "checkpoint_views", tuple(self.checkpoint_views)
            )


def _payload_digest(payload: bytes) -> str:
    return hashlib.blake2b(payload, digest_size=16).hexdigest()


class ArtifactStore:
    """A content-addressed key → payload store with refs, pins and GC."""

    def __init__(
        self,
        root: str | os.PathLike,
        max_bytes: int | None = None,
        max_artifacts: int | None = None,
    ) -> None:
        self.root = Path(root)
        self.max_bytes = max_bytes
        self.max_artifacts = max_artifacts
        self._objects = self.root / "objects"
        self._refs = self.root / "refs"
        self._pins = self.root / "pins"
        self._tmp = self.root / "tmp"
        for directory in (self._objects, self._refs, self._pins, self._tmp):
            directory.mkdir(parents=True, exist_ok=True)
        self._lock = threading.Lock()
        self.puts = 0
        self.hits = 0
        self.misses = 0
        self.integrity_failures = 0
        self.evictions = 0
        self._registry = None
        self._registry_labels: dict[str, str] = {}

    def bind_registry(self, registry, **labels) -> None:
        """Mirror the stat counters into a :class:`MetricsRegistry`.

        The attribute counters stay the source of truth (``stats()`` and
        ``repro cache stats`` read them); binding just makes every
        increment also bump ``cache_store_<stat>`` in ``registry``, so
        exporters report the same numbers.  Existing totals are carried
        over so a late bind never under-reports.
        """
        self._registry = registry
        self._registry_labels = labels
        for stat in ("puts", "hits", "misses", "integrity_failures",
                     "evictions"):
            counter = registry.counter(f"cache_store_{stat}", **labels)
            behind = getattr(self, stat) - counter.value
            if behind > 0:
                counter.inc(behind)

    def _mirror(self, stat: str, amount: int = 1) -> None:
        if self._registry is not None:
            self._registry.counter(
                f"cache_store_{stat}", **self._registry_labels
            ).inc(amount)

    # -- object paths -------------------------------------------------------
    def _object_path(self, key: str) -> Path:
        if not key or "/" in key or key.startswith("."):
            raise CacheError(f"malformed artifact key {key!r}")
        return self._objects / key[:2] / key

    def _atomic_write(self, path: Path, data: bytes) -> None:
        path.parent.mkdir(parents=True, exist_ok=True)
        fd, tmp_name = tempfile.mkstemp(dir=self._tmp, prefix="put-")
        try:
            with os.fdopen(fd, "wb") as handle:
                handle.write(data)
            os.replace(tmp_name, path)
        except BaseException:
            try:
                os.unlink(tmp_name)
            except OSError:
                pass
            raise

    # -- artifacts ----------------------------------------------------------
    def put(self, key: str, payload: bytes, pin: bool = False) -> str:
        """Publish ``payload`` under ``key`` (atomic write-then-rename)."""
        if not isinstance(payload, bytes):
            raise CacheError(
                f"payload must be bytes, got {type(payload).__name__}"
            )
        header = b"%s %d %s %d\n" % (
            _MAGIC,
            _VERSION,
            _payload_digest(payload).encode("ascii"),
            len(payload),
        )
        if pin:
            self.pin(key)
        self._atomic_write(self._object_path(key), header + payload)
        with self._lock:
            self.puts += 1
        self._mirror("puts")
        return key

    def get(self, key: str) -> bytes:
        """Integrity-verified read: miss and corruption both raise."""
        path = self._object_path(key)
        try:
            raw = path.read_bytes()
        except FileNotFoundError:
            with self._lock:
                self.misses += 1
            self._mirror("misses")
            raise CacheMiss(f"no artifact {key!r} in {self.root}") from None
        newline = raw.find(b"\n")
        header = raw[:newline].split(b" ") if newline >= 0 else []
        payload = raw[newline + 1 :]
        ok = (
            len(header) == 4
            and header[0] == _MAGIC
            and header[1] == b"%d" % _VERSION
            and header[3] == b"%d" % len(payload)
            and header[2].decode("ascii", "replace")
            == _payload_digest(payload)
        )
        if not ok:
            with self._lock:
                self.integrity_failures += 1
            self._mirror("integrity_failures")
            raise CacheIntegrityError(
                f"artifact {key!r} failed digest verification "
                f"(corrupt or truncated)"
            )
        try:
            os.utime(path)  # LRU recency for gc()
        except OSError:
            pass
        with self._lock:
            self.hits += 1
        self._mirror("hits")
        return payload

    def has(self, key: str) -> bool:
        return self._object_path(key).exists()

    def keys(self) -> list[str]:
        return sorted(
            p.name for p in self._objects.glob("*/*") if p.is_file()
        )

    # -- refs ---------------------------------------------------------------
    def _ref_path(self, name: str) -> Path:
        return self._refs / urllib.parse.quote(name, safe="")

    def set_ref(self, name: str, key: str) -> None:
        """Point ``name`` at ``key`` (atomic, last writer wins)."""
        self._object_path(key)  # validate the key shape
        self._atomic_write(self._ref_path(name), key.encode("ascii"))

    def ref(self, name: str) -> str | None:
        try:
            return self._ref_path(name).read_text("ascii").strip() or None
        except FileNotFoundError:
            return None

    def refs(self) -> dict[str, str]:
        out: dict[str, str] = {}
        for path in sorted(self._refs.iterdir()):
            if path.is_file():
                name = urllib.parse.unquote(path.name)
                out[name] = path.read_text("ascii").strip()
        return out

    # -- pins ---------------------------------------------------------------
    def pin(self, key: str) -> None:
        """Protect ``key`` from GC (e.g. while a restore is in flight)."""
        self._object_path(key)  # validate
        (self._pins / key).touch()

    def unpin(self, key: str) -> None:
        try:
            (self._pins / key).unlink()
        except FileNotFoundError:
            pass

    def pinned(self) -> set[str]:
        return {p.name for p in self._pins.iterdir() if p.is_file()}

    # -- gc -----------------------------------------------------------------
    def gc(
        self,
        max_bytes: int | None = None,
        max_artifacts: int | None = None,
    ) -> dict[str, int]:
        """Evict least-recently-used artifacts down to the caps.

        Explicit arguments override the store's configured caps; with no
        cap at all this is a no-op.  Pinned keys are never evicted, even
        if that leaves the store above its caps.
        """
        max_bytes = max_bytes if max_bytes is not None else self.max_bytes
        max_artifacts = (
            max_artifacts if max_artifacts is not None else self.max_artifacts
        )
        with self._lock:
            entries = []  # (mtime, size, key, path)
            for path in self._objects.glob("*/*"):
                try:
                    stat = path.stat()
                except FileNotFoundError:
                    continue  # concurrently evicted
                entries.append((stat.st_mtime, stat.st_size, path.name, path))
            entries.sort()
            pinned = self.pinned()
            total_bytes = sum(size for _, size, _, _ in entries)
            total_count = len(entries)
            evicted = 0
            freed = 0
            for mtime, size, key, path in entries:
                over_bytes = max_bytes is not None and total_bytes > max_bytes
                over_count = (
                    max_artifacts is not None and total_count > max_artifacts
                )
                if not (over_bytes or over_count):
                    break
                if key in pinned:
                    continue
                try:
                    path.unlink()
                except FileNotFoundError:
                    continue
                total_bytes -= size
                total_count -= 1
                evicted += 1
                freed += size
            self.evictions += evicted
            if evicted:
                self._mirror("evictions", evicted)
            return {
                "evicted": evicted,
                "freed_bytes": freed,
                "artifacts": total_count,
                "bytes": total_bytes,
            }

    # -- inspection ---------------------------------------------------------
    def stats(self) -> dict[str, int]:
        sizes = [
            p.stat().st_size
            for p in self._objects.glob("*/*")
            if p.is_file()
        ]
        return {
            "artifacts": len(sizes),
            "bytes": sum(sizes),
            "refs": len(self.refs()),
            "pinned": len(self.pinned()),
            "puts": self.puts,
            "hits": self.hits,
            "misses": self.misses,
            "integrity_failures": self.integrity_failures,
            "evictions": self.evictions,
        }

    def __repr__(self) -> str:
        return f"ArtifactStore({str(self.root)!r})"


__all__ = ["ArtifactStore", "CacheConfig"]
