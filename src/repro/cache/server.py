"""The in-process cache server actor.

Restores on the local node read the artifact store synchronously — the
store is just a directory.  But a distributed fleet (merge shards, a
freshly spawned replica on another node) has no shared filesystem; what
it has is the channel layer.  :class:`CacheServer` is a
:class:`~repro.sim.process.Process` that fronts one
:class:`~repro.cache.store.ArtifactStore` with a tiny request/response
protocol, so any connected process can fetch or publish artifacts over
ordinary (possibly faulty, possibly reliable) channels:

========================  ==============================================
message                   reply
========================  ==============================================
:class:`ArtifactRequest`  :class:`ArtifactResponse` (payload or miss)
:class:`ArtifactPublish`  none (fire-and-forget put, optional ref)
:class:`CacheStatsQuery`  :class:`CacheStatsResponse`
========================  ==============================================

The server is deliberately dumb: it never inspects payloads, and every
read goes through the store's verified ``get`` — a corrupted artifact
comes back as a miss (``payload=None, error="integrity"``), so remote
restorers inherit the same fall-back-to-replay discipline as local ones.
"""

from __future__ import annotations

from dataclasses import dataclass

from repro.cache.store import ArtifactStore
from repro.errors import CacheError, CacheIntegrityError, CacheMiss
from repro.sim.process import Process


@dataclass(frozen=True, slots=True)
class ArtifactRequest:
    """Fetch ``key``; the server answers with an :class:`ArtifactResponse`."""

    request_id: int
    key: str


@dataclass(frozen=True, slots=True)
class ArtifactResponse:
    """``payload`` is None on a miss; ``error`` says why ("miss"/"integrity")."""

    request_id: int
    key: str
    payload: bytes | None
    error: str | None = None


@dataclass(frozen=True, slots=True)
class ArtifactPublish:
    """Store ``payload`` under ``key``; optionally point ``ref`` at it."""

    key: str
    payload: bytes
    ref: str | None = None


@dataclass(frozen=True, slots=True)
class CacheStatsQuery:
    request_id: int


@dataclass(frozen=True, slots=True)
class CacheStatsResponse:
    request_id: int
    stats: dict


class CacheServer(Process):
    """Serve one artifact store over the simulator's channel layer."""

    def __init__(
        self,
        sim,
        store: ArtifactStore,
        name: str = "cache",
        service_cost: float = 0.0,
    ) -> None:
        super().__init__(sim, name)
        self.store = store
        self._service_cost = service_cost
        self.requests_served = 0
        self.publishes_accepted = 0

    def service_time(self, message: object) -> float:
        return self._service_cost

    def handle(self, message: object, sender: Process) -> None:
        if isinstance(message, ArtifactRequest):
            self._serve_get(message, sender)
        elif isinstance(message, ArtifactPublish):
            self.store.put(message.key, message.payload)
            if message.ref is not None:
                self.store.set_ref(message.ref, message.key)
            self.publishes_accepted += 1
            self.sim.metrics.counter(
                "cache_server_publishes", process=self.name
            ).inc()
        elif isinstance(message, CacheStatsQuery):
            self.send(
                sender, CacheStatsResponse(message.request_id, self.store.stats())
            )
        else:
            raise CacheError(
                f"{self.name} cannot handle {type(message).__name__}"
            )

    def _serve_get(self, request: ArtifactRequest, sender: Process) -> None:
        payload: bytes | None
        error: str | None
        try:
            payload, error = self.store.get(request.key), None
        except CacheMiss:
            payload, error = None, "miss"
        except CacheIntegrityError:
            payload, error = None, "integrity"
        self.requests_served += 1
        self.sim.metrics.counter(
            "cache_server_requests",
            process=self.name,
            result=error or "hit",
        ).inc()
        self.trace(
            "cache_serve",
            key=request.key[:12],
            hit=error is None,
        )
        self.send(
            sender,
            ArtifactResponse(request.request_id, request.key, payload, error),
        )


__all__ = [
    "ArtifactPublish",
    "ArtifactRequest",
    "ArtifactResponse",
    "CacheServer",
    "CacheStatsQuery",
    "CacheStatsResponse",
]
