#!/usr/bin/env python3
"""The §1.1 motivating scenario: a warehouse answering customer inquiries.

"When the customer calls with a question, we would like to be able to read
her data consistently: her checking account record, for instance, should
match with her linked savings account record."

Customer 0 repeatedly transfers money between checking (retail source) and
savings (savings source).  Each transfer is one multi-source transaction
(§6.2), so every *source* state shows a constant total balance.  We run
the workload twice:

* **uncoordinated** — convergent view managers + pass-through merge:
  the Portfolio view's checking and savings columns move at different
  times, so mid-run reads see money vanish or double.
* **coordinated** — complete managers + the Simple Painting Algorithm:
  the merge process holds each transaction's action lists until all
  affected views can move together; every warehouse state shows the right
  total, and the run verifies MVC-complete.

Run:  python examples/bank_customer_inquiry.py
"""

from repro import SystemConfig, Update, WarehouseSystem, bank_views, bank_world


def transfer_stream(world, count: int = 12):
    """Yield multi-source transfer transactions for customer 0."""
    c_row = [r for r in world.current.relation("Checking") if r["cust"] == 0][0]
    s_row = [r for r in world.current.relation("Savings") if r["cust"] == 0][0]
    for i in range(count):
        amount = 10 + i
        new_c = c_row.replace(cbal=c_row["cbal"] - amount)
        new_s = s_row.replace(sbal=s_row["sbal"] + amount)
        yield (
            Update.modify("Checking", c_row, new_c),
            Update.modify("Savings", s_row, new_s),
        )
        c_row, s_row = new_c, new_s


def run(config_name: str, config: SystemConfig) -> int:
    world = bank_world(customers=6)
    system = WarehouseSystem(world, bank_views(), config)
    for i, pair in enumerate(transfer_stream(world)):
        system.post_global(pair, at=1.0 + i * 1.5)
    system.run()

    # A "customer call" inspects every recorded warehouse state: customer
    # 0's total balance must be the same in all of them.
    expected_total = None
    broken_states = 0
    for state in system.history:
        rows = [r for r in state.view("Portfolio") if r["cust"] == 0]
        if len(rows) != 1:
            broken_states += 1  # record missing or duplicated mid-update
            continue
        total = rows[0]["cbal"] + rows[0]["sbal"]
        if expected_total is None:
            expected_total = total
        elif total != expected_total:
            broken_states += 1
    verdict = system.classify()
    print(f"{config_name:>14}: warehouse states={len(system.history):3d}  "
          f"inconsistent customer reads={broken_states:3d}  "
          f"MVC level achieved: {verdict}")
    return broken_states


def main() -> None:
    print("Transfers between checking and savings; Portfolio = Checking ./ Savings.")
    print("Every source state shows the same total balance for customer 0.\n")
    broken = run("uncoordinated", SystemConfig(manager_kind="convergent"))
    clean = run("coordinated", SystemConfig(manager_kind="complete"))
    print()
    if broken > 0 and clean == 0:
        print("The merge process eliminated every inconsistent read — "
              "exactly the paper's point.")
    else:
        print("Unexpected outcome; inspect the histories above.")


if __name__ == "__main__":
    main()
