#!/usr/bin/env python3
"""Distributing the merge process (§6.1 / Figure 3).

The merge process can become a bottleneck as the update rate grows.  §6.1
partitions the view managers "into groups such that base relations used in
the views of one group are disjoint with those used in the views of other
groups", assigning one merge process per group.

This example builds a warehouse with six views over disjoint relation
clusters, drives the same high-rate workload through one merge process and
through the partitioned configuration, and compares merge utilisation and
freshness.  Both runs verify MVC-complete.

Run:  python examples/distributed_merge.py
"""

from repro import (
    Schema,
    SourceWorld,
    SystemConfig,
    WarehouseSystem,
    WorkloadSpec,
    UpdateStreamGenerator,
    parse_view,
    partition_views,
)
from repro.workloads.generator import post_stream


def make_world() -> SourceWorld:
    world = SourceWorld()
    for cluster in ("a", "b", "c"):
        world.create_relation(f"R_{cluster}", Schema(["k", "v"]), f"src_{cluster}")
        world.create_relation(f"S_{cluster}", Schema(["k", "w"]), f"src_{cluster}")
    return world


def make_views():
    views = []
    for cluster in ("a", "b", "c"):
        views.append(parse_view(f"J_{cluster} = SELECT * FROM R_{cluster} JOIN S_{cluster}"))
        views.append(parse_view(f"C_{cluster} = SELECT * FROM R_{cluster}"))
    return views


def run(groups: int):
    world = make_world()
    spec = WorkloadSpec(updates=300, rate=5.0, seed=42, value_range=6,
                        mix=(0.6, 0.2, 0.2), arrivals="poisson")
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world,
        make_views(),
        SystemConfig(
            manager_kind="complete",
            merge_groups=groups,
            merge_message_cost=0.25,  # coordination work per message
            seed=42,
        ),
    )
    post_stream(system, stream)
    system.run()
    metrics = system.metrics()
    merge_util = max(
        metrics.process(m.name).utilisation for m in system.merge_processes
    )
    ok = bool(system.check_mvc("complete"))
    return system, metrics, merge_util, ok


def main() -> None:
    views = make_views()
    print("View partition by shared base relations (Figure 3 style):")
    for group in partition_views(views):
        print(f"  merge group: {group}")
    print()

    header = (f"{'merges':>7} {'MVC ok':>7} {'makespan':>9} "
              f"{'mean staleness':>15} {'max merge util':>15}")
    print(header)
    for groups in (1, 3):
        system, metrics, util, ok = run(groups)
        print(f"{len(system.merge_processes):>7} {str(ok):>7} "
              f"{metrics.makespan:>9.1f} {metrics.mean_staleness:>15.2f} "
              f"{util:>15.2%}")
    print("\nPartitioning spreads the merge work: lower per-merge utilisation")
    print("and fresher views at the same update rate, with MVC preserved.")


if __name__ == "__main__":
    main()
