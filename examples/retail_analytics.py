#!/usr/bin/env python3
"""A retail analytics warehouse with detail *and* summary views.

The paper's §1.2 notes the per-view-manager architecture exists partly
because "some views, e.g., aggregate views need to use different
maintenance algorithms than other views."  This example materializes

* ``SaleDetail``      — Sales ⋈ Product (row-level detail),
* ``RegionTotals``    — count/sum of sales per region (group-by over a join),
* ``CategoryVolume``  — sum of quantities per product category,

feeds a seeded stream of sales and catalog updates through the Figure-1
architecture, and shows that the summary views always agree with the
detail view — an analyst drilling down from a regional total to the
underlying rows never sees numbers that do not add up.

Run:  python examples/retail_analytics.py
"""

from repro import (
    SystemConfig,
    UpdateStreamGenerator,
    WarehouseSystem,
    WorkloadSpec,
    star_views,
    star_world,
)
from repro.workloads.generator import post_stream


def drilldown_mismatches(system) -> int:
    """States where a regional total disagrees with the detail rows."""
    mismatches = 0
    for state in system.history:
        regional = state.view("RegionalSales")
        totals = state.view("RegionTotals")
        derived = {}
        for row in regional:
            derived.setdefault(row["region"], [0, 0])
            derived[row["region"]][0] += 1
            derived[row["region"]][1] += row["qty"]
        reported = {
            row["region"]: (row["n"], row["total"]) for row in totals
        }
        if {k: tuple(v) for k, v in derived.items()} != reported:
            mismatches += 1
    return mismatches


def main() -> None:
    world = star_world(products=10, stores=4)
    views = star_views(selective=False, aggregates=True)
    system = WarehouseSystem(
        world,
        views,
        SystemConfig(manager_kind="complete", use_selection_filtering=False),
    )
    spec = WorkloadSpec(
        updates=120, rate=2.0, seed=7, mix=(0.7, 0.15, 0.15),
        value_range=10, arrivals="poisson",
    )
    posted = post_stream(system, UpdateStreamGenerator(world, spec).transactions())
    system.run()

    print(f"Posted {posted} source updates across "
          f"{len(system.sources)} sources; "
          f"{system.warehouse.commits} warehouse transactions.\n")

    final = system.history[-1]
    print("Final RegionTotals:")
    for row in sorted(final.view("RegionTotals"), key=lambda r: r["region"]):
        print(f"  region {row['region']}: {row['n']:3d} sales, "
              f"total qty {row['total']}")
    print("\nFinal CategoryVolume:")
    for row in sorted(final.view("CategoryVolume"), key=lambda r: r["category"]):
        print(f"  category {row['category']}: volume {row['volume']}")

    mismatches = drilldown_mismatches(system)
    print(f"\nWarehouse states where a drill-down would not add up: "
          f"{mismatches} of {len(system.history)}")
    print(f"MVC level achieved: {system.classify()}")
    assert mismatches == 0


if __name__ == "__main__":
    main()
