#!/usr/bin/env python3
"""Quickstart: the paper's Table 1, fixed by the merge process.

Example 1 of the paper: two warehouse views V1 = R ./ S and V2 = S ./ T.
A single source update (inserting [2,3] into S) affects both views.
Without coordination, V1 reflects the insert before V2 does and a reader
can observe mutually inconsistent views.  With the WHIPS architecture —
per-view managers feeding the Simple Painting Algorithm — both views
change in one atomic warehouse transaction.

Run:  python examples/quickstart.py
"""

from repro import (
    SystemConfig,
    Update,
    WarehouseSystem,
    paper_views_example1,
    paper_world,
)


def show_state(state) -> str:
    v1 = [tuple(sorted(r.items())) for r in state.view("V1").sorted_rows()]
    v2 = [tuple(sorted(r.items())) for r in state.view("V2").sorted_rows()]
    return f"V1={v1}  V2={v2}"


def main() -> None:
    # Base data (Table 1 at t0): R = {[1,2]}, S = {}, T = {[3,4]}.
    world = paper_world()
    system = WarehouseSystem(
        world,
        paper_views_example1(),
        SystemConfig(manager_kind="complete"),  # complete managers + SPA
    )

    # t1: a source transaction inserts tuple [2,3] into S.
    system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
    system.run()

    print("Warehouse state sequence (one line per warehouse transaction):")
    for state in system.history:
        print(f"  t={state.time:6.2f}  {show_state(state)}")

    report = system.check_mvc("complete")
    print(f"\nMVC-complete: {bool(report)}")
    print(f"Strongest level achieved: {system.classify()}")
    print(f"Warehouse transactions: {system.warehouse.commits} "
          f"(both views updated atomically in one)")

    metrics = system.metrics()
    print(f"\nRun metrics: {metrics.format_row()}")


if __name__ == "__main__":
    main()
