#!/usr/bin/env python3
"""Replay the paper's worked examples, printing the VUT like the paper.

* Example 2 — the ViewUpdateTable after REL1, REL2, then AL^2_1.
* Example 3 — the full SPA trace (receipt order REL1, AL21, REL2, REL3,
  AL32, AL23, AL11), showing which rows apply at each step.
* Example 4 — why SPA breaks for strongly consistent managers.
* Example 5 — the full PA trace with the (color, state) entries.

Run:  python examples/painting_algorithm_traces.py
"""

from repro import Delta, Row, SimplePaintingAlgorithm, PaintingAlgorithm
from repro.viewmgr.actions import ActionList


def al(view: str, covered, tag: int = 0) -> ActionList:
    return ActionList.from_delta(
        view, view, tuple(covered), Delta.insert(Row(x=tag))
    )


def show(step: str, algorithm, units, state=False) -> None:
    applied = ", ".join(
        "{" + ",".join(f"U{r}" for r in unit.rows) + "}" for unit in units
    ) or "-"
    print(f"\n  after {step}:  applied rows: {applied}")
    table = algorithm.vut.render(show_state=state)
    print("    " + table.replace("\n", "\n    ") if table.strip() else
          "    (VUT empty — everything purged)")


def example_2() -> None:
    print("=" * 72)
    print("Example 2: the ViewUpdateTable")
    print("  V1 = R./S, V2 = S./T./Q, V3 = Q; U1 on S, U2 on Q")
    spa = SimplePaintingAlgorithm(("V1", "V2", "V3"))
    show("REL1", spa, spa.receive_rel(1, frozenset({"V1", "V2"})))
    show("REL2", spa, spa.receive_rel(2, frozenset({"V2", "V3"})))
    show("AL21 (V2's list for U1 — held, V1 still white)",
         spa, spa.receive_action_list(al("V2", [1], 21)))


def example_3() -> None:
    print("\n" + "=" * 72)
    print("Example 3: the Simple Painting Algorithm")
    print("  V1 = R./S, V2 = S./T, V3 = Q; U1 on S, U2 on Q, U3 on T")
    spa = SimplePaintingAlgorithm(("V1", "V2", "V3"))
    steps = [
        ("REL1", lambda: spa.receive_rel(1, frozenset({"V1", "V2"}))),
        ("AL21", lambda: spa.receive_action_list(al("V2", [1], 21))),
        ("REL2", lambda: spa.receive_rel(2, frozenset({"V3"}))),
        ("REL3", lambda: spa.receive_rel(3, frozenset({"V2"}))),
        ("AL32  (t5: row 2 applies before row 1!)",
         lambda: spa.receive_action_list(al("V3", [2], 32))),
        ("AL23", lambda: spa.receive_action_list(al("V2", [3], 23))),
        ("AL11  (t9-t11: rows 1 then 3 cascade)",
         lambda: spa.receive_action_list(al("V1", [1], 11))),
    ]
    for name, step in steps:
        show(name, spa, step())


def example_4() -> None:
    print("\n" + "=" * 72)
    print("Example 4: SPA breaks under strongly consistent managers")
    print("  V1's manager batches U1 and U3 into a single AL13.")
    spa = SimplePaintingAlgorithm(("V1", "V2", "V3"), strict=False)
    spa.receive_rel(1, frozenset({"V1", "V2"}))
    spa.receive_rel(2, frozenset({"V2", "V3"}))
    spa.receive_rel(3, frozenset({"V1", "V2"}))
    spa.receive_action_list(al("V1", [1, 3], 13))
    units = []
    units += spa.receive_action_list(al("V2", [1], 21))
    units += spa.receive_action_list(al("V2", [2], 22))
    units += spa.receive_action_list(al("V3", [2], 32))
    bad = [u for u in units if u.rows == (1,)]
    print(f"\n  naive SPA applied row 1 with views "
          f"{[a.view for a in bad[0].action_lists]} only — V1's batched")
    print("  actions are missing: the views are no longer mutually consistent.")
    print("  (This is exactly why the Painting Algorithm exists.)")


def example_5() -> None:
    print("\n" + "=" * 72)
    print("Example 5: the Painting Algorithm")
    print("  U1 on S, U2 on Q, U3 on Q; V2's manager batches U2,U3 into AL23")
    pa = PaintingAlgorithm(("V1", "V2", "V3"))
    steps = [
        ("REL1", lambda: pa.receive_rel(1, frozenset({"V1", "V2"}))),
        ("REL2", lambda: pa.receive_rel(2, frozenset({"V2", "V3"}))),
        ("REL3", lambda: pa.receive_rel(3, frozenset({"V2", "V3"}))),
        ("AL21", lambda: pa.receive_action_list(al("V2", [1], 21))),
        ("AL23 (covers U2 and U3 — state fields point to row 3)",
         lambda: pa.receive_action_list(al("V2", [2, 3], 23))),
        ("AL32", lambda: pa.receive_action_list(al("V3", [2], 32))),
        ("AL11 (t5: row 1 applies alone)",
         lambda: pa.receive_action_list(al("V1", [1], 11))),
        ("AL33 (t7: rows 2 and 3 apply together, one transaction)",
         lambda: pa.receive_action_list(al("V3", [3], 33))),
    ]
    for name, step in steps:
        show(name, pa, step(), state=True)


def main() -> None:
    example_2()
    example_3()
    example_4()
    example_5()
    print("\nAll four traces match the paper's tables.")


if __name__ == "__main__":
    main()
