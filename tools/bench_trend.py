#!/usr/bin/env python
"""Aggregate BENCH_*.json artifacts into one trend table.

Every benchmark run with ``--bench-out DIR`` drops machine-readable
``BENCH_<name>.json`` files (format: docs/performance.md); CI uploads
them per commit.  This tool flattens any number of such directories into
one fixed-width table — one row per scalar metric, one value column per
directory — so downloaded artifact sets from successive commits line up
side by side and drifts are visible at a glance:

    python tools/bench_trend.py .                 # summarise one run
    python tools/bench_trend.py old/ new/         # compare two runs

Nested objects flatten to dotted paths (``b25_overhead.cpu_ms_on``);
lists contribute their length only (series belong to the artifact, not
the trend table).  With ``--json PATH`` the merged table is also written
as one JSON object keyed ``benchmark.metric`` -> [values per column].

Exits 1 if no artifacts were found anywhere, 0 otherwise.
"""

from __future__ import annotations

import argparse
import json
import sys
from pathlib import Path


def flatten(payload: object, prefix: str = "") -> dict[str, object]:
    """Leaf scalars of a JSON document, keyed by dotted path."""
    out: dict[str, object] = {}
    if isinstance(payload, dict):
        for key in sorted(payload):
            path = f"{prefix}.{key}" if prefix else str(key)
            out.update(flatten(payload[key], path))
    elif isinstance(payload, list):
        out[f"{prefix}.len"] = len(payload)
    elif isinstance(payload, (int, float, str, bool)) or payload is None:
        out[prefix] = payload
    return out


def load_directory(directory: Path) -> dict[str, object]:
    """Flattened metrics of every BENCH_*.json in ``directory``."""
    metrics: dict[str, object] = {}
    for path in sorted(directory.glob("BENCH_*.json")):
        name = path.stem.removeprefix("BENCH_")
        try:
            payload = json.loads(path.read_text())
        except (json.JSONDecodeError, OSError) as exc:
            print(f"warning: skipping {path}: {exc}", file=sys.stderr)
            continue
        for key, value in flatten(payload).items():
            metrics[f"{name}.{key}"] = value
    return metrics


def fmt(value: object) -> str:
    if value is None:
        return "-"
    if isinstance(value, float):
        return f"{value:.4g}"
    return str(value)


def trend_table(columns: list[tuple[str, dict[str, object]]]) -> str:
    rows = sorted({key for _, metrics in columns for key in metrics})
    headers = ["metric"] + [label for label, _ in columns]
    table = [
        [key] + [fmt(metrics.get(key)) for _, metrics in columns]
        for key in rows
    ]
    widths = [
        max(len(str(headers[i])), *(len(str(r[i])) for r in table))
        if table else len(str(headers[i]))
        for i in range(len(headers))
    ]

    def line(cells: list[str]) -> str:
        first = str(cells[0]).ljust(widths[0])
        rest = (str(c).rjust(w) for c, w in zip(cells[1:], widths[1:]))
        return "  ".join([first, *rest])

    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in table)
    return "\n".join(out)


def main(argv: list[str] | None = None) -> int:
    parser = argparse.ArgumentParser(
        description="aggregate BENCH_*.json artifacts into a trend table"
    )
    parser.add_argument(
        "directories", nargs="*", default=["."], type=Path,
        help="artifact directories, oldest first (default: .)",
    )
    parser.add_argument(
        "--json", type=Path, default=None, metavar="PATH",
        help="also write the merged table as JSON",
    )
    args = parser.parse_args(argv)
    directories = [Path(d) for d in args.directories] or [Path(".")]

    columns = [(str(d), load_directory(d)) for d in directories]
    found = sum(len(metrics) for _, metrics in columns)
    if not found:
        print("no BENCH_*.json artifacts found in: "
              + ", ".join(str(d) for d in directories), file=sys.stderr)
        return 1

    print(trend_table(columns))
    print(f"\n{found} metric value(s) across {len(columns)} run(s)")

    if args.json is not None:
        keys = sorted({key for _, metrics in columns for key in metrics})
        merged = {
            key: [metrics.get(key) for _, metrics in columns]
            for key in keys
        }
        args.json.write_text(json.dumps(merged, indent=2, sort_keys=True)
                             + "\n")
        print(f"wrote {args.json}")
    return 0


if __name__ == "__main__":
    sys.exit(main())
