#!/usr/bin/env python
"""Execute the fenced ``python`` blocks of the documentation.

The engine docs carry runnable examples (docs/engine.md "Executable
examples", docs/performance.md) that double as facade-contract checks.
This tool keeps them honest: every ```` ```python ```` block in the given
files is executed, blocks within one file sharing a single namespace top
to bottom (so later blocks may reuse earlier imports and objects, as
literate docs do).  Blocks are compiled with their real file/line so an
assertion failure points into the markdown.

Run by the ``docs`` CI job and usable locally:

    python tools/run_doc_snippets.py                 # the default doc set
    python tools/run_doc_snippets.py docs/engine.md  # specific files
"""

from __future__ import annotations

import re
import sys
import traceback
from pathlib import Path

DEFAULT_DOCS = ("docs/engine.md", "docs/performance.md", "docs/caching.md")

#: a fenced python block: ```python ... ``` (tilde fences are not used
#: for executable examples)
_BLOCK = re.compile(r"^```python[ \t]*\n(.*?)^```", re.M | re.S)


def blocks_of(path: Path) -> list[tuple[int, str]]:
    """(start line of the code, source) for each fenced python block."""
    text = path.read_text()
    found = []
    for match in _BLOCK.finditer(text):
        start_line = text.count("\n", 0, match.start(1)) + 1
        found.append((start_line, match.group(1)))
    return found


def run_file(path: Path, root: Path) -> tuple[int, int]:
    """Execute every block of one file; returns (blocks run, failures)."""
    rel = path.relative_to(root)
    namespace: dict = {"__name__": f"docsnippets::{rel}"}
    ran = failed = 0
    for start_line, source in blocks_of(path):
        ran += 1
        # pad so tracebacks report the line number within the markdown
        padded = "\n" * (start_line - 1) + source
        try:
            exec(compile(padded, str(rel), "exec"), namespace)
        except Exception:
            failed += 1
            print(f"FAIL {rel}: block at line {start_line}:")
            traceback.print_exc()
    return ran, failed


def main(argv: list[str]) -> int:
    root = Path(__file__).resolve().parent.parent
    sys.path.insert(0, str(root / "src"))
    paths = [root / arg for arg in argv] if argv else [
        root / doc for doc in DEFAULT_DOCS
    ]
    total = failures = 0
    for path in paths:
        if not path.exists():
            print(f"FAIL no such file: {path}")
            failures += 1
            continue
        ran, failed = run_file(path, root)
        total += ran
        failures += failed
        status = "ok" if not failed else f"{failed} FAILED"
        print(f"{path.relative_to(root)}: {ran} block(s), {status}")
    if failures:
        print(f"\n{failures} failing snippet(s)")
        return 1
    print(f"ok: {total} documentation snippet(s) executed")
    return 0


if __name__ == "__main__":
    sys.exit(main(sys.argv[1:]))
