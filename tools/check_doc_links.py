#!/usr/bin/env python
"""Check that intra-repository markdown links resolve.

Scans every tracked ``*.md`` file for inline links and verifies that each
relative target exists (anchors and external ``http(s)``/``mailto``
links are skipped).  Exits non-zero listing every broken link — run by
the ``docs`` CI job and usable locally:

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links: [text](target) — images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: fenced code blocks, where link syntax is not a link
_FENCE = re.compile(r"^(```|~~~)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") or part in ("build", "dist")
               for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def broken_links(path: Path, root: Path) -> list[tuple[int, str]]:
    broken = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if in_fence:
            continue
        for target in _LINK.findall(line):
            if target.startswith(SKIP_SCHEMES):
                continue
            relative = target.split("#", 1)[0]
            if not relative:
                continue
            resolved = (root / relative if relative.startswith("/")
                        else path.parent / relative)
            if not resolved.exists():
                broken.append((lineno, target))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    failures = 0
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        for lineno, target in broken_links(path, root):
            failures += 1
            print(f"{path.relative_to(root)}:{lineno}: broken link -> {target}")
    if failures:
        print(f"\n{failures} broken link(s) across {checked} markdown files")
        return 1
    print(f"ok: all intra-repo links resolve ({checked} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
