#!/usr/bin/env python
"""Check that repository documentation references resolve.

Scans every tracked ``*.md`` file and verifies three kinds of reference:

* **markdown links** — each relative ``[text](target)`` must point at an
  existing file (anchors and external ``http(s)``/``mailto`` links are
  skipped);
* **source paths** — any ``src/...`` path mentioned anywhere in a doc
  (prose or fenced block) must exist in the tree, so renames can't leave
  the docs pointing at ghosts;
* **CLI commands** — any ``python -m repro <subcommand>`` invocation
  must name a real subcommand, taken from the live argument parser
  (``repro.cli.build_parser``), so the docs can't advertise commands the
  CLI doesn't have.

Exits non-zero listing every broken reference — run by the ``docs`` CI
job and usable locally:

    python tools/check_doc_links.py
"""

from __future__ import annotations

import re
import sys
from pathlib import Path

#: inline markdown links: [text](target) — images share the syntax
_LINK = re.compile(r"\[[^\]]*\]\(([^)\s]+)\)")
#: fenced code blocks, where link syntax is not a link
_FENCE = re.compile(r"^(```|~~~)")
#: paths into the source tree, wherever they appear
_SRC_PATH = re.compile(r"\bsrc/[\w./-]+")
#: CLI invocations; group 1 is the subcommand token (absent for bare
#: ``python -m repro`` mentions, which argparse itself rejects)
_CLI = re.compile(r"python -m repro\s+([a-z][a-z-]*)")

SKIP_SCHEMES = ("http://", "https://", "mailto:", "#")


def iter_markdown(root: Path):
    for path in sorted(root.rglob("*.md")):
        if any(part.startswith(".") or part in ("build", "dist")
               for part in path.relative_to(root).parts[:-1]):
            continue
        yield path


def cli_subcommands(root: Path) -> frozenset[str]:
    """The real top-level subcommand names, from the live parser."""
    sys.path.insert(0, str(root / "src"))
    try:
        from repro.cli import build_parser
    finally:
        sys.path.pop(0)
    parser = build_parser()
    for action in parser._subparsers._group_actions:  # noqa: SLF001
        if action.choices:
            return frozenset(action.choices)
    raise RuntimeError("repro.cli.build_parser() has no subcommands")


def broken_references(
    path: Path, root: Path, subcommands: frozenset[str]
) -> list[tuple[int, str]]:
    broken = []
    in_fence = False
    for lineno, line in enumerate(path.read_text().splitlines(), start=1):
        if _FENCE.match(line.strip()):
            in_fence = not in_fence
            continue
        if not in_fence:
            # markdown links are only links outside fences
            for target in _LINK.findall(line):
                if target.startswith(SKIP_SCHEMES):
                    continue
                relative = target.split("#", 1)[0]
                if not relative:
                    continue
                resolved = (root / relative if relative.startswith("/")
                            else path.parent / relative)
                if not resolved.exists():
                    broken.append((lineno, f"broken link -> {target}"))
        # source paths and CLI commands are checked everywhere: a fenced
        # example referencing a ghost path is just as stale as prose
        for match in _SRC_PATH.findall(line):
            candidate = match.rstrip("./")
            if candidate and not (root / candidate).exists():
                broken.append((lineno, f"missing source path -> {match}"))
        for sub in _CLI.findall(line):
            if sub not in subcommands:
                broken.append((
                    lineno,
                    f"unknown CLI subcommand -> python -m repro {sub} "
                    f"(valid: {', '.join(sorted(subcommands))})",
                ))
    return broken


def main() -> int:
    root = Path(__file__).resolve().parent.parent
    subcommands = cli_subcommands(root)
    failures = 0
    checked = 0
    for path in iter_markdown(root):
        checked += 1
        for lineno, message in broken_references(path, root, subcommands):
            failures += 1
            print(f"{path.relative_to(root)}:{lineno}: {message}")
    if failures:
        print(f"\n{failures} broken reference(s) across {checked} markdown files")
        return 1
    print(f"ok: all links, src/ paths and CLI commands resolve "
          f"({checked} markdown files)")
    return 0


if __name__ == "__main__":
    sys.exit(main())
