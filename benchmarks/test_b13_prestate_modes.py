"""B13 — Pre-state acquisition ablation (the §1.1 Problem-3 design space).

Delta computation needs the base state *as of* the update being processed.
Three correct disciplines are implemented (DESIGN.md):

* ``cached``     — local replicas maintained from the update stream
  (no queries, most state);
* ``snapshot``   — multiversion reads from the base-data service;
* ``compensate`` — current-state reads rolled back with undo information
  (the Strobe-flavoured autonomous-source mode).

The experiment runs the same workload under each and compares service
query traffic, staleness and makespan — and confirms all three verify the
same MVC level.  The broken fourth option (``naive``: current-state reads,
no compensation) is measured too, as the cautionary row.

Paper question: §1.1 Problem 3 — where does delta computation get its
pre-state?  Reads: ``RunMetrics.makespan`` / ``mean_staleness`` and
service query counts per acquisition mode.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

MODES = (
    ("cached", "complete"),
    ("snapshot", "complete"),
    ("compensate", "strong"),
)


def run_mode(mode: str, kind: str):
    spec = WorkloadSpec(updates=60, rate=2.0, seed=41, mix=(0.6, 0.2, 0.2),
                        arrivals="poisson")
    system = run_system(
        paper_world(),
        paper_views_example2(),
        SystemConfig(
            manager_kind=kind,
            manager_mode=mode,
            service_query_cost=0.2,
            seed=41,
        ),
        spec,
    )
    metrics = system.metrics()
    return (
        system.classify(),
        system.service.queries_answered,
        metrics.mean_staleness,
        metrics.makespan,
    )


def run_naive():
    spec = WorkloadSpec(updates=60, rate=2.0, seed=41, mix=(1.0, 0.0, 0.0),
                        arrivals="poisson")
    system = run_system(
        paper_world(),
        paper_views_example2(),
        SystemConfig(manager_kind="naive", seed=41),
        spec,
    )
    return system.classify(), system.service.queries_answered


def test_b13_prestate_modes(benchmark, report):
    def experiment():
        results = {}
        for mode, kind in MODES:
            results[mode] = run_mode(mode, kind)
        results["naive"] = run_naive() + (float("nan"), float("nan"))
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for mode in ("cached", "snapshot", "compensate", "naive"):
        level, queries, staleness, makespan = results[mode]
        rows.append(
            [
                mode,
                level,
                queries,
                "-" if staleness != staleness else f"{staleness:.1f}",
                "-" if makespan != makespan else f"{makespan:.0f}",
            ]
        )
    report("B13 — how view managers obtain their pre-state:")
    report(fmt_table(
        ["mode", "MVC level", "service queries", "mean staleness", "makespan"],
        rows,
    ))
    report("")
    report("Shape: cached needs no queries; snapshot/compensate trade query "
           "round-trips for statelessness and stay correct; naive reads of "
           "the moving current state corrupt the warehouse (Problem 3).")

    assert results["cached"][0] == "complete"
    assert results["snapshot"][0] == "complete"
    assert results["compensate"][0] == "strong"
    assert results["naive"][0] in ("convergent", "inconsistent")
    assert results["cached"][1] == 0
    assert results["snapshot"][1] > 0 and results["compensate"][1] > 0
