"""F1 — Figure 1: the warehouse architecture, assembled and exercised.

Builds exactly the topology of Figure 1 — data sources -> integrator ->
view managers -> merge process -> warehouse — runs a workload through it,
and prints the component census plus the message flows over each hop.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system


def test_figure1_architecture(benchmark, report):
    spec = WorkloadSpec(updates=60, rate=2.0, seed=1, arrivals="poisson",
                        mix=(0.6, 0.2, 0.2))
    system = benchmark.pedantic(
        lambda: run_system(
            paper_world(), paper_views_example2(),
            SystemConfig(manager_kind="complete", seed=1), spec,
        ),
        rounds=1, iterations=1,
    )

    report("Figure 1 — component census:")
    rows = [
        ["data sources", ", ".join(sorted(system.sources))],
        ["integrator", system.integrator.name],
        ["view managers", ", ".join(sorted(system.view_managers))],
        ["merge process", ", ".join(m.name for m in system.merge_processes)],
        ["warehouse", system.warehouse.name],
        ["base-data service", system.service.name],
    ]
    report(fmt_table(["component", "instances"], rows))

    metrics = system.metrics()
    report("")
    report("Message traffic per process:")
    traffic = [
        [name, stats.messages_handled, f"{stats.utilisation:.1%}"]
        for name, stats in sorted(metrics.processes.items())
    ]
    report(fmt_table(["process", "messages", "utilisation"], traffic))
    report("")
    report(f"updates: {metrics.updates_committed}, warehouse txns: "
           f"{metrics.warehouse_transactions}, MVC: {system.classify()}")

    # Shape claims: all Figure-1 boxes exist and carried traffic; the run
    # is MVC-complete.
    assert len(system.sources) == 4
    assert len(system.view_managers) == 3
    assert len(system.merge_processes) == 1
    assert metrics.process("integrator").messages_handled == 60
    assert metrics.process("merge").messages_handled > 60  # RELs + ALs
    assert metrics.process("warehouse").messages_handled > 0
    assert system.check_mvc("complete")
