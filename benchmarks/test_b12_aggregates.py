"""B12 — Aggregate views: incremental maintenance + MVC (extension).

§1.2 motivates per-view algorithm selection with "aggregate views need to
use different maintenance algorithms than other views."  This extension
experiment maintains count/sum group-by views through the same
architecture and measures

* correctness: aggregate and detail views stay mutually consistent
  (MVC-complete run);
* cost: incremental aggregate deltas vs full re-aggregation as the fact
  table grows.

Paper question: §1.2 — "aggregate views need to use different
maintenance algorithms than other views" (extension).  Reads:
``classify()`` verdicts plus wall-clock for incremental vs re-aggregation.
"""

import time

from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import Aggregate, AggregateSpec, BaseRelation, Join
from repro.relational.plan import MaintenancePlan
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import star_views, star_world

from benchmarks.conftest import fmt_table, run_system

# Group totals over a fact-dimension join: the textbook summary view.
TOTALS = Aggregate(
    ("zone",),
    (AggregateSpec("count", "n"), AggregateSpec("sum", "total", "q")),
    Join(BaseRelation("F"), BaseRelation("D")),
)
SIZES = (1_000, 10_000, 50_000)


def fact_table(size: int) -> Database:
    db = Database()
    db.create_relation(
        "F",
        Schema(["id", "g", "q"]),
        [Row(id=i, g=i % 40, q=i % 7) for i in range(size)],
    )
    db.create_relation(
        "D",
        Schema(["g", "zone"]),
        [Row(g=g, zone=g % 8) for g in range(40)],
    )
    return db


def measure(fn, repeats=3) -> float:
    best = float("inf")
    for _ in range(repeats):
        start = time.perf_counter()
        fn()
        best = min(best, time.perf_counter() - start)
    return best


def test_b12_aggregate_views(benchmark, report):
    def experiment():
        # Part 1: end-to-end MVC over detail + aggregate views.
        spec = WorkloadSpec(updates=60, rate=2.0, seed=37, value_range=10,
                            mix=(0.6, 0.2, 0.2))
        system = run_system(
            star_world(),
            star_views(aggregates=True),
            SystemConfig(manager_kind="complete", seed=37),
            spec,
        )
        verdict = system.classify()

        # Part 2: incremental vs re-aggregation cost.
        rows = []
        for size in SIZES:
            db = fact_table(size)
            deltas = {"F": Delta.insert(Row(id=size + 1, g=3, q=5))}
            recompute = measure(lambda: evaluate(TOTALS, db))
            incremental = measure(lambda: propagate_delta(TOTALS, db, deltas))
            rows.append((size, recompute, incremental))
        return verdict, rows

    verdict, rows = benchmark.pedantic(experiment, rounds=1, iterations=1)

    report("B12 — aggregate warehouse views:")
    report(f"end-to-end run with RegionTotals/CategoryVolume views: "
           f"MVC level = {verdict}")
    report("")
    table = [
        [size, f"{rec * 1e3:.2f}", f"{inc * 1e3:.3f}", f"{rec / inc:.0f}x"]
        for size, rec, inc in rows
    ]
    report(fmt_table(
        ["fact rows", "re-aggregate (ms)", "incremental (ms)", "speedup"],
        table,
    ))
    report("")
    report("Shape: aggregates ride the MVC machinery unchanged; the "
           "group-restricted delta rule beats re-aggregation consistently "
           "(both arms here are the unindexed rules, so both remain "
           "scan-bound — the win is skipping the join/aggregation work of "
           "untouched groups; B19 measures the indexed plan, whose "
           "self-maintained aggregates drop the rescans entirely).")

    assert verdict == "complete"
    speedups = [rec / inc for _s, rec, inc in rows]
    assert all(s > 2.0 for s in speedups)
    assert speedups[-1] >= speedups[0] * 0.9  # the advantage is not eroding

    # The indexed plan must agree with the unindexed rules on this
    # workload (aggregate-over-join, the B12 view shape).
    db = fact_table(1_000)
    plan = MaintenancePlan(TOTALS, db)
    for step in range(5):
        deltas = {"F": Delta.insert(Row(id=10_000 + step, g=step % 40, q=step))}
        assert plan.propagate(deltas) == propagate_delta(TOTALS, db, deltas)
        db.apply_deltas(deltas)
        plan.advance()
