"""B25 — Telemetry overhead and cross-runtime reconciliation.

Paper question: none directly — like B18 this is infrastructure due
diligence, now for the *runtime-spanning* telemetry layer.  B18 bounded
the cost of the passive trace/registry; B25 bounds the cost of the
active instruments added on top of it: the live freshness/SLO monitor
(probed after every DES event), the per-plan-node profiler (a staging
dict lookup per operator call plus timing when armed), and the per-view
compute twins.  It also proves the cross-process collector tells the
truth: a ``procs`` run's child-side row counters must reconcile exactly
with a DES run's registry on the same seeded workload.

Method, overhead half (B18's discipline): the B1 workload (80 updates at
rate 10, seed 21) twice per round — everything enabled (freshness
monitor + SLO evaluator + plan profiler) vs everything off — interleaved
best-of-N CPU time with GC disabled, asserting

* full telemetry slows the run by **less than 15%** (B18's bar),
* telemetry does not perturb the simulation: identical virtual makespan
  and warehouse transaction count in both arms,
* the instrumented arm actually bought the goods: monitor samples,
  ``view_staleness`` gauges, ``plan_node_*`` counters.

Method, reconciliation half: an insert-only workload (row totals are
batch-boundary-invariant) run under ``procs`` and under DES; per view,
the children's ``proc_compute_rows_out`` (shipped over the pipe by the
collector, origin-labelled per shard) must equal both runs'
``vm_compute_rows``.

Metrics read: CPU time for the ratio; ``sim.now``/``warehouse.commits``
for invariance; ``view_staleness``/``plan_node_calls``/
``proc_compute_rows_out``/``vm_compute_rows`` for the payoff checks.
"""

from __future__ import annotations

import gc
import time

from repro.obs.freshness import SloPolicy
from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

UPDATES = 80
RATE = 10.0
ROUNDS = 6  # interleaved on/off pairs; best-of-N defeats scheduler noise
MAX_OVERHEAD = 0.15

#: thresholds no healthy run crosses — the evaluator runs, never fires
QUIET_SLO = SloPolicy(max_staleness=1e9, max_queue_depth=10_000,
                      max_vut=10_000)


def _run_once(telemetry: bool):
    config = SystemConfig(
        seed=21,
        freshness_tick=0.5 if telemetry else None,
        slo=QUIET_SLO if telemetry else None,
        profile_plans=telemetry,
    )
    spec = WorkloadSpec(updates=UPDATES, rate=RATE, seed=21,
                        mix=(0.6, 0.2, 0.2))
    gc.collect()
    gc.disable()
    try:
        started = time.process_time()
        system = run_system(paper_world(), paper_views_example2(), config,
                            spec)
        elapsed = time.process_time() - started
    finally:
        gc.enable()
    return elapsed, system


def test_b25_telemetry_overhead(benchmark, report, bench_out):
    def experiment():
        _run_once(True)  # warm-up: imports, allocator, branch caches
        _run_once(False)
        on_times, off_times = [], []
        for _ in range(ROUNDS):
            elapsed_off, base = _run_once(False)
            elapsed_on, instrumented = _run_once(True)
            off_times.append(elapsed_off)
            on_times.append(elapsed_on)
        return min(off_times), min(on_times), base, instrumented

    off, on, base, instrumented = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    overhead = on / off - 1.0
    monitor = instrumented.monitor

    report(f"B25 — live telemetry overhead on the B1 workload "
           f"({UPDATES} updates, rate {RATE}, best of {ROUNDS}):")
    report(fmt_table(
        ["arm", "cpu ms", "monitor samples", "profiled nodes",
         "registry instruments"],
        [
            ["telemetry off", f"{off * 1e3:.1f}", 0, 0,
             len(base.sim.metrics)],
            ["monitor+slo+profiler", f"{on * 1e3:.1f}", monitor.samples,
             instrumented.plan_profiler.enabled_nodes,
             len(instrumented.sim.metrics)],
        ],
    ))
    report(f"overhead: {overhead * 100:+.1f}%  (budget {MAX_OVERHEAD:.0%})")

    # Observation must not perturb the simulation itself.
    assert base.sim.now == instrumented.sim.now
    assert base.warehouse.commits == instrumented.warehouse.commits

    # The instrumented arm must have bought live telemetry ...
    assert monitor is not None and monitor.samples > 10
    assert monitor.breaches == 0  # QUIET_SLO: evaluated, never fired
    registry = instrumented.sim.metrics
    for view in instrumented.view_managers:
        assert registry.get("view_staleness", view=view) is not None
        assert registry.value("vm_compute_batches", view=view) > 0
    assert registry.family("plan_node_calls")
    # ... while the plain arm keeps its registry free of telemetry
    assert base.monitor is None
    assert not base.sim.metrics.family("plan_node_calls")

    bench_out("b25", {
        "b25_overhead": {
            "workload": {"updates": UPDATES, "rate": RATE, "seed": 21,
                         "rounds": ROUNDS},
            "cpu_ms_off": round(off * 1e3, 3),
            "cpu_ms_on": round(on * 1e3, 3),
            "overhead": round(overhead, 4),
            "budget": MAX_OVERHEAD,
            "monitor_samples": monitor.samples,
            "profiled_nodes": instrumented.plan_profiler.enabled_nodes,
        },
    })

    assert overhead < MAX_OVERHEAD, (
        f"live telemetry costs {overhead:.1%} on the B1 workload "
        f"(budget {MAX_OVERHEAD:.0%})"
    )


def test_b25_procs_reconciles_with_des(report, bench_out):
    """Collector truthfulness: child counters == DES registry, per view."""
    from repro.system.builder import WarehouseSystem
    from repro.workloads.generator import UpdateStreamGenerator, post_stream

    def run(config: SystemConfig) -> WarehouseSystem:
        world = paper_world()
        spec = WorkloadSpec(updates=50, rate=8.0, seed=33,
                            mix=(1.0, 0.0, 0.0))  # insert-only
        system = WarehouseSystem(world, paper_views_example2(), config)
        post_stream(system, UpdateStreamGenerator(world, spec).transactions())
        system.run()
        return system

    des = run(SystemConfig(seed=33))
    procs = run(SystemConfig(seed=33, runtime="procs", workers=2))
    try:
        rows = {}
        table = []
        for view in sorted(des.view_managers):
            des_rows = des.sim.metrics.value("vm_compute_rows", view=view)
            shipped = sum(
                metric.value
                for metric in procs.sim.metrics.family("proc_compute_rows_out")
                if dict(metric.labels).get("view") == view
            )
            rows[view] = des_rows
            table.append([view, int(des_rows), int(shipped)])
            assert shipped == des_rows > 0
        origins = {
            dict(m.labels)["origin"]
            for m in procs.sim.metrics.family("proc_compute_requests")
        }
        report("B25 — procs collector vs DES registry (insert-only, seed 33):")
        report(fmt_table(["view", "des rows", "procs child rows"], table))
        report(f"shard origins: {sorted(origins)}")
        assert origins

        bench_out("b25", {
            "b25_reconcile": {
                "rows_per_view": {k: int(v) for k, v in rows.items()},
                "shards": len(origins),
            },
        })
    finally:
        procs.close()
        des.close()
