"""B5 — VUT occupancy and promptness (§4.2's closing claim).

"Although theoretically, the total number of rows in the VUT could be as
many as the total number of updates, the actual number is small in a
system where no view manager is a bottleneck."

The experiment tracks the VUT's row count after every merge event in two
regimes:

* balanced — all managers equally fast: the VUT stays small regardless of
  how many updates flow through;
* straggler — one manager 25x slower: unapplied rows pile up behind it,
  bounded only by the straggler's backlog.

Paper question: §4.2 — "the actual number [of VUT rows] is small in a
system where no view manager is a bottleneck".  Reads: the ``vut_size``
trace events (equivalently the ``merge_vut_size`` timeline gauge in
``sim.metrics``) after every merge event, per regime.
"""

from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table

UPDATES = 150


def run(straggler: bool):
    world = paper_world()
    spec = WorkloadSpec(updates=UPDATES, rate=3.0, seed=5,
                        mix=(0.6, 0.2, 0.2), arrivals="poisson")
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(
        world,
        paper_views_example2(),
        SystemConfig(
            manager_kind="complete",
            compute_cost=lambda n, d: 0.2,
            seed=5,
        ),
    )
    if straggler:
        system.view_managers["V2"].compute_cost = lambda n, d: 5.0
    post_stream(system, stream)
    system.run()
    sizes = [
        int(e.detail["size"]) for e in system.sim.trace.of_kind("vut_size")
    ]
    assert system.check_mvc("complete")
    return sizes


def test_b5_vut_occupancy(benchmark, report):
    balanced, straggler = benchmark.pedantic(
        lambda: (run(False), run(True)), rounds=1, iterations=1
    )

    def stats(sizes):
        return [
            max(sizes),
            f"{sum(sizes) / len(sizes):.1f}",
            sizes[-1],
        ]

    report(f"B5 — VUT rows over a {UPDATES}-update run:")
    report(fmt_table(
        ["regime", "peak rows", "mean rows", "final rows"],
        [
            ["balanced managers"] + stats(balanced),
            ["one straggler (25x slower)"] + stats(straggler),
        ],
    ))
    report("")
    report("Shape: with no bottleneck manager the table stays a small "
           "fraction of the update count (purging works); a straggler "
           "makes rows accumulate behind it.")

    assert max(balanced) < UPDATES * 0.2, "balanced VUT stays small"
    assert max(straggler) > max(balanced) * 3, "straggler inflates the VUT"
    assert balanced[-1] == 0 and straggler[-1] == 0, "fully purged at the end"
