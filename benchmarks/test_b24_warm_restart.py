"""B24 — Warm restart: artifact-cache recovery vs full replay.

A warehouse restart (deploy, crash, failover) must rebuild every view
manager's replica, compiled maintenance plan, and initial view contents.
Without ``repro.cache`` that is a full replay of the cold-start path:
re-evaluate ``V(ss_0)`` for every view — for the aggregate-over-join
fleets measured here, the dominant cost is re-running every join.  With
a populated artifact store the restart fetches the seed artifact
(contents + plan auxiliary state, integrity-verified) and skips the
evaluation passes entirely.

Arms, per fleet size (15 / 45 / 120 views over relation-disjoint
clusters):

* **replay** — no cache configured: the PR-1 cold-start path.
* **cold**   — cache on, empty store: replay cost *plus* publishing the
  seed artifacts (the one-time price of durability).
* **warm**   — cache on, the store the cold arm just populated: the
  restart path under test.

Paper link: §4's SWEEP/merge correctness argument assumes each view
manager owns a consistent materialized state; this experiment measures
what it costs to *regain* that state after losing the process, and shows
content-addressed artifacts make restart cost independent of join width.
Shape claims: warm restart >= 5x faster than replay at 100+ views, the
warm-started warehouse bag-identical to the replayed one, and a cached
crash/restart run converging to the same stores as an uncrashed run.
Emits BENCH_b24.json via ``--bench-out``.
"""

from __future__ import annotations

import shutil
import tempfile
import time

from repro.cache.store import CacheConfig
from repro.faults import CrashSpec, FaultPlan
from repro.relational.parser import parse_view
from repro.relational.schema import Schema
from repro.sources.world import SourceWorld
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import (
    UpdateStreamGenerator,
    WorkloadSpec,
    post_stream,
)

from benchmarks.conftest import fmt_table

CLUSTER_SIZES = (5, 15, 40)  # x3 views each: 15 / 45 / 120 views
ROWS = 200  # rows per base relation
SKEW = 4  # join-key domain: every join fans out to ROWS^2/SKEW rows
SPEEDUP_FLOOR = 5.0  # asserted at the 100+ view size


def seeded_world(clusters: int) -> SourceWorld:
    """Relation-disjoint clusters R_i(k, v) / S_i(k, w), pre-seeded so the
    initial materialization actually has joins worth caching."""
    world = SourceWorld()
    for i in range(clusters):
        world.create_relation(
            f"R_{i}", Schema(["k", "v"]), f"src_{i}",
            [{"k": j % SKEW, "v": j} for j in range(ROWS)],
        )
        world.create_relation(
            f"S_{i}", Schema(["k", "w"]), f"src_{i}",
            [{"k": j % SKEW, "w": j} for j in range(ROWS)],
        )
    return world


def fleet_views(clusters: int):
    """Three aggregate views per cluster, all over the R_i ⋈ S_i join —
    expensive to evaluate, cheap to store (the artifact holds the group
    states, not the join)."""
    views = []
    for i in range(clusters):
        views.append(parse_view(
            f"A_{i} = SELECT k, count(*) AS n, sum(w) AS tw "
            f"FROM R_{i} JOIN S_{i} GROUP BY k"
        ))
        views.append(parse_view(
            f"B_{i} = SELECT k, count(*) AS n, sum(v) AS tv "
            f"FROM R_{i} JOIN S_{i} GROUP BY k"
        ))
        views.append(parse_view(
            f"T_{i} = SELECT count(*) AS n FROM R_{i} JOIN S_{i}"
        ))
    return views


def build_config(cache_root: str | None) -> SystemConfig:
    return SystemConfig(
        manager_kind="complete",
        merge_groups=4,
        merge_router="hash",
        seed=24,
        cache=CacheConfig(root=cache_root) if cache_root else None,
    )


def timed_build(clusters: int, cache_root: str | None):
    """Time the restart itself: replica seeding, plan compilation and
    initial materialization inside ``WarehouseSystem`` construction."""
    world = seeded_world(clusters)
    views = fleet_views(clusters)
    start = time.perf_counter()
    system = WarehouseSystem(world, views, build_config(cache_root))
    return system, time.perf_counter() - start


def warehouse_stores(system: WarehouseSystem) -> dict:
    store = system.warehouse.store
    return {
        name: dict(store.view(name).counts_view())
        for name in store.view_names
    }


def test_b24_warm_restart_vs_replay(benchmark, report, bench_out):
    def all_arms():
        results = {}
        for clusters in CLUSTER_SIZES:
            root = tempfile.mkdtemp(prefix="b24-store-")
            try:
                replay_sys, replay_s = timed_build(clusters, None)
                replay_stores = warehouse_stores(replay_sys)
                replay_sys.close()

                cold_sys, cold_s = timed_build(clusters, root)
                cold_puts = cold_sys.cache_store.puts
                cold_sys.close()

                warm_sys, warm_s = timed_build(clusters, root)
                warm_hits = warm_sys.cache_store.hits
                warm_stores = warehouse_stores(warm_sys)
                warm_sys.close()
            finally:
                shutil.rmtree(root, ignore_errors=True)
            results[clusters * 3] = {
                "replay_s": replay_s,
                "cold_s": cold_s,
                "warm_s": warm_s,
                "cold_puts": cold_puts,
                "warm_hits": warm_hits,
                "stores_match": warm_stores == replay_stores,
            }
        return results

    results = benchmark.pedantic(all_arms, rounds=1, iterations=1)

    rows = []
    for views, r in results.items():
        speedup = r["replay_s"] / r["warm_s"] if r["warm_s"] > 0 else float("inf")
        r["speedup"] = round(speedup, 1)
        rows.append([
            views,
            f"{r['replay_s']:.3f}",
            f"{r['cold_s']:.3f}",
            f"{r['warm_s']:.3f}",
            f"{speedup:.1f}x",
            str(r["stores_match"]),
        ])

    report(f"B24 — restart cost, {ROWS} rows/relation, join fan-out "
           f"{ROWS * ROWS // SKEW} rows/view:")
    report(fmt_table(
        ["views", "replay s", "cold s", "warm s", "warm speedup",
         "stores == replay"],
        rows,
    ))
    biggest = max(results)
    report("")
    report(f"Shape: at {biggest} views a warm restart is "
           f"{results[biggest]['speedup']}x faster than replay "
           f"(floor: {SPEEDUP_FLOOR}x).")

    artifact = bench_out("b24", {
        "benchmark": "b24_warm_restart",
        "question": "does a content-addressed artifact store make restart "
                    "cost independent of view evaluation cost?",
        "rows_per_relation": ROWS,
        "join_fanout_rows": ROWS * ROWS // SKEW,
        "units": "build_wall_seconds",
        "fleets": {
            str(views): {
                "replay_s": round(r["replay_s"], 4),
                "cold_s": round(r["cold_s"], 4),
                "warm_s": round(r["warm_s"], 4),
                "speedup": r["speedup"],
                "cold_puts": r["cold_puts"],
                "warm_hits": r["warm_hits"],
                "stores_match": r["stores_match"],
            }
            for views, r in results.items()
        },
    })
    if artifact is not None:
        report(f"wrote {artifact}")

    for views, r in results.items():
        # The warm start must be a restore, not a silent re-evaluation,
        # and must rebuild exactly the replayed warehouse.
        assert r["cold_puts"] >= views, (
            f"{views} views: cold build published only {r['cold_puts']} "
            f"artifacts"
        )
        assert r["warm_hits"] >= views, (
            f"{views} views: warm build hit the store only "
            f"{r['warm_hits']} times — it replayed instead of restoring"
        )
        assert r["stores_match"], (
            f"{views} views: warm-started warehouse diverged from replay"
        )

    assert results[biggest]["speedup"] >= SPEEDUP_FLOOR, (
        f"warm restart at {biggest} views was only "
        f"{results[biggest]['speedup']}x faster than replay "
        f"(floor {SPEEDUP_FLOOR}x) — the seed artifacts are not carrying "
        f"the evaluation cost"
    )


def test_b24_crash_recovery_matches_uncrashed_run(report):
    """The durability half of the claim: a cached run that loses a view
    manager *and* a merge process mid-stream restores from artifacts and
    still converges to the exact stores of an uncrashed, uncached run."""
    clusters = CLUSTER_SIZES[0]
    plan = FaultPlan(
        seed=24,
        crashes=(
            # Late enough that A_0 has checkpointed at least one batch —
            # a crash before any checkpoint falls back to replay (also
            # correct, but this test pins the restore path).
            CrashSpec("vm:A_0", at=10.0, restart_after=2.0),
            CrashSpec("merge", at=7.0, restart_after=2.0),
        ),
    )

    def run_arm(fault_plan, cache_root):
        world = seeded_world(clusters)
        config = SystemConfig(
            manager_kind="complete",
            seed=24,
            fault_plan=fault_plan,
            cache=CacheConfig(root=cache_root) if cache_root else None,
        )
        system = WarehouseSystem(world, fleet_views(clusters), config)
        spec = WorkloadSpec(updates=30, rate=2.0, seed=24,
                            mix=(0.7, 0.15, 0.15))
        post_stream(system, UpdateStreamGenerator(world, spec).transactions())
        try:
            system.run()
            assert system.check_mvc("complete").ok
            restores = sum(
                vm.cache_restores for vm in system.view_managers.values()
            ) if cache_root else 0
            if cache_root:
                restores += sum(
                    m.cache_restores for m in system.merge_processes
                )
            return warehouse_stores(system), restores
        finally:
            system.close()

    root = tempfile.mkdtemp(prefix="b24-crash-")
    try:
        crashed_stores, restores = run_arm(plan, root)
    finally:
        shutil.rmtree(root, ignore_errors=True)
    pristine_stores, _ = run_arm(None, None)

    report(f"B24 crash check: {clusters * 3} views, vm+merge crash, "
           f"{restores} artifact restore(s), "
           f"stores match uncrashed run: {crashed_stores == pristine_stores}")
    assert restores >= 2, "crash/restart never touched the artifact store"
    assert crashed_stores == pristine_stores
