"""B15 — Auxiliary views require MVC (§1.1's second motivation).

"MVC is required by some view maintenance algorithms.  For example, in
the multiple view maintenance problem described in [12, 8], auxiliary
views are stored in order to maintain primary views efficiently.  For
example, in order to maintain V = R ./ S ./ T, the algorithm might choose
to materialize relations R ./ S and S ./ T and compute V from them.  The
two sub-views must be consistent with each other whenever V is computed."

This experiment materializes the two auxiliary views A1 = R ./ S and
A2 = S ./ T at the warehouse and, after every warehouse state, derives
V = A1 ./ A2.  The derived V is *legitimate* if it equals R ./ S ./ T
evaluated at some consistent source state.

* With MVC coordination (SPA), every derived V is legitimate.
* With pass-through maintenance, derived Vs contain phantom join rows
  that never existed at any source state — the paper's warning realised.

Paper question: §1.1's second motivation — auxiliary views must be
mutually consistent for derived-view computation to be legitimate.
Reads: warehouse ``history`` states, derived-view equality, and
``check_mvc`` / ``classify()`` verdicts.
"""

from repro.relational.algebra import evaluate
from repro.relational.database import Database
from repro.relational.expressions import BaseRelation, Join
from repro.relational.parser import parse_view
from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import paper_world

from benchmarks.conftest import fmt_table

AUX_VIEWS = [
    parse_view("A1 = SELECT * FROM R JOIN S"),
    parse_view("A2 = SELECT * FROM S JOIN T"),
]
PRIMARY = parse_view("V = SELECT * FROM R JOIN S JOIN T")
DERIVE = Join(BaseRelation("A1"), BaseRelation("A2"))


def derive_v(state):
    """Compute V = A1 ./ A2 from one warehouse state's contents."""
    scratch = Database()
    a1, a2 = state.view("A1"), state.view("A2")
    scratch.create_relation("A1", a1.schema, iter(a1))
    scratch.create_relation("A2", a2.schema, iter(a2))
    return evaluate(DERIVE, scratch)


def scripted_updates():
    """Inserts with S rows unique on (B, C).

    (R ./ S) ./ (S ./ T) equals R ./ S ./ T only when S has no duplicate
    rows (duplicates square their multiplicity through the double join) —
    the [12, 8] algorithms assume keyed relations, so the workload does
    too.
    """
    updates = []
    for index in range(20):
        updates.append(Update.insert("R", {"A": 100 + index, "B": index % 4}))
        updates.append(Update.insert("S", {"B": index % 4, "C": index}))
        updates.append(Update.insert("T", {"C": index, "D": index % 3}))
    return updates


def run(kind: str):
    world = paper_world()
    system = WarehouseSystem(world, AUX_VIEWS, SystemConfig(manager_kind=kind))
    # A2's delta computation is slower than A1's (realistic: different
    # view complexity) — the uncoordinated configuration then leaves long
    # windows where the auxiliaries disagree; SPA hides them entirely.
    system.view_managers["A2"].compute_cost = lambda n, d: 5.0
    for index, update in enumerate(scripted_updates()):
        system.post_update(update, at=0.5 + 0.4 * index)
    system.run()

    # Legitimate V values: R ./ S ./ T at every consistent source state
    # of every equivalent serial schedule.  Checking against the
    # integrator-order prefix states plus single-swap neighbours would be
    # exponential; instead use the sound criterion that matters for the
    # derived-view algorithm: V derived from a *mutually consistent* pair
    # equals the evaluation at the pair's common source state, so compare
    # against the set of evaluations at all integrator-order states and
    # at all states of the warehouse's own reconstructed schedule.
    from repro.consistency.ordered import reconstruct_schedule

    legitimate = set()
    states = system.source_states()
    for state in states:
        legitimate.add(evaluate(PRIMARY.expression, state))
    # SPA may apply commuting updates out of numbering order, so its
    # legitimate states also include the reconstructed schedule's
    # prefixes.  The pass-through run's "schedule" repeats covered rows
    # (split action lists), so it gets no such extension — which can only
    # overcount its phantoms' legitimacy, never undercount.
    schedule = reconstruct_schedule(system.history)
    if len(set(schedule)) == len(schedule):
        transactions = {i: txn for i, txn, _t in system.integrator.numbered}
        replay = system._initial_state.snapshot()
        replay._frozen = False
        legitimate.add(evaluate(PRIMARY.expression, replay))
        for update_id in schedule:
            replay.apply_deltas(transactions[update_id].deltas())
            legitimate.add(evaluate(PRIMARY.expression, replay))

    phantom_states = sum(
        1 for state in system.history if derive_v(state) not in legitimate
    )
    return system, phantom_states


def test_b15_auxiliary_views(benchmark, report):
    (coordinated, phantom_c), (uncoordinated, phantom_u) = benchmark.pedantic(
        lambda: (run("complete"), run("convergent")), rounds=1, iterations=1
    )

    rows = [
        [
            "coordinated (SPA)",
            len(coordinated.history),
            phantom_c,
            coordinated.classify(),
        ],
        [
            "uncoordinated (pass-through)",
            len(uncoordinated.history),
            phantom_u,
            uncoordinated.classify(),
        ],
    ]
    report("B15 — deriving V = (R./S) ./ (S./T) from auxiliary views:")
    report(fmt_table(
        ["configuration", "warehouse states", "phantom derivations",
         "MVC level"],
        rows,
    ))
    report("")
    report("Shape: with MVC every derived V equals R./S./T at a real "
           "source state; without it, derivations see phantom (or missing) "
           "join rows — the [12,8] auxiliary-view algorithms would compute "
           "garbage.")

    assert phantom_c == 0
    assert phantom_u > 0
    assert coordinated.check_mvc("complete")
