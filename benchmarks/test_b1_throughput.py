"""B1 — Throughput: sequential integrator vs concurrent managers + painting.

§1.1 describes the "simplest solution" — a single integrator process that,
for each update, sequentially computes the changes to all views, submits
one warehouse transaction, waits for the commit, and only then takes the
next update.  "Clearly, this does not allow for any concurrency ... and is
not acceptable in a high update rate environment."

This experiment sweeps the delta-computation cost and compares makespan /
throughput of

* the sequential baseline (modelled as a single serial server doing all
  per-view work back to back — exactly the §1.1 description), and
* the Figure-1 architecture (concurrent view managers + SPA / PA).

Expected shape: once delta computation dominates, the concurrent
architecture wins by roughly the number of views computable in parallel;
PA (strong managers, batching under load) is at least as fast as SPA.

Paper question: §1.1 — is the sequential single-integrator "simplest
solution" acceptable at high update rates, and how much does the
Figure-1 concurrent architecture win?  Reads: virtual makespan
(``sim.now``) per variant; throughput and speedups are derived from it.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

UPDATES = 80
RATE = 10.0  # high update rate: arrival gaps are short vs compute cost


def sequential_baseline_makespan(compute_unit: float) -> float:
    """The §1.1 single-process solution, modelled analytically.

    For every update, the single integrator computes the delta for each
    relevant view in sequence (same per-view cost model as the concurrent
    managers), then runs one warehouse transaction and waits for it.
    Updates queue behind this serial work.
    """
    world = paper_world()
    views = paper_views_example2()
    spec = WorkloadSpec(updates=UPDATES, rate=RATE, seed=21, mix=(0.6, 0.2, 0.2))
    stream = UpdateStreamGenerator(world, spec).transactions()
    base_relations = {v.name: v.base_relations() for v in views}
    server_free = 0.0
    wh_cost = 1.0
    for arrival, txn in stream:
        relevant = [
            name
            for name, rels in base_relations.items()
            if rels & txn.relations
        ]
        work = compute_unit * len(relevant) + wh_cost
        server_free = max(server_free, arrival) + work
    return server_free


def concurrent_makespan(kind: str, compute_unit: float) -> float:
    spec = WorkloadSpec(updates=UPDATES, rate=RATE, seed=21, mix=(0.6, 0.2, 0.2))
    system = run_system(
        paper_world(),
        paper_views_example2(),
        SystemConfig(
            manager_kind=kind,
            compute_cost=lambda n, d: compute_unit,
            warehouse_txn_overhead=1.0,
            warehouse_action_cost=0.0,
            seed=21,
        ),
        spec,
    )
    level = "complete" if kind == "complete" else "strong"
    assert system.check_mvc(level)
    return system.sim.now


def test_b1_throughput(benchmark, report):
    def experiment():
        rows = []
        for compute_unit in (0.5, 2.0, 8.0):
            seq = sequential_baseline_makespan(compute_unit)
            spa = concurrent_makespan("complete", compute_unit)
            pa = concurrent_makespan("strong", compute_unit)
            rows.append(
                [
                    compute_unit,
                    f"{seq:.0f}",
                    f"{spa:.0f}",
                    f"{pa:.0f}",
                    f"{seq / spa:.2f}x",
                    f"{seq / pa:.2f}x",
                ]
            )
        return rows

    rows = benchmark.pedantic(experiment, rounds=1, iterations=1)
    report(f"B1 — makespan for {UPDATES} updates at rate {RATE}/time-unit:")
    report(fmt_table(
        ["delta cost", "sequential", "SPA", "PA", "SPA speedup", "PA speedup"],
        rows,
    ))
    report("")
    report("Shape: concurrency wins, and wins more as delta computation "
           "dominates; PA (batching) keeps up with or beats SPA.")

    # Shape assertions on the heaviest configuration.
    heavy = rows[-1]
    seq, spa, pa = float(heavy[1]), float(heavy[2]), float(heavy[3])
    assert spa < seq and pa < seq
    assert pa <= spa * 1.05  # PA at least matches SPA under load
    # Speedup grows with compute cost.
    light_speedup = float(rows[0][4].rstrip("x"))
    heavy_speedup = float(rows[-1][4].rstrip("x"))
    assert heavy_speedup > light_speedup
