"""EX4 — Example 4: SPA breaks under strongly consistent managers.

V1's strongly consistent manager batches U1 and U3 into a single AL13.
A naive SPA (paper: "let us assume we do make VUT[1,1] red too") would
then apply rows 1 and 2 once all per-update lists arrive — without V1's
batched actions, violating mutual consistency.  PA on the same event
stream holds everything until the batch can be applied atomically.
"""

from repro.merge.pa import PaintingAlgorithm
from repro.merge.spa import SimplePaintingAlgorithm
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList

from benchmarks.conftest import fmt_table


def make_al(view, covered, tag=0):
    return ActionList.from_delta(view, view, tuple(covered), Delta.insert(Row(x=tag)))


EVENTS = [
    ("REL1", "rel", 1, {"V1", "V2"}),
    ("REL2", "rel", 2, {"V2", "V3"}),
    ("REL3", "rel", 3, {"V1", "V2"}),
    ("AL13", "al", "V1", [1, 3]),   # the batched list
    ("AL21", "al", "V2", [1]),
    ("AL22", "al", "V2", [2]),
    ("AL32", "al", "V3", [2]),
    ("AL23", "al", "V2", [3]),
]


def drive(algorithm):
    trace = []
    for name, kind, a, b in EVENTS:
        if kind == "rel":
            units = algorithm.receive_rel(a, frozenset(b))
        else:
            units = algorithm.receive_action_list(make_al(a, b))
        trace.append((name, units))
    return trace


def run():
    naive = drive(SimplePaintingAlgorithm(("V1", "V2", "V3"), strict=False))
    painting = drive(PaintingAlgorithm(("V1", "V2", "V3")))
    return naive, painting


def atomicity_violations(trace):
    """Units applying row 1 or 3 without V1's batched actions."""
    violations = 0
    for _name, units in trace:
        for unit in units:
            if set(unit.rows) & {1, 3}:
                views = {al.view for al in unit.action_lists}
                covered = {r for al in unit.action_lists for r in al.covered}
                if "V1" not in views or not {1, 3} <= covered:
                    violations += 1
    return violations


def test_example4_spa_breaks_pa_does_not(benchmark, report):
    naive, painting = benchmark.pedantic(run, rounds=1, iterations=1)

    rows = []
    for (name, naive_units), (_n2, pa_units) in zip(naive, painting):
        rows.append(
            [
                name,
                str([u.rows for u in naive_units]) or "-",
                str([u.rows for u in pa_units]) or "-",
            ]
        )
    report("Example 4 — same event stream through naive SPA vs PA:")
    report(fmt_table(["event", "naive SPA applies", "PA applies"], rows))

    naive_bad = atomicity_violations(naive)
    pa_bad = atomicity_violations(painting)
    report("")
    report(f"naive SPA atomicity violations: {naive_bad}")
    report(f"PA atomicity violations:        {pa_bad}")
    report("PA applies all three rows as one transaction only when AL23 "
           "completes the picture — 'all three views will be brought into "
           "state 3 directly' (paper §5.1).")

    assert naive_bad >= 1, "the Example-4 failure must reproduce"
    assert pa_bad == 0
    # PA's final application covers all rows {1,2,3} together.
    final_units = painting[-1][1]
    assert [u.rows for u in final_units] == [(1, 2, 3)]
