"""B8 — Mixed view-manager fleets and the weakest-level rule (§6.3).

"When there is a combination of different types of view managers in the
system, it is always possible to use the merge algorithm corresponding to
the view manager guaranteeing the weakest level of consistency."

The experiment runs the same workload over fleets of increasing
heterogeneity and reports which algorithm the weakest-level rule selects
and the MVC level each run verifies.

Paper question: §6.3 — does the weakest-level rule pick the right merge
algorithm for heterogeneous fleets?  Reads: the selected algorithm name,
``classify()`` and ``check_mvc`` verdicts per fleet (no timing metrics).
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

FLEETS = [
    ("all complete", {}),
    ("complete + strong", {"V2": "strong"}),
    ("complete + periodic", {"V3": "periodic"}),
    ("strong + complete-N", {"V1": "strong", "V2": "complete-n", "V3": "strong"}),
    ("with one convergent", {"V2": "convergent"}),
]


def run_fleet(overrides):
    spec = WorkloadSpec(updates=60, rate=2.0, seed=29, mix=(0.6, 0.2, 0.2),
                        arrivals="poisson")
    system = run_system(
        paper_world(),
        paper_views_example2(),
        SystemConfig(
            manager_kind="complete",
            manager_kinds=overrides,
            refresh_period=20.0,
            block_size=4,
            seed=29,
        ),
        spec,
    )
    algorithm = type(system.merge_processes[0].algorithm).__name__
    expected = system.expected_level()
    achieved = system.classify()
    verified = bool(system.check_mvc(expected))
    return algorithm, expected, achieved, verified


def test_b8_mixed_fleets(benchmark, report):
    results = benchmark.pedantic(
        lambda: [(name, run_fleet(spec)) for name, spec in FLEETS],
        rounds=1, iterations=1,
    )

    rows = [
        [name, algorithm, expected, achieved, str(verified)]
        for name, (algorithm, expected, achieved, verified) in results
    ]
    report("B8 — §6.3 mixed fleets under the weakest-level rule:")
    report(fmt_table(
        ["fleet", "merge algorithm", "promised", "achieved", "verified"],
        rows,
    ))
    report("")
    report("Shape: the selected algorithm always delivers at least the "
           "promised (weakest) level; heterogeneity never breaks MVC.")

    by_name = dict(results)
    order = {"convergent": 0, "strong": 1, "complete": 2}
    assert by_name["all complete"][0] == "SimplePaintingAlgorithm"
    assert by_name["complete + strong"][0] == "PaintingAlgorithm"
    assert by_name["with one convergent"][0] == "PassThroughMerge"
    for name, (_alg, expected, achieved, verified) in results:
        assert verified, f"fleet {name} failed its promised level"
        assert order[achieved] >= order[expected]
