"""EX5 — Example 5: the full Painting Algorithm trace, t0 through t7.

Receipt order REL1, REL2, REL3, AL21, AL23 (covering U2+U3), AL32, AL11,
AL33.  The regenerated trace must show the paper's milestones:

* t1-t3 — nothing can be applied (ProcessRow returns false each time);
* t4/t5 — row 1 applied alone when AL11 arrives, then purged;
* t6/t7 — AL33 triggers ProcessRow(3) -> ProcessRow(2) -> (ProcessRow(3)
  short-circuits via ApplyRows) and rows 2+3 apply as ONE transaction.
"""

from repro.merge.pa import PaintingAlgorithm
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList

from benchmarks.conftest import fmt_table


def make_al(view, covered, tag=0):
    return ActionList.from_delta(view, view, tuple(covered), Delta.insert(Row(x=tag)))


EVENTS = [
    ("REL1", "rel", 1, {"V1", "V2"}),
    ("REL2", "rel", 2, {"V2", "V3"}),
    ("REL3", "rel", 3, {"V2", "V3"}),
    ("AL21", "al", "V2", [1]),
    ("AL23", "al", "V2", [2, 3]),
    ("AL32", "al", "V3", [2]),
    ("AL11", "al", "V1", [1]),
    ("AL33", "al", "V3", [3]),
]


def run():
    pa = PaintingAlgorithm(("V1", "V2", "V3"))
    trace = []
    states = {}
    for name, kind, a, b in EVENTS:
        if kind == "rel":
            units = pa.receive_rel(a, frozenset(b))
        else:
            units = pa.receive_action_list(make_al(a, b))
        trace.append((name, [u.rows for u in units]))
        if name == "AL23":
            states["after AL23"] = pa.vut.snapshot()
    return pa, trace, states


def test_example5_pa_trace(benchmark, report):
    pa, trace, states = benchmark.pedantic(run, rounds=1, iterations=1)

    report("Example 5 — PA event trace:")
    rows = [[name, str(applied) if applied else "-"] for name, applied in trace]
    report(fmt_table(["event", "rows applied (single txn per group)"], rows))
    report("")
    report("VUT (color,state) after AL23, matching the paper's t1,t2 table:")
    report(f"  {states['after AL23']}")

    applied = dict(trace)
    assert applied["AL21"] == [] and applied["AL23"] == []
    assert applied["AL32"] == [], "t2: ProcessRow(3) returns false"
    assert applied["AL11"] == [(1,)], "t4/t5: row 1 applied alone"
    assert applied["AL33"] == [(2, 3)], "t6/t7: rows 2,3 in one transaction"
    assert pa.idle()

    snap = states["after AL23"]
    # Paper: (1,V2) = (r,1); (2,V2) = (3,V2) = (r,3).
    assert snap[1]["V2"] == "(r,1)"
    assert snap[2]["V2"] == "(r,3)"
    assert snap[3]["V2"] == "(r,3)"
