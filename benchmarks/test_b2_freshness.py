"""B2 — View freshness: the cost of merging (§7's first planned question).

"We plan to investigate the effect of the merging process on view
freshness (recall that the merging delays the application of some ALs to
the warehouse views)."

The experiment measures, per source update, the lag from source commit to
first warehouse visibility, under three coordinations at increasing update
rates:

* pass-through (no MVC, the freshness floor),
* SPA over complete managers (MVC-complete),
* PA over strong managers (MVC-strong).

Expected shape: coordination costs some freshness over pass-through (held
action lists), the premium stays bounded at moderate load, and everything
degrades as the system approaches saturation.

Paper question: §7 — "the effect of the merging process on view
freshness".  Reads: ``RunMetrics.mean_staleness`` / ``p95_staleness`` /
``max_staleness`` — the per-update source-commit→warehouse-visibility
lag, the same quantity ``UpdateLineage.latency`` reports per update
(``python -m repro inspect`` shows where any one update's lag went).
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

CONFIGS = [
    ("pass-through", SystemConfig(manager_kind="convergent")),
    ("SPA/complete", SystemConfig(manager_kind="complete")),
    ("PA/strong", SystemConfig(manager_kind="strong")),
]


def run_at(rate: float, name: str, config: SystemConfig):
    spec = WorkloadSpec(
        updates=100, rate=rate, seed=8, mix=(0.6, 0.2, 0.2), arrivals="poisson"
    )
    system = run_system(paper_world(), paper_views_example2(), config, spec)
    return system.metrics()


def test_b2_freshness(benchmark, report):
    def experiment():
        table = {}
        for rate in (0.5, 2.0, 6.0):
            for name, config in CONFIGS:
                metrics = run_at(rate, name, config)
                table[(rate, name)] = metrics
        return table

    table = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for rate in (0.5, 2.0, 6.0):
        for name, _config in CONFIGS:
            metrics = table[(rate, name)]
            rows.append(
                [
                    rate,
                    name,
                    f"{metrics.mean_staleness:.2f}",
                    f"{metrics.p95_staleness:.2f}",
                    f"{metrics.max_staleness:.2f}",
                ]
            )
    report("B2 — staleness (source commit -> warehouse visibility):")
    report(fmt_table(
        ["update rate", "coordination", "mean", "p95", "max"], rows
    ))
    report("")
    report("Shape: merging adds a bounded freshness premium over "
           "pass-through; staleness grows with the update rate.")

    for rate in (0.5, 2.0, 6.0):
        floor = table[(rate, "pass-through")].mean_staleness
        spa = table[(rate, "SPA/complete")].mean_staleness
        # The MVC premium exists but stays within a small multiple at
        # moderate load.
        assert spa >= floor * 0.9
        if rate <= 2.0:
            assert spa <= floor * 4 + 10
    # Staleness grows with rate for the coordinated configurations.
    assert (
        table[(6.0, "SPA/complete")].mean_staleness
        > table[(0.5, "SPA/complete")].mean_staleness * 0.8
    )
