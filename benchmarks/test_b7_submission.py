"""B7 — Submission-policy ablation (§4.3).

"There are a few solutions to this problem; each may be appropriate in
different scenarios": submit strictly sequentially, sequence only
dependent transactions, or hand dependency information to the warehouse
DBMS.  Plus the unsafe strawman: submit eagerly with no ordering control.

The experiment runs the same workload against a 4-executor warehouse under
each policy and reports makespan, staleness and the verified MVC level.

Expected shape: all three safe policies preserve MVC-completeness;
dependency-aware policies beat fully-sequential on makespan by overlapping
independent transactions; the eager policy loses consistency.

Paper question: §4.3 — which commit-order control to use ("each may be
appropriate in different scenarios")?  Reads: ``RunMetrics.makespan`` /
``mean_staleness`` and the verified MVC level per policy.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import clustered_views, clustered_world

from benchmarks.conftest import fmt_table, run_system

POLICIES = ("sequential", "dependency-sequenced", "dbms-dependency", "eager")


def run(policy: str):
    spec = WorkloadSpec(
        updates=120, rate=3.0, seed=23, mix=(0.6, 0.2, 0.2),
        arrivals="poisson", value_range=6,
    )
    system = run_system(
        clustered_world(3),
        clustered_views(3),
        SystemConfig(
            manager_kind="complete",
            submission_policy=policy,
            warehouse_executors=4,
            warehouse_txn_overhead=1.5,
            warehouse_action_cost=0.2,
            seed=23,
        ),
        spec,
    )
    metrics = system.metrics()
    return system.classify(), metrics.makespan, metrics.mean_staleness


def test_b7_submission_policies(benchmark, report):
    results = benchmark.pedantic(
        lambda: {policy: run(policy) for policy in POLICIES},
        rounds=1, iterations=1,
    )

    rows = [
        [policy, level, f"{makespan:.0f}", f"{staleness:.1f}"]
        for policy, (level, makespan, staleness) in results.items()
    ]
    report("B7 — §4.3 submission policies on a 4-executor warehouse:")
    report(fmt_table(["policy", "MVC level", "makespan", "mean staleness"], rows))
    report("")
    report("Shape: the three safe policies stay complete; exploiting "
           "independence (dependency-sequenced / dbms-dependency) beats "
           "strict sequencing; eager submission sacrifices consistency.")

    assert results["sequential"][0] == "complete"
    assert results["dependency-sequenced"][0] == "complete"
    assert results["dbms-dependency"][0] == "complete"
    assert results["eager"][0] in ("convergent", "inconsistent")
    # Dependency-awareness helps staleness (more commit concurrency).
    assert results["dbms-dependency"][2] <= results["sequential"][2]
