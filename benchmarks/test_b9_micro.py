"""B9 — Microbenchmarks: VUT operations and painting-algorithm event cost.

The merge process must keep up with REL/AL traffic, so the per-event cost
of the data structure and of both algorithms matters.  These are true
microbenchmarks (many rounds) over synthetic event streams:

* VUT allocate/color/purge cycle,
* SPA end-to-end event processing (n updates x 3 views),
* PA with batch-2 action lists over the same pattern.

Paper question: §4 (implicitly) — is per-event merge bookkeeping cheap
enough to keep up with REL/AL traffic?  Reads: wall-clock per operation
from ``pytest-benchmark``; no simulation metrics are involved.
"""

import random

from repro.merge.pa import PaintingAlgorithm
from repro.merge.spa import SimplePaintingAlgorithm
from repro.merge.vut import Color, ViewUpdateTable
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList

VIEWS = ("V1", "V2", "V3")
N_UPDATES = 60


def _emit(bench_out, name: str, benchmark, question: str):
    """Write BENCH_b9_<name>.json from pytest-benchmark's own stats."""
    stats = benchmark.stats.stats
    bench_out(f"b9_{name}", {
        "benchmark": f"b9_{name}",
        "question": question,
        "units": "seconds_per_round",
        "rounds": stats.rounds,
        "arms": {name: {"mean": stats.mean, "min": stats.min,
                        "stddev": stats.stddev}},
    })


def make_al(view, covered):
    return ActionList.from_delta(
        view, view, tuple(covered), Delta.insert(Row(x=covered[-1]))
    )


def test_b9_vut_cycle(benchmark, bench_out):
    def cycle():
        vut = ViewUpdateTable(VIEWS)
        for row in range(1, N_UPDATES + 1):
            vut.allocate_row(row, frozenset(VIEWS))
            for view in VIEWS:
                vut.set_color(row, view, Color.RED)
            for view in VIEWS:
                vut.set_color(row, view, Color.GRAY)
            vut.purge(row)
        return vut

    vut = benchmark(cycle)
    assert len(vut) == 0
    _emit(bench_out, "vut_cycle", benchmark,
          "per-round cost of the VUT allocate/color/purge cycle")


def _spa_events():
    rng = random.Random(9)
    rels = [(i, frozenset(v for v in VIEWS if rng.random() < 0.7) or
             frozenset({"V1"})) for i in range(1, N_UPDATES + 1)]
    return rels


def test_b9_spa_event_processing(benchmark, bench_out):
    rels = _spa_events()

    def run():
        spa = SimplePaintingAlgorithm(VIEWS)
        units = 0
        for update_id, views in rels:
            spa.receive_rel(update_id, views)
        # Deliver lists view by view (worst-case holding pattern).
        for view in VIEWS:
            for update_id, views in rels:
                if view in views:
                    units += len(spa.receive_action_list(make_al(view, [update_id])))
        assert spa.idle()
        return units

    units = benchmark(run)
    assert units > 0
    _emit(bench_out, "spa_events", benchmark,
          "per-round cost of SPA end-to-end event processing")


def test_b9_pa_event_processing_batched(benchmark, bench_out):
    rels = _spa_events()

    def run():
        pa = PaintingAlgorithm(VIEWS)
        units = 0
        for update_id, views in rels:
            pa.receive_rel(update_id, views)
        for view in VIEWS:
            mine = [u for u, views in rels if view in views]
            for start in range(0, len(mine), 2):
                batch = mine[start:start + 2]
                units += len(pa.receive_action_list(make_al(view, batch)))
        assert pa.idle()
        return units

    units = benchmark(run)
    assert units > 0
    _emit(bench_out, "pa_events_batched", benchmark,
          "per-round cost of PA with batch-2 action lists")


def test_b9_kernel_fast_path_guard(benchmark, bench_out):
    """The laneless hot-loop fast path must not be slower than the
    general path it bypasses (``Simulator._push`` skips ``adjust()`` and
    the lane-clamp bookkeeping only under the exact default Scheduler).
    Timing guard is loose (0.9x) — this catches the fast path rotting
    into a pessimisation, not micro-regressions."""
    import time

    from repro.sim.kernel import Simulator
    from repro.sim.scheduler import Scheduler

    class TrivialScheduler(Scheduler):
        """Same behaviour, different type: forces the general path."""

    events = 20_000

    def drive(sim):
        noop = lambda: None
        start = time.perf_counter()
        for i in range(events):
            sim.schedule(float(i % 7), noop)
        sim.run()
        return time.perf_counter() - start

    def both():
        return drive(Simulator()), drive(Simulator(scheduler=TrivialScheduler()))

    fast_s, slow_s = benchmark.pedantic(both, rounds=3, iterations=1)
    fast_rate, slow_rate = events / fast_s, events / slow_s

    bench_out("b9_kernel_fast_path", {
        "benchmark": "b9_kernel_fast_path",
        "question": "does the laneless default-scheduler fast path beat "
                    "the general scheduling path?",
        "units": "events_per_wall_second",
        "arms": {
            "fast_path": {"events_per_sec": round(fast_rate)},
            "general_path": {"events_per_sec": round(slow_rate)},
        },
        "ratio": round(fast_rate / slow_rate, 3),
    })

    assert fast_rate >= 0.9 * slow_rate, (
        f"fast path ({fast_rate:.0f} ev/s) fell behind the general path "
        f"({slow_rate:.0f} ev/s) — the bypass is now a pessimisation"
    )
