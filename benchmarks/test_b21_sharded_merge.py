"""B21 — Sharded merge throughput and multi-query optimization.

Two scale questions about the §6.1 distributed merge once the view suite
grows past toy size:

1. **Sharding** — 36 relation-disjoint clusters x 3 views = 108 views,
   packed onto {1, 2, 4, 8} merge shards by the consistent-hash router
   (``merge_router="hash"``).  With a per-message merge cost the single
   merge process is the pipeline bottleneck; shards carry
   relation-disjoint work concurrently, so aggregate throughput
   (warehouse transactions per unit of simulated time) should scale with
   the fleet while every arm preserves MVC-completeness.

2. **MQO** — 40 views of one shard sharing an R ./ S prefix, compiled
   through a :class:`~repro.relational.plan.PlanLibrary` versus 40
   independent plans.  Interning shared subexpressions means one delta
   probe per batch feeds every reader, so the library's index-probe
   count should collapse by ~the sharing factor.

Paper question: §6.1 "each group of views is assigned one merge
process" — does the split actually buy throughput at warehouse scale,
and how much maintenance work does same-shard sharing remove?  Reads:
simulated throughput per shard count and measured probe reduction;
emits BENCH_b21.json via ``--bench-out``.
"""

from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    BaseRelation,
    Join,
    Project,
    Select,
)
from repro.relational.plan import MaintenancePlan, PlanLibrary
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import clustered_views, clustered_world

from benchmarks.conftest import fmt_table, timed_run_system, wall_clock_section

CLUSTERS = 36
VIEWS_PER_CLUSTER = 3  # 108 views total
UPDATES = 200
SHARD_COUNTS = (1, 2, 4, 8)

MQO_VIEWS = 40
MQO_BATCHES = 40


def run_sharded(shards: int):
    spec = WorkloadSpec(updates=UPDATES, rate=40.0, seed=11,
                        arrivals="poisson", mix=(0.6, 0.2, 0.2))
    return timed_run_system(
        clustered_world(CLUSTERS),
        clustered_views(CLUSTERS, VIEWS_PER_CLUSTER),
        SystemConfig(
            manager_kind="complete",
            merge_algorithm="spa",
            merge_groups=shards,
            merge_router="hash",
            merge_message_cost=0.4,
            warehouse_executors=16,
            warehouse_txn_overhead=0.05,
            trace_enabled=False,
            seed=11,
        ),
        spec,
    )


def test_b21_sharded_merge_throughput(benchmark, report, bench_out):
    results = benchmark.pedantic(
        lambda: {n: run_sharded(n) for n in SHARD_COUNTS},
        rounds=1, iterations=1,
    )

    arms = {}
    for shards, (system, wall) in results.items():
        metrics = system.metrics()
        merge_util = max(
            metrics.process(m.name).utilisation
            for m in system.merge_processes
        )
        arms[shards] = {
            "merges": len(system.merge_processes),
            "makespan": metrics.makespan,
            "throughput": metrics.throughput,
            "max_merge_utilisation": merge_util,
            "mvc_complete": bool(system.check_mvc("complete")),
            "wall_clock": wall_clock_section(system, wall),
        }

    speedup = arms[8]["throughput"] / arms[1]["throughput"]

    report(f"B21 — {CLUSTERS * VIEWS_PER_CLUSTER} views over {CLUSTERS} "
           f"disjoint clusters, hash-routed onto merge shards:")
    report(fmt_table(
        ["shards", "merges", "makespan", "txns/time", "max merge util",
         "MVC complete"],
        [
            [
                shards,
                arm["merges"],
                f"{arm['makespan']:.1f}",
                f"{arm['throughput']:.3f}",
                f"{arm['max_merge_utilisation']:.1%}",
                str(arm["mvc_complete"]),
            ]
            for shards, arm in arms.items()
        ],
    ))
    report("")
    report(f"Shape: aggregate merge throughput scales "
           f"{speedup:.1f}x from 1 to 8 shards, MVC-complete throughout.")

    artifact = bench_out("b21", {
        "benchmark": "b21_sharded_merge",
        "question": "does hash-sharding the merge scale throughput at "
                    "100+ views while preserving MVC?",
        "views": CLUSTERS * VIEWS_PER_CLUSTER,
        "clusters": CLUSTERS,
        "updates": UPDATES,
        "units": "warehouse_transactions_per_sim_time",
        "arms": {
            str(shards): {
                "merges": arm["merges"],
                "makespan": round(arm["makespan"], 2),
                "throughput": round(arm["throughput"], 4),
                "max_merge_utilisation": round(
                    arm["max_merge_utilisation"], 4
                ),
                "mvc_complete": arm["mvc_complete"],
                "wall_clock": arm["wall_clock"],
            }
            for shards, arm in arms.items()
        },
        "speedup_8_vs_1": round(speedup, 2),
    })
    if artifact is not None:
        report(f"wrote {artifact}")

    # Acceptance shape: every arm keeps its promise, 8 shards buy >= 3x.
    assert all(arm["mvc_complete"] for arm in arms.values())
    for shards, arm in arms.items():
        assert arm["merges"] == min(shards, CLUSTERS)
    assert speedup >= 3.0, (
        f"8 shards bought only {speedup:.2f}x aggregate throughput over a "
        f"single merge — the shard router is not spreading the load"
    )


# ---------------------------------------------------------------------------
# MQO: one shard, many views over a shared join prefix
# ---------------------------------------------------------------------------

def mqo_db() -> Database:
    db = Database()
    db.create_relation(
        "R", Schema(["A", "B"]), [Row(A=i, B=i % 8) for i in range(64)]
    )
    db.create_relation(
        "S", Schema(["B", "C"]), [Row(B=i % 8, C=i) for i in range(32)]
    )
    return db


MQO_JOIN = Join(BaseRelation("R"), BaseRelation("S"))
MQO_EXPRS = {
    f"V{i:02d}": Project(("A", "C"), Select(compare("C", "<", i), MQO_JOIN))
    for i in range(MQO_VIEWS)
}


def mqo_stream():
    """Insert fresh rows, then modify the row the stream itself added —
    never a seed row, so the stream replays cleanly at any length."""
    for k in range(MQO_BATCHES):
        yield {"R": Delta.insert(Row(A=1_000 + k, B=k % 8))}
        yield {"S": Delta.insert(Row(B=k % 8, C=200 + k))}
        yield {
            "S": Delta.modify(
                Row(B=k % 8, C=200 + k), Row(B=(k + 1) % 8, C=200 + k)
            )
        }


def test_b21_mqo_equivalence_guard():
    """Library-compiled plans must match the unindexed delta rules."""
    db_lib, db_legacy = mqo_db(), mqo_db()
    library = PlanLibrary(db_lib)
    for name, expr in MQO_EXPRS.items():
        library.compile(name, expr)
    for deltas in mqo_stream():
        planned = library.propagate_all(deltas)
        for name, expr in MQO_EXPRS.items():
            assert planned[name] == propagate_delta(expr, db_legacy, deltas)
        db_lib.apply_deltas(deltas)
        db_legacy.apply_deltas(deltas)
        library.advance_all()


def test_b21_mqo_probe_reduction(report, bench_out):
    db_lib, db_solo = mqo_db(), mqo_db()
    library = PlanLibrary(db_lib)
    for name, expr in MQO_EXPRS.items():
        library.compile(name, expr)
    solo = [MaintenancePlan(expr, db_solo) for expr in MQO_EXPRS.values()]

    for deltas in mqo_stream():
        library.propagate_all(deltas)
        db_lib.apply_deltas(deltas)
        library.advance_all()
        for plan in solo:
            plan.propagate(deltas)
        db_solo.apply_deltas(deltas)
        for plan in solo:
            plan.advance()

    lib_probes = library.probe_count()
    solo_probes = sum(plan.probe_count() for plan in solo)
    reduction = solo_probes / max(lib_probes, 1)
    mqo = library.report()

    report(f"B21 MQO — {MQO_VIEWS} views sharing an R ./ S prefix, "
           f"{MQO_BATCHES * 3} delta batches:")
    report(fmt_table(
        ["arm", "index probes", "unique nodes"],
        [
            ["independent plans", solo_probes,
             sum(plan.node_count() for plan in solo)],
            ["plan library", lib_probes, mqo["unique_nodes"]],
        ],
    ))
    report("")
    report(f"Shape: sharing collapses delta probes {reduction:.1f}x; "
           f"compile interned {mqo['nodes_saved']} duplicate nodes across "
           f"{mqo['shared_subexpressions']} shared subexpressions.")

    artifact = bench_out("b21_mqo", {
        "benchmark": "b21_mqo_probe_reduction",
        "question": "how much maintenance work does multi-query "
                    "optimization remove within one merge shard?",
        "views": MQO_VIEWS,
        "batches": MQO_BATCHES * 3,
        "units": "index_probes_total",
        "independent_probes": solo_probes,
        "library_probes": lib_probes,
        "probe_reduction": round(reduction, 2),
        "compile_report": {
            "plans": mqo["plans"],
            "total_nodes": mqo["total_nodes"],
            "unique_nodes": mqo["unique_nodes"],
            "nodes_saved": mqo["nodes_saved"],
            "shared_subexpressions": mqo["shared_subexpressions"],
        },
    })
    if artifact is not None:
        report(f"wrote {artifact}")

    assert reduction >= 10.0, (
        f"the plan library removed only {reduction:.1f}x of the delta "
        f"probes over {MQO_VIEWS} shared-prefix views — sharing is broken"
    )
    assert mqo["nodes_saved"] > 0
