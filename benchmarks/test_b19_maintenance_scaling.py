"""B19 — Indexed maintenance cost vs. the size of the un-touched join side.

The unindexed delta rules pay O(|base|) per update: the join rule matches
the delta against the *entire* opposite side.  The compiled
:class:`~repro.relational.plan.MaintenancePlan` probes hash indexes
instead, touching only rows that share the delta's join keys — so
per-update cost should stay ~flat while the un-touched side grows 10x,
and the legacy path's linear growth should show in the same run.

Workload: ``V = R |><| S`` with |R| fixed at 100 and S's join attribute
unique per row, so every update (an insert+delete pair on R) matches
exactly one S row at every size — any cost growth is pure scan overhead,
not growing match sets.  Updates touch only R; S is the un-touched side,
grown 10x.

Paper question: ROADMAP north star ("as fast as the hardware allows")
via the self-maintenance literature (arXiv:1406.7685) — auxiliary
structures make maintenance delta-proportional.  Reads: wall-clock per
update per engine and size; emits BENCH_b19.json via ``--bench-out``.
"""

import time

from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import BaseRelation, Join
from repro.relational.plan import MaintenancePlan
from repro.relational.rows import Row
from repro.relational.schema import Schema

from benchmarks.conftest import fmt_table

EXPR = Join(BaseRelation("R"), BaseRelation("S"))
R_SIZE = 100
SIZES = (2_000, 20_000)  # the un-touched side S, grown 10x
UPDATES = 150
REPEATS = 3


def make_db(s_size: int) -> Database:
    db = Database()
    db.create_relation(
        "R", Schema(["A", "B"]), [Row(A=i, B=i) for i in range(R_SIZE)]
    )
    # Unique join key per S row: every update matches exactly one row,
    # at every size.
    db.create_relation(
        "S", Schema(["B", "C"]), [Row(B=j, C=j) for j in range(s_size)]
    )
    return db


def update_stream():
    """Insert+delete pairs on R only — state returns to the baseline."""
    for k in range(UPDATES):
        row = Row(A=1_000 + k, B=k % R_SIZE)
        yield {"R": Delta.insert(row)}
        yield {"R": Delta.delete(row)}


def time_legacy(s_size: int) -> float:
    """Best-of seconds per update for the unindexed propagate_delta path."""
    db = make_db(s_size)
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        n = 0
        for deltas in update_stream():
            propagate_delta(EXPR, db, deltas)
            db.apply_deltas(deltas)
            n += 1
        best = min(best, (time.perf_counter() - start) / n)
    return best


def time_indexed(s_size: int) -> float:
    """Best-of seconds per update for the compiled indexed plan."""
    db = make_db(s_size)
    plan = MaintenancePlan(EXPR, db)
    warm = {"R": Delta.insert(Row(A=999_999, B=0))}
    plan.propagate(warm)  # build the probe indexes outside the timed region
    best = float("inf")
    for _ in range(REPEATS):
        start = time.perf_counter()
        n = 0
        for deltas in update_stream():
            plan.propagate(deltas)
            db.apply_deltas(deltas)
            plan.advance()
            n += 1
        best = min(best, (time.perf_counter() - start) / n)
    return best


def test_b19_equivalence_guard():
    """The two engines must emit identical deltas on this workload."""
    db_a, db_b = make_db(500), make_db(500)
    plan = MaintenancePlan(EXPR, db_b)
    for deltas in update_stream():
        legacy = propagate_delta(EXPR, db_a, deltas)
        planned = plan.propagate(deltas)
        assert planned == legacy
        db_a.apply_deltas(deltas)
        db_b.apply_deltas(deltas)
        plan.advance()


def test_b19_maintenance_scaling(benchmark, report, bench_out):
    def experiment():
        results = {}
        for engine, timer in (("legacy", time_legacy), ("indexed", time_indexed)):
            results[engine] = {size: timer(size) for size in SIZES}
        return results

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)

    small, large = SIZES
    ratios = {
        engine: times[large] / times[small] for engine, times in results.items()
    }
    speedup_at_large = results["legacy"][large] / results["indexed"][large]

    report("B19 — per-update maintenance cost as the un-touched side grows 10x:")
    report(fmt_table(
        ["engine", f"|S|={small} (us/upd)", f"|S|={large} (us/upd)", "growth"],
        [
            [
                engine,
                f"{times[small] * 1e6:.1f}",
                f"{times[large] * 1e6:.1f}",
                f"{ratios[engine]:.2f}x",
            ]
            for engine, times in results.items()
        ],
    ))
    report("")
    report(f"Shape: legacy grows ~linearly with |S| ({ratios['legacy']:.1f}x), "
           f"the indexed plan stays ~flat ({ratios['indexed']:.2f}x) and wins "
           f"{speedup_at_large:.0f}x at |S|={large}.")

    artifact = bench_out("b19", {
        "benchmark": "b19_maintenance_scaling",
        "question": "does per-update maintenance cost stay flat as the "
                    "un-touched join side grows 10x?",
        "units": "seconds_per_update",
        "view": "V = R |><| S",
        "r_size": R_SIZE,
        "updates_timed": UPDATES * 2,
        "sizes": list(SIZES),
        "arms": {
            engine: {str(size): times[size] for size in SIZES}
            for engine, times in results.items()
        },
        "growth_ratios": {k: round(v, 4) for k, v in ratios.items()},
        "indexed_speedup_at_large": round(speedup_at_large, 2),
    })
    if artifact is not None:
        report(f"wrote {artifact}")

    # The acceptance shape: indexed < 2x growth, legacy visibly linear.
    assert ratios["indexed"] < 2.0, (
        f"indexed per-update cost grew {ratios['indexed']:.2f}x over a 10x "
        f"side growth — the index is not delta-proportional"
    )
    assert ratios["legacy"] > 3.0, (
        f"legacy per-update cost grew only {ratios['legacy']:.2f}x — the "
        f"baseline is no longer scan-bound, re-examine the benchmark"
    )
    assert speedup_at_large > 5.0
