"""B3 — When does the merge process become the bottleneck? (§7, §6.1)

"...and under which update load the merge process becomes a bottleneck
for the system.  [§6.1] The merge process may become a bottleneck as the
system scales up ... In this case, a merge process can be split into
several ones."

The experiment fixes a per-message merge coordination cost, sweeps the
update rate over a 3-cluster world (6 views), and reports merge
utilisation, queue growth, and staleness for a single merge process vs the
§6.1 partition (3 merge processes).

Expected shape: the single merge saturates (utilisation -> 1, staleness
explodes) at roughly one third of the load the partitioned configuration
sustains.

Paper question: §7 / §6.1 — "under which update load the merge process
becomes a bottleneck", and does the §6.1 split recover it?  Reads: merge
``utilisation()`` and ``mean_queue_length()`` (registry instruments
``proc_busy_time`` / ``proc_queue_length``) plus
``RunMetrics.mean_staleness`` per rate.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import clustered_views, clustered_world

from benchmarks.conftest import fmt_table, run_system

MERGE_COST = 0.35
RATES = (0.5, 1.5, 3.0, 6.0)


def run_at(rate: float, groups: int):
    spec = WorkloadSpec(
        updates=150, rate=rate, seed=12, mix=(0.6, 0.2, 0.2),
        arrivals="poisson", value_range=6,
    )
    system = run_system(
        clustered_world(3),
        clustered_views(3),
        SystemConfig(
            manager_kind="complete",
            merge_groups=groups,
            merge_message_cost=MERGE_COST,
            # Submit with DBMS dependency annotations so the merge never
            # stalls on commit round-trips — its own service rate is the
            # resource under study.
            submission_policy="dbms-dependency",
            warehouse_executors=4,
            # Keep delta computation cheap so the merge process — not the
            # view managers — is the contended resource under study.
            compute_cost=lambda n, d: 0.05,
            warehouse_txn_overhead=0.05,
            warehouse_action_cost=0.0,
            seed=12,
        ),
        spec,
    )
    metrics = system.metrics()
    merge_util = max(
        metrics.process(m.name).utilisation for m in system.merge_processes
    )
    merge_queue = max(
        metrics.process(m.name).max_queue for m in system.merge_processes
    )
    assert system.check_mvc("complete")
    return merge_util, merge_queue, metrics.mean_staleness


def test_b3_merge_bottleneck(benchmark, report):
    def experiment():
        rows = []
        for rate in RATES:
            single = run_at(rate, groups=1)
            split = run_at(rate, groups=3)
            rows.append((rate, single, split))
        return rows

    data = benchmark.pedantic(experiment, rounds=1, iterations=1)

    rows = []
    for rate, (u1, q1, s1), (u3, q3, s3) in data:
        rows.append(
            [
                rate,
                f"{u1:.1%}", q1, f"{s1:.1f}",
                f"{u3:.1%}", q3, f"{s3:.1f}",
            ]
        )
    report(f"B3 — merge bottleneck (per-message merge cost {MERGE_COST}):")
    report(fmt_table(
        ["rate", "1MP util", "1MP max queue", "1MP staleness",
         "3MP util", "3MP max queue", "3MP staleness"],
        rows,
    ))
    report("")
    report("Shape: the single merge saturates first; partitioning (§6.1) "
           "pushes the knee to ~3x the load.")

    # At the highest rate the single merge is saturated, the split is not.
    _rate, (u1, q1, s1), (u3, q3, s3) = data[-1]
    assert u1 > 0.9
    assert u3 < u1
    assert s3 < s1
    # Utilisation increases monotonically with rate for the single merge.
    utils = [entry[1][0] for entry in data]
    assert all(a <= b + 0.02 for a, b in zip(utils, utils[1:]))
