"""B22 — Columnar engine: raw-batch ingest to view delta vs the row-dict path.

The columnar core (see docs/engine.md) exists so a source batch that
arrives as *raw value tuples* can flow to applied view deltas without
ever materializing a ``Row``: ``MaintenancePlan.propagate_counts`` /
``PlanLibrary.propagate_all_counts`` take ``{tuple: signed count}``
batches, push them through source-generated kernels, and the resulting
:class:`~repro.relational.columnar.ColumnarDelta` applies to a
:class:`~repro.relational.columnar.ColumnarRelation` store in one
vectorized call.  The pre-change path had to *lift* the same batch into
``Row``/``Delta`` objects first and then interpret every operator
per row — so the honest comparison, and the one measured here, is
**ingest to applied view delta**: the rows arm pays the lift plus
interpreted propagation, because that is exactly what the engine did
before this change.

Two arms, mirroring earlier benchmarks:

* **micro** (B9-shaped): one operator per measurement — select, project,
  join, select-project-join, group-by aggregate — timed per input delta
  row, batch-propagated against 20k-row bases.
* **end_to_end** (B1-shaped): the paper's Example 2 view suite
  (V1 = R |><| S, V2 = S |><| T |><| Q, V3 = Q) maintained through a
  :class:`~repro.relational.plan.PlanLibrary` over a mixed
  insert/delete update stream, timing propagation + view-store
  application + advance per batch.

Timing is best-of-N full repeats (single runs on this workload swing
~2x with machine noise) with a warmup propagation first, so one-time
lazy index builds and kernel compilation are excluded — the same
protocol B19 uses.  Re-run guards drive the B19 scaling workload and
the B21 MQO workload through both engines and assert identical deltas
and identical probe accounting, proving those benchmarks' results are
engine-independent (no regression hiding in the refactor).

Paper question: ROADMAP north star ("as fast as the hardware allows")
— §7's performance study assumes maintenance keeps up with the source
stream; this records how much headroom the columnar engine buys.
Reads: seconds per input delta row (micro) and per batch (end-to-end);
emits BENCH_b22.json via ``--bench-out``.
"""

from __future__ import annotations

import random
import time

from repro.relational.algebra import evaluate
from repro.relational.columnar import (
    ColumnarRelation,
    evaluate_columnar,
    layout_of,
    rows_to_counts,
)
from repro.relational.database import Database
from repro.relational.delta import Delta, propagate_delta
from repro.relational.expressions import (
    Aggregate,
    AggregateSpec,
    BaseRelation,
    Join,
    Project,
    Select,
)
from repro.relational.plan import MaintenancePlan, PlanLibrary
from repro.relational.predicates import compare
from repro.relational.rows import Row
from repro.relational.schema import Schema
from repro.workloads.schemas import paper_views_example2

from benchmarks.conftest import fmt_table
from benchmarks.test_b19_maintenance_scaling import (
    EXPR as B19_EXPR,
    make_db as b19_make_db,
    update_stream as b19_update_stream,
)
from benchmarks.test_b21_sharded_merge import MQO_EXPRS, mqo_db, mqo_stream

SPEEDUP_FLOOR = 10.0

# -- micro arm (B9-shaped) --------------------------------------------------

MICRO_BASE = 20_000
MICRO_DOM = 2_000
AGG_DOM = 500  # hot groups: most delta rows touch an existing group state
MICRO_REPEATS = 5

# (name, delta relation, expression, batch size, timed iterations).
# Join batches are smaller because each delta row fans out ~10x.
MICRO_OPS = (
    ("select", "R",
     Select(compare("B", "<", MICRO_DOM // 2), BaseRelation("R")), 5_000, 20),
    ("project", "R", Project(("A",), BaseRelation("R")), 5_000, 20),
    ("join", "R", Join(BaseRelation("R"), BaseRelation("S")), 500, 20),
    ("spj", "R",
     Project(("A", "C"),
             Select(compare("C", "<", MICRO_DOM // 2),
                    Join(BaseRelation("R"), BaseRelation("S")))), 500, 20),
    ("aggregate", "G",
     Aggregate(("B",),
               (AggregateSpec("count", "cnt"), AggregateSpec("sum", "tot", "A")),
               BaseRelation("G")), 5_000, 20),
)

MICRO_DOMAINS = {
    "R": (MICRO_DOM, MICRO_DOM),  # (A, B)
    "S": (MICRO_DOM, MICRO_DOM),  # (B, C)
    "G": (MICRO_DOM, AGG_DOM),    # (A, B) — grouped on B
}


def micro_db() -> Database:
    rng = random.Random(7)
    db = Database()
    for name, attrs in (("R", ("A", "B")), ("S", ("B", "C")), ("G", ("A", "B"))):
        doms = MICRO_DOMAINS[name]
        db.create_relation(
            name,
            Schema(list(attrs)),
            [Row(dict(zip(layout_of(attrs), (rng.randrange(doms[0]),
                                             rng.randrange(doms[1])))))
             for _ in range(MICRO_BASE)],
        )
    return db


def micro_batch(rel: str, size: int, seed: int) -> dict[tuple, int]:
    """A mixed-sign raw tuple batch (70% inserts, 30% deletes).

    Micro measurements propagate without advancing or applying, so
    deletes need not be applicable — propagation is sign-symmetric.
    """
    rng = random.Random(seed)
    doms = MICRO_DOMAINS[rel]
    counts: dict[tuple, int] = {}
    for _ in range(size):
        t = (rng.randrange(doms[0]), rng.randrange(doms[1]))
        counts[t] = counts.get(t, 0) + (1 if rng.random() >= 0.3 else -1)
    return {t: c for t, c in counts.items() if c}


def lift(layout: tuple[str, ...], batch: dict[tuple, int]) -> Delta:
    """Raw batch -> facade Delta: the pre-change path's mandatory step."""
    return Delta({Row(dict(zip(layout, t))): c for t, c in batch.items()})


def time_micro_op(db, rel, expr, size, iters) -> tuple[float, float]:
    """Best-of seconds per input delta row for each engine.

    Both plans propagate the same raw batch repeatedly *without*
    advancing, so every iteration runs against the identical pre-state.
    The rows arm's timed region includes the Row/Delta lift: with raw
    tuples at the door, lifting is part of that path's ingest cost.
    """
    layout = layout_of(db.schemas[rel].names)
    batch = micro_batch(rel, size, seed=101)
    plan_c = MaintenancePlan(expr, db, engine="columnar")
    plan_r = MaintenancePlan(expr, db, engine="rows")
    plan_c.propagate_counts({rel: batch})  # warmup: indexes + kernels
    plan_r.propagate({rel: lift(layout, batch)})
    n = len(batch)

    best_c = best_r = float("inf")
    for _ in range(MICRO_REPEATS):
        start = time.perf_counter()
        for _ in range(iters):
            plan_c.propagate_counts({rel: batch})
        best_c = min(best_c, (time.perf_counter() - start) / (iters * n))
        start = time.perf_counter()
        for _ in range(iters):
            plan_r.propagate({rel: lift(layout, batch)})
        best_r = min(best_r, (time.perf_counter() - start) / (iters * n))
    return best_c, best_r


# -- end-to-end arm (B1-shaped) ---------------------------------------------

E2E_SCHEMAS = {"R": ("A", "B"), "S": ("B", "C"), "T": ("C", "D"), "Q": ("D", "E")}
E2E_BASE = 8_000
E2E_DOM = 2_500
E2E_BATCHES = 16
E2E_BATCH = 1_000
E2E_REPEATS = 3


def e2e_world(seed: int = 11) -> dict[str, dict[tuple, int]]:
    rng = random.Random(seed)
    return {
        name: {t: 1 for t in ((rng.randrange(E2E_DOM), rng.randrange(E2E_DOM))
                              for _ in range(E2E_BASE))}
        for name in E2E_SCHEMAS
    }


def e2e_stream(world, seed: int = 13) -> list[tuple[str, dict[tuple, int]]]:
    """Round-robin raw batches, ~70% inserts / 30% deletes.

    An availability pool tracks each relation's evolving contents so a
    delete is only emitted while copies remain — every batch is
    applicable at its point in the stream.
    """
    rng = random.Random(seed)
    names = list(E2E_SCHEMAS)
    avail = {name: dict(world[name]) for name in names}
    stream = []
    for b in range(E2E_BATCHES):
        name = names[b % len(names)]
        batch: dict[tuple, int] = {}
        pool = avail[name]
        keys = list(pool)
        for _ in range(E2E_BATCH):
            if keys and rng.random() < 0.3:
                t = rng.choice(keys)
                if pool.get(t, 0) + batch.get(t, 0) > 0:
                    batch[t] = batch.get(t, 0) - 1
            else:
                t = (rng.randrange(E2E_DOM), rng.randrange(E2E_DOM))
                batch[t] = batch.get(t, 0) + 1
        batch = {t: c for t, c in batch.items() if c}
        for t, c in batch.items():
            pool[t] = pool.get(t, 0) + c
            if pool[t] <= 0:
                del pool[t]
        stream.append((name, batch))
    return stream


def e2e_db(world) -> Database:
    db = Database()
    for name, attrs in E2E_SCHEMAS.items():
        layout = layout_of(attrs)
        db.create_relation(
            name,
            Schema(list(attrs)),
            [Row(dict(zip(layout, t)))
             for t, c in world[name].items() for _ in range(c)],
        )
    return db


def e2e_views() -> dict:
    return {v.name: v.expression for v in paper_views_example2()}


def run_e2e_columnar(world, stream) -> tuple[float, dict[str, dict[Row, int]]]:
    """Timed per batch: propagate_all_counts + store application + advance.

    Base-relation advancement (``db.apply_deltas``) is untimed — it is
    identical work in both arms and not what this change targets.
    """
    db = e2e_db(world)
    views = e2e_views()
    lib = PlanLibrary(db, engine="columnar")
    for name, expr in views.items():
        lib.compile(name, expr)
    stores = {}
    for name, expr in views.items():
        rel = evaluate_columnar(expr, db)
        layout = layout_of(rel.schema.names)
        stores[name] = ColumnarRelation(layout, rows_to_counts(layout, rel.counts_view()))
    # warmup (never advanced, nothing applied): builds every lazy probe
    # index and compiles every kernel outside the timed region
    for name, attrs in E2E_SCHEMAS.items():
        lib.propagate_all_counts({name: {(0,) * len(attrs): 1}})

    timed = 0.0
    for rel_name, batch in stream:
        start = time.perf_counter()
        view_deltas = lib.propagate_all_counts({rel_name: batch})
        for vname, d in view_deltas.items():
            d.apply_to(stores[vname])
        lib.advance_all()
        timed += time.perf_counter() - start
        layout = layout_of(E2E_SCHEMAS[rel_name])
        db.apply_deltas({rel_name: lift(layout, batch)})
    return timed, {name: store.to_rows() for name, store in stores.items()}


def run_e2e_rows(world, stream) -> tuple[float, dict[str, dict[Row, int]]]:
    """The pre-change path: lift raw batches, propagate rows, apply rows."""
    db = e2e_db(world)
    views = e2e_views()
    lib = PlanLibrary(db, engine="rows")
    for name, expr in views.items():
        lib.compile(name, expr)
    mats = {name: evaluate(expr, db) for name, expr in views.items()}
    for name, attrs in E2E_SCHEMAS.items():
        lib.propagate_all({name: lift(layout_of(attrs), {(0,) * len(attrs): 1})})

    timed = 0.0
    for rel_name, batch in stream:
        layout = layout_of(E2E_SCHEMAS[rel_name])
        start = time.perf_counter()
        view_deltas = lib.propagate_all({rel_name: lift(layout, batch)})
        for vname, d in view_deltas.items():
            d.apply_to(mats[vname])
        lib.advance_all()
        timed += time.perf_counter() - start
        db.apply_deltas({rel_name: lift(layout, batch)})
    return timed, {name: dict(mat.counts_view()) for name, mat in mats.items()}


# -- guards -----------------------------------------------------------------


def test_b22_engine_equivalence_guard():
    """Both engines and the legacy rules agree at every step, and the
    maintained view stores end bag-for-bag identical across arms."""
    rng = random.Random(5)
    world = {
        name: {(rng.randrange(60), rng.randrange(60)): 1 for _ in range(300)}
        for name in E2E_SCHEMAS
    }
    db = e2e_db(world)
    views = e2e_views()
    lib_c = PlanLibrary(db, engine="columnar")
    lib_r = PlanLibrary(db, engine="rows")
    for name, expr in views.items():
        lib_c.compile(name, expr)
        lib_r.compile(name, expr)

    stream = [
        (name, batch)
        for name, batch in _small_stream(world, batches=8, batch=80, dom=60)
    ]
    for rel_name, batch in stream:
        layout = layout_of(E2E_SCHEMAS[rel_name])
        lifted = lift(layout, batch)
        out_c = lib_c.propagate_all_counts({rel_name: batch})
        out_r = lib_r.propagate_all({rel_name: lifted})
        for vname, expr in views.items():
            legacy = propagate_delta(expr, db, {rel_name: lifted})
            assert out_c[vname].to_delta() == out_r[vname] == legacy
        db.apply_deltas({rel_name: lifted})
        lib_c.advance_all()
        lib_r.advance_all()


def _small_stream(world, batches, batch, dom):
    rng = random.Random(23)
    names = list(E2E_SCHEMAS)
    avail = {name: dict(world[name]) for name in names}
    out = []
    for b in range(batches):
        name = names[b % len(names)]
        pool = avail[name]
        counts: dict[tuple, int] = {}
        keys = list(pool)
        for _ in range(batch):
            if keys and rng.random() < 0.3:
                t = rng.choice(keys)
                if pool.get(t, 0) + counts.get(t, 0) > 0:
                    counts[t] = counts.get(t, 0) - 1
            else:
                t = (rng.randrange(dom), rng.randrange(dom))
                counts[t] = counts.get(t, 0) + 1
        counts = {t: c for t, c in counts.items() if c}
        for t, c in counts.items():
            pool[t] = pool.get(t, 0) + c
            if pool[t] <= 0:
                del pool[t]
        out.append((name, counts))
    return out


def test_b22_b19_rerun_guard():
    """B19's scaling workload through both engines: identical deltas,
    identical probe accounting — the refactor didn't change what B19
    measures."""
    db = b19_make_db(500)
    plan_c = MaintenancePlan(B19_EXPR, db, engine="columnar")
    plan_r = MaintenancePlan(B19_EXPR, db, engine="rows")
    for deltas in b19_update_stream():
        legacy = propagate_delta(B19_EXPR, db, deltas)
        assert plan_c.propagate(deltas) == legacy
        assert plan_r.propagate(deltas) == legacy
        db.apply_deltas(deltas)
        plan_c.advance()
        plan_r.advance()
    assert plan_c.probe_count() == plan_r.probe_count() > 0


def test_b22_b21_rerun_guard():
    """B21's MQO workload through two libraries: per-view deltas and
    total probe counts match, so B21's probe-reduction result is
    engine-independent."""
    db_c, db_r = mqo_db(), mqo_db()
    lib_c = PlanLibrary(db_c, engine="columnar")
    lib_r = PlanLibrary(db_r, engine="rows")
    for name, expr in MQO_EXPRS.items():
        lib_c.compile(name, expr)
        lib_r.compile(name, expr)
    for deltas in mqo_stream():
        out_c = lib_c.propagate_all(deltas)
        out_r = lib_r.propagate_all(deltas)
        assert out_c == out_r
        db_c.apply_deltas(deltas)
        db_r.apply_deltas(deltas)
        lib_c.advance_all()
        lib_r.advance_all()
    assert lib_c.probe_count() == lib_r.probe_count() > 0


# -- benchmarks -------------------------------------------------------------


def test_b22_micro(benchmark, report, bench_out):
    def experiment():
        db = micro_db()
        return {
            name: time_micro_op(db, rel, expr, size, iters)
            for name, rel, expr, size, iters in MICRO_OPS
        }

    results = benchmark.pedantic(experiment, rounds=1, iterations=1)
    speedups = {name: rows / col for name, (col, rows) in results.items()}

    report("B22 micro — per-operator raw-batch propagation, per input delta row:")
    report(fmt_table(
        ["operator", "columnar (us/row)", "rows (us/row)", "speedup"],
        [[name, f"{col * 1e6:.3f}", f"{rows * 1e6:.3f}",
          f"{speedups[name]:.1f}x"]
         for name, (col, rows) in results.items()],
    ))
    report("")
    report(f"Shape: every operator clears {SPEEDUP_FLOOR:.0f}x — compiled "
           f"kernels on raw tuples vs Row lift + interpreted evaluation.")

    artifact = bench_out("b22", {
        "benchmark": "b22_columnar",
        "question": "how much faster is raw-batch ingest to view delta on "
                    "the columnar engine than the row-dict path?",
        "micro": {
            "units": "seconds_per_input_row",
            "base_rows": MICRO_BASE,
            "repeats": MICRO_REPEATS,
            "arms": {
                name: {"columnar": col, "rows": rows,
                       "speedup": round(speedups[name], 2)}
                for name, (col, rows) in results.items()
            },
        },
    })
    if artifact is not None:
        report(f"wrote {artifact}")

    for name, speedup in speedups.items():
        assert speedup >= SPEEDUP_FLOOR, (
            f"columnar {name} is only {speedup:.1f}x the row-dict path "
            f"(floor {SPEEDUP_FLOOR:.0f}x) — a kernel lost its edge"
        )


def test_b22_end_to_end(benchmark, report, bench_out):
    def experiment():
        world = e2e_world()
        stream = e2e_stream(world)
        best_c = best_r = float("inf")
        contents_c = contents_r = None
        for _ in range(E2E_REPEATS):
            t_c, contents_c = run_e2e_columnar(world, stream)
            t_r, contents_r = run_e2e_rows(world, stream)
            best_c, best_r = min(best_c, t_c), min(best_r, t_r)
        return best_c, best_r, contents_c, contents_r

    best_c, best_r, contents_c, contents_r = benchmark.pedantic(
        experiment, rounds=1, iterations=1
    )
    assert contents_c == contents_r  # both arms maintained identical views
    speedup = best_r / best_c
    per_batch_c = best_c / E2E_BATCHES
    per_batch_r = best_r / E2E_BATCHES

    report("B22 end-to-end — Example 2 view suite over a mixed update stream:")
    report(fmt_table(
        ["arm", "total (ms)", "per batch (ms)"],
        [
            ["rows (lift + interpret)", f"{best_r * 1e3:.1f}",
             f"{per_batch_r * 1e3:.2f}"],
            ["columnar (raw batch)", f"{best_c * 1e3:.1f}",
             f"{per_batch_c * 1e3:.2f}"],
        ],
    ))
    report("")
    report(f"Shape: ingest-to-applied-view-delta is {speedup:.1f}x faster "
           f"end-to-end (best of {E2E_REPEATS}, {E2E_BATCHES} batches of "
           f"{E2E_BATCH} rows, views V1/V2/V3).")

    artifact = bench_out("b22", {
        "end_to_end": {
            "units": "seconds_total_maintenance",
            "base_rows": E2E_BASE,
            "batches": E2E_BATCHES,
            "batch_rows": E2E_BATCH,
            "repeats": E2E_REPEATS,
            "views": list(e2e_views()),
            "arms": {"columnar": best_c, "rows": best_r},
            "speedup": round(speedup, 2),
        },
    })
    if artifact is not None:
        report(f"wrote {artifact}")

    assert speedup >= SPEEDUP_FLOOR, (
        f"end-to-end columnar maintenance is only {speedup:.1f}x the "
        f"row-dict path (floor {SPEEDUP_FLOOR:.0f}x)"
    )
