"""T1 — Table 1 / Example 1: the multiple-view-consistency anomaly.

Regenerates the paper's Table 1 timeline.  Without coordination
(pass-through merging of per-view action lists) there is a warehouse state
where V1 reflects the S insert but V2 does not — the t2 row of Table 1.
With the merge process running SPA, no such state exists: both views
change in one atomic warehouse transaction.
"""

from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import paper_views_example1, paper_world

from benchmarks.conftest import fmt_table


def run(coordinated: bool) -> WarehouseSystem:
    world = paper_world()
    kind = "complete" if coordinated else "convergent"
    system = WarehouseSystem(
        world,
        paper_views_example1(),
        SystemConfig(manager_kind=kind, compute_cost=lambda n, d: 1.0),
    )
    if not coordinated:
        # V2's delta computation is slower than V1's: the paper's t2 < t3
        # gap, during which the two views disagree.
        system.view_managers["V2"].compute_cost = lambda n, d: 8.0
    system.post_update(Update.insert("S", {"B": 2, "C": 3}), at=1.0)
    system.run()
    return system


def table_rows(system: WarehouseSystem) -> list[list[object]]:
    rows = []
    for state in system.history:
        rows.append(
            [
                f"{state.time:6.2f}",
                sorted(tuple(r.values()) for r in state.view("V1")),
                sorted(tuple(r.values()) for r in state.view("V2")),
            ]
        )
    return rows


def mutually_inconsistent_states(system: WarehouseSystem) -> int:
    """States where V1 reflects the S insert but V2 does not (or reverse)."""
    count = 0
    for state in system.history:
        has_v1 = len(state.view("V1")) > 0
        has_v2 = len(state.view("V2")) > 0
        if has_v1 != has_v2:
            count += 1
    return count


def test_table1_anomaly_and_fix(benchmark, report):
    uncoordinated, coordinated = benchmark.pedantic(
        lambda: (run(coordinated=False), run(coordinated=True)),
        rounds=1,
        iterations=1,
    )

    report("Table 1 — uncoordinated (per-view managers write independently):")
    report(fmt_table(["time", "V1", "V2"], table_rows(uncoordinated)))
    bad = mutually_inconsistent_states(uncoordinated)
    report(f"mutually inconsistent states: {bad}   "
           f"(the paper's t2 row, where V1 moved and V2 did not)")

    report("")
    report("Table 1 — coordinated (merge process, SPA):")
    report(fmt_table(["time", "V1", "V2"], table_rows(coordinated)))
    good = mutually_inconsistent_states(coordinated)
    report(f"mutually inconsistent states: {good}")
    report(f"MVC-complete verified: {bool(coordinated.check_mvc('complete'))}")

    # Shape claims.
    assert bad >= 1, "the anomaly must be reproducible"
    assert good == 0
    assert coordinated.check_mvc("complete")
    assert coordinated.warehouse.commits == 1  # one atomic transaction
