"""EX2 — Example 2: the ViewUpdateTable color transitions.

Regenerates the paper's Example-2 tables: after REL1/REL2 the VUT shows
white entries for relevant views and black elsewhere; after AL^2_1 arrives
the (U1, V2) entry turns red and is *held* because (U1, V1) is still
white.
"""

from repro.merge.spa import SimplePaintingAlgorithm
from repro.relational.delta import Delta
from repro.relational.rows import Row
from repro.viewmgr.actions import ActionList


def make_al(view, covered, tag=0):
    return ActionList.from_delta(view, view, tuple(covered), Delta.insert(Row(x=tag)))


def run():
    spa = SimplePaintingAlgorithm(("V1", "V2", "V3"))
    snapshots = {}
    spa.receive_rel(1, frozenset({"V1", "V2"}))
    spa.receive_rel(2, frozenset({"V2", "V3"}))
    snapshots["after RELs"] = spa.vut.snapshot()
    held = spa.receive_action_list(make_al("V2", [1], 21))
    snapshots["after AL21"] = spa.vut.snapshot()
    return spa, snapshots, held


def test_example2_vut(benchmark, report):
    spa, snapshots, held = benchmark.pedantic(run, rounds=1, iterations=1)

    report("Example 2 — VUT after REL1, REL2 (paper's first table):")
    report(f"  {snapshots['after RELs']}")
    report("VUT after AL21 arrives (paper's second table):")
    report(f"  {snapshots['after AL21']}")
    report(f"AL21 held (applied nothing): {held == []}")

    first = snapshots["after RELs"]
    # Paper: U1 row = (w, w, b); U2 row = (b, w, w).
    assert [first[1][v][1] for v in ("V1", "V2", "V3")] == ["w", "w", "b"]
    assert [first[2][v][1] for v in ("V1", "V2", "V3")] == ["b", "w", "w"]
    second = snapshots["after AL21"]
    # Paper: U1 row becomes (w, r, b); the list is saved, not applied.
    assert [second[1][v][1] for v in ("V1", "V2", "V3")] == ["w", "r", "b"]
    assert held == []
