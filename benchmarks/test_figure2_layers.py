"""F2 — Figure 2: the three consistency layers, validated live.

Figure 2 stacks source consistency (among base data), view consistency
(each view vs its base data) and MVC (among the views).  This experiment
runs one workload and checks each layer with the corresponding oracle:

* source consistency — the replayed integrator-order schedule reaches the
  same final state as the sources' serial commit schedule;
* view consistency  — every individual view's state sequence is complete
  w.r.t. the source state sequence;
* MVC               — the joint (vector) sequence is complete.
"""

from repro.consistency.checker import strongest_level
from repro.consistency.states import source_view_values
from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system


def test_figure2_three_layers(benchmark, report):
    spec = WorkloadSpec(updates=50, rate=2.0, seed=2, mix=(0.6, 0.2, 0.2))
    system = benchmark.pedantic(
        lambda: run_system(
            paper_world(), paper_views_example2(),
            SystemConfig(manager_kind="complete", seed=2), spec,
        ),
        rounds=1, iterations=1,
    )

    # Layer 1: source consistency.
    replayed = system.source_states()
    source_ok = replayed[-1].same_state_as(system.world.current)

    # Layer 2: per-view consistency levels.
    values = source_view_values(replayed, system.definitions)
    per_view = []
    for definition in system.definitions:
        ws = [state.view(definition.name) for state in system.history]
        ss = [v[definition.name] for v in values]
        per_view.append([definition.name, strongest_level(ws, ss)])

    # Layer 3: MVC.
    mvc_level = system.classify()

    report("Figure 2 — three layers of consistency:")
    rows = [["source consistency", "consistent" if source_ok else "BROKEN"]]
    rows += [[f"view consistency: {name}", level] for name, level in per_view]
    rows += [["multiple view consistency", mvc_level]]
    report(fmt_table(["layer", "verdict"], rows))

    assert source_ok
    assert all(level == "complete" for _name, level in per_view)
    assert mvc_level == "complete"
