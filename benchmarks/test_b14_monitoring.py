"""B14 — Legacy sources behind snapshot-diff monitors (WHIPS wrappers).

The WHIPS prototype fronted trigger-less legacy sources with monitors
that detect updates by periodic snapshot diffing.  This experiment drives
a silent (non-reporting) source and sweeps the monitor's poll period,
measuring

* observation granularity — real transactions vs synthesized batch
  reports,
* staleness — source commit to warehouse visibility (now dominated by the
  poll period),
* consistency — the warehouse stays MVC-complete w.r.t. the *observed*
  schedule at every period.

Expected shape: longer periods mean fewer, bigger observed transactions
and staleness that grows roughly with period/2 + constant, while MVC never
degrades.

Paper question: WHIPS wrappers (§1, [WHIPS]) — what does snapshot-diff
monitoring cost in observation granularity and freshness?  Reads:
``warehouse.commits``, warehouse ``history`` length, and per-update
staleness against the *observed* schedule per poll period.
"""

from repro.sources.monitor import SilentSource, SnapshotDiffMonitor
from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import paper_views_example1, paper_world

from benchmarks.conftest import fmt_table

UPDATES = 30
GAP = 2.0  # source commits every 2 time units
PERIODS = (1.0, 5.0, 20.0)


def run(period: float):
    world = paper_world()
    system = WarehouseSystem(
        world,
        paper_views_example1(),
        # Cheap maintenance so staleness isolates the observation delay
        # (with expensive maintenance, fine polling saturates the pipeline
        # and batching *helps* — the B1/B2 effect, measured separately).
        SystemConfig(
            manager_kind="complete",
            compute_cost=lambda n, d: 0.1,
            warehouse_txn_overhead=0.1,
            warehouse_action_cost=0.0,
        ),
    )
    owner = world.owner_of("S")
    silent = SilentSource(system.sim, owner, world)
    horizon = UPDATES * GAP + 4 * period + 10
    monitor = SnapshotDiffMonitor(
        system.sim, silent, period=period, stop_after=horizon
    )
    monitor.connect(system.integrator, 1.0)
    for index in range(UPDATES):
        system.sim.schedule(
            1.0 + index * GAP,
            silent.execute_update,
            Update.insert("S", {"B": 2, "C": index}),
        )
    system.run()
    # True staleness must be computed against the *real* commit times —
    # the integrator only ever sees the monitor's report times (that
    # information loss is part of what this experiment demonstrates).
    visible_at: dict[int, float] = {}
    for state in system.history:
        for row in state.view("V1"):
            index = row["C"]
            visible_at.setdefault(index, state.time)
    lags = [
        visible_at[index] - (1.0 + index * GAP)
        for index in range(UPDATES)
        if index in visible_at
    ]
    true_staleness = sum(lags) / len(lags) if lags else float("inf")
    level = system.classify()
    return monitor.reports, true_staleness, level, system


def test_b14_snapshot_diff_monitoring(benchmark, report):
    results = benchmark.pedantic(
        lambda: {period: run(period) for period in PERIODS},
        rounds=1, iterations=1,
    )

    rows = []
    for period in PERIODS:
        reports, staleness, level, system = results[period]
        rows.append(
            [
                period,
                UPDATES,
                reports,
                f"{UPDATES / max(reports, 1):.1f}",
                f"{staleness:.1f}",
                level,
            ]
        )
    report(f"B14 — snapshot-diff monitoring of a silent source "
           f"({UPDATES} real txns, one every {GAP}):")
    report(fmt_table(
        ["poll period", "real txns", "observed txns", "batching",
         "mean staleness", "MVC vs observed"],
        rows,
    ))
    report("")
    report("Shape: coarser polling batches more updates per observation; "
           "true staleness trades per-transaction pipeline cost (fine "
           "polling) against observation delay (coarse polling), growing "
           "~period/2 once the poll interval dominates.  MVC never "
           "degrades: the warehouse is consistent with everything the "
           "monitor could see.")

    observed = [results[p][0] for p in PERIODS]
    staleness = [results[p][1] for p in PERIODS]
    assert observed[0] > observed[1] > observed[2]
    # Once the poll interval dominates, staleness grows with it.
    assert staleness[2] > staleness[1] * 1.5
    assert staleness[2] > staleness[0]
    for period in PERIODS:
        assert results[period][2] == "complete"
        # Every source row eventually reached the warehouse.
        assert len(results[period][3].store.view("V1")) == UPDATES
