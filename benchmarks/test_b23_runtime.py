"""B23 — Wall-clock runtime backend: multi-core merge execution.

The DES kernel measures *simulated* cost; this experiment measures the
machine.  The same 108-view clustered suite as B21 (36 relation-disjoint
clusters x 3 views, hash-routed onto 8 merge shards) is driven through
the ``procs`` runtime, where each group of merge shards runs its
maintenance propagation on a forked compute server — real OS processes,
real parallelism.  Arms vary the worker budget {1, 2, 4, 8}; every arm
must pass the per-shard MVC oracle on its *real* (non-simulated)
history, and the default DES backend must remain bit-for-bit
deterministic (digest-equal across repeat runs).

Paper question: §6.1 assigns "each group of views ... one merge
process" for *scale* — on actual hardware, does giving the merge fleet
more cores buy wall-clock throughput without costing consistency?
Reads: wall events/sec per worker count; emits BENCH_b23.json via
``--bench-out``.  The >=3x speedup shape claim is asserted only on
machines with >= 8 cores — fewer cores cannot exhibit the parallelism
being measured (the oracle and determinism claims are asserted always).
"""

from __future__ import annotations

import os

from repro.conformance.oracle import check_real_run
from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import clustered_views, clustered_world

from benchmarks.conftest import fmt_table, timed_run_system, wall_clock_section

CLUSTERS = 36
VIEWS_PER_CLUSTER = 3  # 108 views total
UPDATES = 120
SHARDS = 8
WORKER_COUNTS = (1, 2, 4, 8)


def build_config(runtime: str, workers: int | None = None) -> SystemConfig:
    return SystemConfig(
        manager_kind="complete",
        merge_algorithm="spa",
        merge_groups=SHARDS,
        merge_router="hash",
        runtime=runtime,
        workers=workers,
        seed=23,
    )


def run_arm(runtime: str, workers: int | None = None):
    spec = WorkloadSpec(updates=UPDATES, rate=40.0, seed=23,
                        arrivals="poisson", mix=(0.6, 0.2, 0.2))
    system, wall = timed_run_system(
        clustered_world(CLUSTERS),
        clustered_views(CLUSTERS, VIEWS_PER_CLUSTER),
        build_config(runtime, workers),
        spec,
    )
    report = check_real_run(system)
    section = wall_clock_section(system, wall)
    system.close()
    return report, section


def test_b23_multicore_merge_throughput(benchmark, report, bench_out):
    cores = os.cpu_count() or 1

    def all_arms():
        des_a, des_section = run_arm("des")
        des_b, _ = run_arm("des")
        procs = {n: run_arm("procs", n) for n in WORKER_COUNTS}
        return des_a, des_b, des_section, procs

    des_a, des_b, des_section, procs = benchmark.pedantic(
        all_arms, rounds=1, iterations=1,
    )

    arms = {"des": {"oracle_ok": des_a.ok, "wall_clock": des_section}}
    for workers, (oracle, section) in procs.items():
        arms[f"procs-{workers}"] = {
            "workers": workers,
            "oracle_ok": oracle.ok,
            "violations": [str(v) for v in oracle.violations],
            "wall_clock": section,
        }

    rate = lambda name: arms[name]["wall_clock"]["wall_events_per_sec"]
    speedup = rate("procs-8") / rate("procs-1")

    report(f"B23 — {CLUSTERS * VIEWS_PER_CLUSTER} views on {SHARDS} merge "
           f"shards, procs runtime, {cores} core(s) visible:")
    report(fmt_table(
        ["arm", "wall s", "events/s (wall)", "per-shard MVC ok"],
        [
            [
                name,
                f"{arm['wall_clock']['wall_seconds']:.2f}",
                f"{arm['wall_clock']['wall_events_per_sec']:.0f}",
                str(arm["oracle_ok"]),
            ]
            for name, arm in arms.items()
        ],
    ))
    report("")
    report(f"Shape: 8 workers vs 1 = {speedup:.2f}x wall throughput "
           f"({'asserted' if cores >= 8 else f'not asserted on {cores} core(s)'}); "
           f"DES digest stable: {des_a.digest == des_b.digest}.")

    artifact = bench_out("b23", {
        "benchmark": "b23_runtime_backend",
        "question": "does the procs runtime convert cores into wall-clock "
                    "merge throughput while every shard stays MVC-correct?",
        "views": CLUSTERS * VIEWS_PER_CLUSTER,
        "shards": SHARDS,
        "updates": UPDATES,
        "cores_visible": cores,
        "units": "events_per_wall_second",
        "arms": arms,
        "speedup_8_vs_1_workers": round(speedup, 2),
        "des_digest_stable": des_a.digest == des_b.digest,
    })
    if artifact is not None:
        report(f"wrote {artifact}")

    # Correctness claims hold on any machine: the real (wall-clock)
    # histories pass the per-shard MVC oracle, and the DES default is
    # bit-for-bit deterministic.
    assert des_a.ok and des_b.ok
    assert des_a.digest == des_b.digest, (
        "the DES backend stopped being bit-for-bit deterministic"
    )
    for name, arm in arms.items():
        assert arm["oracle_ok"], (
            f"{name}: real-runtime history failed the MVC oracle: "
            f"{arm.get('violations')}"
        )

    # The speedup shape claim needs the hardware it describes.
    if cores >= 8:
        assert speedup >= 3.0, (
            f"8 workers bought only {speedup:.2f}x wall-clock throughput "
            f"over 1 on {cores} cores — the compute fleet is not "
            f"spreading the merge work"
        )


def test_b23_threads_runtime_smoke(report):
    """The threads runtime runs the same suite conformantly (no speedup
    claim — pure-Python propagation shares the GIL; the claim lives with
    the procs arms above)."""
    oracle, section = run_arm("threads", 2)
    report(f"B23 threads smoke: {section['events_executed']} events, "
           f"{section['wall_seconds']:.2f}s wall, oracle ok={oracle.ok}")
    assert oracle.ok, [str(v) for v in oracle.violations]
