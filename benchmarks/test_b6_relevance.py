"""B6 — Relevance filtering ablation (§3.2's pointer to [7]).

"We could be more discerning by using selection conditions in the view
definitions to rule out irrelevant updates."

The experiment drives the star-schema workload (two selective views)
through the integrator with the base-relation relevance test only, then
with selection-condition filtering, and compares routed update copies,
action-list traffic, and total work.

Expected shape: filtering removes a substantial share of view routings for
selective views while leaving results identical (both runs MVC-complete
with identical final views).

Paper question: §3.2 — how much update traffic can selection-condition
relevance filtering remove?  Reads: integrator ``update_copies_sent``
and ``filtered_out``, per-manager ``messages_handled`` (registry
``proc_messages_handled``), and ``RunMetrics.makespan``.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import star_views, star_world

from benchmarks.conftest import fmt_table, run_system


def run(filtering: bool):
    spec = WorkloadSpec(
        updates=120, rate=2.0, seed=19, mix=(0.7, 0.15, 0.15),
        value_range=12, arrivals="poisson",
    )
    system = run_system(
        star_world(),
        star_views(selective=True),
        SystemConfig(
            manager_kind="complete",
            use_selection_filtering=filtering,
            seed=19,
        ),
        spec,
    )
    assert system.check_mvc("complete")
    return system


def test_b6_relevance_filtering(benchmark, report):
    plain, filtered = benchmark.pedantic(
        lambda: (run(False), run(True)), rounds=1, iterations=1
    )

    def row(label, system):
        metrics = system.metrics()
        return [
            label,
            system.integrator.update_copies_sent,
            system.integrator.filtered_out,
            metrics.process("merge").messages_handled,
            f"{metrics.makespan:.0f}",
        ]

    report("B6 — selection-condition relevance filtering [Blakeley et al.]:")
    report(fmt_table(
        ["relevance test", "update copies to VMs", "routings filtered",
         "merge messages", "makespan"],
        [row("base-relation only", plain), row("+ selection conditions", filtered)],
    ))
    report("")
    report("Shape: filtering cuts view-manager and merge traffic on "
           "selective views; both runs end in identical, MVC-complete "
           "warehouse states.")

    assert filtered.integrator.filtered_out > 0
    assert (
        filtered.integrator.update_copies_sent
        < plain.integrator.update_copies_sent
    )
    # Same final contents either way.
    for name in ("SaleDetail", "RegionalSales", "BigTickets", "CheapCatalog"):
        assert plain.store.view(name) == filtered.store.view(name)
