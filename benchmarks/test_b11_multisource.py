"""B11 — Multi-update / multi-source transactions (§6.2).

"If we have V1 = R and V2 = S, and a source transaction inserts one tuple
into R and one tuple into S, then the new tuples should appear in both
views at the same time."

The experiment mixes single-update transactions with §6.2 global
transactions spanning two sources, and checks that

* every global transaction occupies exactly one VUT row and one warehouse
  transaction (all-or-nothing visibility), and
* the run is MVC-complete.

It also shows the contrast: the same stream with convergent coordination
produces states where only half of a global transaction is visible.

Paper question: §6.2 — multi-source transactions must be all-or-nothing
across views.  Reads: ``warehouse.commits``, per-transaction VUT row
counts, and the MVC verdict.
"""

from repro.sources.update import Update
from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.schemas import paper_world

from benchmarks.conftest import fmt_table
from repro.relational.parser import parse_view

VIEWS = [
    parse_view("V1 = SELECT * FROM R"),
    parse_view("V2 = SELECT * FROM T"),
]
PAIRS = 15


def run(kind: str):
    world = paper_world(seed_rows=False)
    system = WarehouseSystem(world, VIEWS, SystemConfig(manager_kind=kind))
    for i in range(PAIRS):
        system.post_global(
            [
                Update.insert("R", {"A": i, "B": i}),
                Update.insert("T", {"C": i, "D": i}),
            ],
            at=1.0 + 2.0 * i,
        )
    system.run()
    # Count states where the two views disagree on how many global
    # transactions they reflect.
    torn = sum(
        1
        for state in system.history
        if len(state.view("V1")) != len(state.view("V2"))
    )
    return system, torn


def test_b11_multisource_transactions(benchmark, report):
    (coordinated, torn_c), (convergent, torn_u) = benchmark.pedantic(
        lambda: (run("complete"), run("convergent")), rounds=1, iterations=1
    )

    rows = [
        [
            "coordinated (SPA)",
            coordinated.warehouse.commits,
            torn_c,
            coordinated.classify(),
        ],
        [
            "uncoordinated (pass-through)",
            convergent.warehouse.commits,
            torn_u,
            convergent.classify(),
        ],
    ]
    report(f"B11 — {PAIRS} global transactions, each inserting into R and T:")
    report(fmt_table(
        ["configuration", "warehouse txns", "torn states", "MVC level"], rows
    ))
    report("")
    report("Shape: coordination applies each global transaction to both "
           "views atomically (one warehouse txn per transaction, zero torn "
           "states); pass-through exposes half-applied transactions.")

    assert torn_c == 0
    assert coordinated.warehouse.commits == PAIRS
    assert coordinated.check_mvc("complete")
    # Every global transaction occupies one VUT row -> covered singly.
    assert all(
        state.covered_rows and len(state.covered_rows) == 1
        for state in coordinated.history[1:]
    )
    assert torn_u > 0
