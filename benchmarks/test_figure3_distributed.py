"""F3 — Figure 3: splitting the merge process along view groups.

Figure 3 partitions {V1 = R./S, V2 = S./T} | {V3 = Q} onto two merge
processes.  This experiment regenerates the partition, runs the same
workload through one merge and through the Figure-3 pair, and confirms
both preserve MVC-completeness while the split spreads the load.
"""

from repro.merge.distributed import partition_views
from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example3, paper_world

from benchmarks.conftest import fmt_table, run_system


def run(groups: int):
    spec = WorkloadSpec(updates=120, rate=4.0, seed=3, arrivals="poisson",
                        mix=(0.6, 0.2, 0.2))
    return run_system(
        paper_world(),
        paper_views_example3(),
        SystemConfig(
            manager_kind="complete",
            merge_groups=groups,
            merge_message_cost=0.2,
            seed=3,
        ),
        spec,
    )


def test_figure3_distributed_merge(benchmark, report):
    single, split = benchmark.pedantic(
        lambda: (run(1), run(2)), rounds=1, iterations=1
    )

    partition = partition_views(paper_views_example3())
    report("Figure 3 — partition by shared base relations:")
    for index, group in enumerate(partition):
        report(f"  MP{index + 1}: views {group}")

    rows = []
    for label, system in (("single merge", single), ("two merges", split)):
        metrics = system.metrics()
        max_util = max(
            metrics.process(m.name).utilisation for m in system.merge_processes
        )
        rows.append(
            [
                label,
                len(system.merge_processes),
                str(bool(system.check_mvc("complete"))),
                f"{metrics.makespan:.1f}",
                f"{metrics.mean_staleness:.2f}",
                f"{max_util:.1%}",
            ]
        )
    report("")
    report(fmt_table(
        ["config", "MPs", "MVC complete", "makespan", "mean staleness",
         "max merge util"],
        rows,
    ))

    assert partition == [("V1", "V2"), ("V3",)]
    assert len(split.merge_processes) == 2
    assert single.check_mvc("complete") and split.check_mvc("complete")
    # The split must reduce the busiest merge's utilisation.
    single_util = max(
        single.metrics().process(m.name).utilisation
        for m in single.merge_processes
    )
    split_util = max(
        split.metrics().process(m.name).utilisation
        for m in split.merge_processes
    )
    assert split_util < single_util
