"""Shared helpers for the benchmark/experiment harness.

Every file in this directory regenerates one artifact of the paper (a
table, figure or worked example) or one experiment of the §7 performance
study (see DESIGN.md's experiment index).  Each test

* runs the experiment under ``benchmark.pedantic`` (one round — these are
  simulations, not microbenchmarks, unless stated otherwise),
* prints the regenerated rows/series with capture disabled so they appear
  in the terminal and in ``bench_output.txt``,
* asserts the *shape* claims (who wins, orderings, crossovers) so a
  regression in any algorithm fails the harness loudly.
"""

from __future__ import annotations

import json
import time
from pathlib import Path

import pytest

from repro.system.builder import WarehouseSystem
from repro.system.config import SystemConfig
from repro.workloads.generator import UpdateStreamGenerator, WorkloadSpec, post_stream


def pytest_addoption(parser):
    parser.addoption(
        "--bench-out",
        default=None,
        metavar="DIR",
        help="directory to write machine-readable BENCH_<name>.json "
        "artifacts into (omitted: no artifacts are written)",
    )


@pytest.fixture
def bench_out(request):
    """Writer for machine-readable benchmark artifacts.

    ``bench_out("b19", payload)`` writes ``BENCH_b19.json`` into the
    directory named by ``--bench-out`` and returns its path, or returns
    ``None`` (after checking the payload is serializable) when the option
    is absent.  If the file already exists and holds a JSON object, the
    payload is merged into it (new keys win) instead of clobbering it —
    so several tests can contribute fields to one artifact, and a
    multi-benchmark CI run re-running one test keeps the other entries.
    The format is documented in docs/performance.md; the files are
    gitignored — CI uploads them as workflow artifacts so the perf
    trajectory accumulates per commit.
    """

    def _write(name: str, payload: dict) -> Path | None:
        json.dumps(payload)  # serializability check even when not writing
        out_dir = request.config.getoption("--bench-out")
        if out_dir is None:
            return None
        path = Path(out_dir) / f"BENCH_{name}.json"
        merged = payload
        if path.exists():
            try:
                existing = json.loads(path.read_text())
            except (json.JSONDecodeError, OSError):
                existing = None
            if isinstance(existing, dict):
                merged = {**existing, **payload}
        path.write_text(json.dumps(merged, indent=2, sort_keys=True) + "\n")
        return path

    return _write


@pytest.fixture
def report(capsys):
    """Print experiment output immediately, bypassing pytest capture."""

    def _report(*lines: object) -> None:
        with capsys.disabled():
            for line in lines:
                print(line)

    _report("")  # newline after pytest's test-name prefix
    return _report


def run_system(
    world,
    views,
    config: SystemConfig,
    spec: WorkloadSpec,
) -> WarehouseSystem:
    """Build, feed and run one system; returns it finished."""
    system, _ = timed_run_system(world, views, config, spec)
    return system


def timed_run_system(
    world,
    views,
    config: SystemConfig,
    spec: WorkloadSpec,
) -> tuple[WarehouseSystem, float]:
    """Like :func:`run_system`, also returning ``run()``'s wall seconds.

    The timer brackets only the drain — build, seeding and stream posting
    are excluded — so the number is comparable between the DES backend
    (where ``run()`` burns CPU but no simulated resource waits) and the
    wall-clock runtimes (where it includes real thread/process overlap).
    """
    stream = UpdateStreamGenerator(world, spec).transactions()
    system = WarehouseSystem(world, views, config)
    post_stream(system, stream)
    start = time.perf_counter()
    system.run()
    return system, time.perf_counter() - start


def wall_clock_section(system: WarehouseSystem, wall_seconds: float) -> dict:
    """The standard ``wall_clock`` block for bench_out artifacts.

    Reports real events/second next to the simulated-time throughput so
    artifacts distinguish "cheap in virtual time" from "cheap on the
    machine" (docs/performance.md describes both axes).
    """
    events = system.sim.events_executed
    return {
        "wall_seconds": round(wall_seconds, 4),
        "events_executed": events,
        "wall_events_per_sec": round(events / wall_seconds, 1)
        if wall_seconds > 0 else None,
        "sim_throughput": round(system.metrics().throughput, 4),
    }


def fmt_table(headers: list[str], rows: list[list[object]]) -> str:
    """Render a fixed-width text table."""
    widths = [
        max(len(str(h)), *(len(str(r[i])) for r in rows)) if rows else len(str(h))
        for i, h in enumerate(headers)
    ]
    def line(cells):
        return "  ".join(str(c).rjust(w) for c, w in zip(cells, widths))
    out = [line(headers), line(["-" * w for w in widths])]
    out.extend(line(r) for r in rows)
    return "\n".join(out)
