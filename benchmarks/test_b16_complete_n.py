"""B16 — Complete-N maintenance: the block-size knob (§6.3).

"A view manager may be complete-N, that is, it may process N source
updates at a time and maintain the view consistently after every N
updates. ... The warehouse view maintenance is complete-N as well."

The experiment sweeps N over a fixed workload and reports warehouse
transactions, makespan and staleness, confirming the guarantee ladder:
N = 1 behaves like complete maintenance; larger N trades state granularity
(fewer, coarser warehouse states) for amortised work.

Paper question: §6.3 — what does complete-N's block size N trade?
Reads: ``warehouse.commits``, ``RunMetrics.makespan`` /
``mean_staleness``, and the verified consistency ladder per N.
"""

from repro.system.config import SystemConfig
from repro.workloads.generator import WorkloadSpec
from repro.workloads.schemas import paper_views_example2, paper_world

from benchmarks.conftest import fmt_table, run_system

UPDATES = 60
BLOCKS = (1, 3, 6, 12)


def run_with_n(n: int):
    spec = WorkloadSpec(updates=UPDATES, rate=2.0, seed=53,
                        mix=(0.6, 0.2, 0.2), arrivals="poisson")
    system = run_system(
        paper_world(),
        paper_views_example2(),
        SystemConfig(
            manager_kind="complete-n",
            block_size=n,
            warehouse_txn_overhead=2.0,
            seed=53,
        ),
        spec,
    )
    metrics = system.metrics()
    level = system.classify()
    return system.warehouse.commits, metrics.makespan, \
        metrics.mean_staleness, level


def test_b16_complete_n_sweep(benchmark, report):
    results = benchmark.pedantic(
        lambda: {n: run_with_n(n) for n in BLOCKS}, rounds=1, iterations=1
    )

    rows = [
        [n, txns, f"{makespan:.0f}", f"{staleness:.1f}", level]
        for n, (txns, makespan, staleness, level) in results.items()
    ]
    report(f"B16 — complete-N over {UPDATES} updates "
           f"(warehouse txn overhead 2.0):")
    report(fmt_table(
        ["N", "warehouse txns", "makespan", "mean staleness", "MVC level"],
        rows,
    ))
    report("")
    report("Shape: N=1 is per-update (complete) maintenance; growing N "
           "coarsens the warehouse state sequence (~updates/N txns) and "
           "amortises transaction overhead; every run stays at least "
           "MVC-strong (complete per N-block).")

    order = {"convergent": 0, "strong": 1, "complete": 2}
    assert results[1][3] == "complete"
    for n in (3, 6, 12):
        assert order[results[n][3]] >= order["strong"]
    txns = [results[n][0] for n in BLOCKS]
    assert txns[0] > txns[1] > txns[2] > txns[3]
    # Overhead amortisation: far fewer transactions means lower makespan.
    assert results[12][1] < results[1][1]
